"""The instrumented FlightGear takeoff simulator target.

A test case flies one scenario of the 3x3 (mass x head-wind) grid
through a fixed-length control loop: an initialisation period with the
engine at idle followed by a full-throttle takeoff run, mirroring the
paper's "2700 iterations of the main simulation loop, where the first
500 iterations correspond to an initialisation period".  A control
module provides a consistent input vector (full throttle, rotate at
Vr) at each iteration, as in the paper.

Longitudinal 3-DOF flight dynamics: ground roll with gear reaction and
rolling friction, rotation under a commanded pitch rate shaped by the
mass module's inertia and CG offset, lift-off once the wings carry the
weight, and climb-out to the runway-clear height.  The ``Gear`` and
``Mass`` modules are probed at entry and exit on every iteration, so
probe occurrence indices are control-loop iterations -- injection times
like "600 iterations after initialisation" translate directly.
"""

from __future__ import annotations

import math

from repro.injection.instrument import Harness, Location, VariableSpec
from repro.targets.base import TargetSystem
from repro.targets.flightgear import aero
from repro.targets.flightgear.aircraft import Aircraft, scenario_for
from repro.targets.flightgear.gear import GearModule
from repro.targets.flightgear.massbalance import MassModule
from repro.targets.flightgear.spec import (
    CRITICAL_SPEED_MS,
    FailureReport,
    TakeoffSummary,
    evaluate_takeoff,
)

__all__ = ["FlightGearTarget"]

_RAD_TO_DEG = 180.0 / math.pi

#: Airspeed the climb-out speed-hold law maintains after the aircraft
#: clears the runway (just above the V2 of the failure spec).
CLIMB_SPEED_TARGET_MS = 34.0


def _finite(value: float, fallback: float = 0.0) -> float:
    return value if math.isfinite(value) else fallback


class FlightGearTarget(TargetSystem):
    """Takeoff simulator with instrumented ``Gear`` and ``Mass``.

    Parameters
    ----------
    init_iterations / run_iterations:
        Control-loop lengths (paper: 500 + 2200).  The experiment
        drivers scale these down for laptop benches; injection times
        must be chosen within ``init_iterations + run_iterations``.
    dt:
        Integration step in seconds.
    """

    name = "FG"

    def __init__(
        self,
        init_iterations: int = 500,
        run_iterations: int = 2200,
        dt: float = 0.02,
    ) -> None:
        if init_iterations < 0 or run_iterations < 1:
            raise ValueError("iteration counts must be positive")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.init_iterations = init_iterations
        self.run_iterations = run_iterations
        self.dt = dt
        self.aircraft = Aircraft()

    # ------------------------------------------------------------------
    # TargetSystem protocol
    # ------------------------------------------------------------------
    @property
    def modules(self) -> tuple[str, ...]:
        return ("Gear", "Mass")

    def variables_of(
        self, module: str, location: Location | None = None
    ) -> tuple[VariableSpec, ...]:
        self.check_module(module)
        if module == "Gear":
            entry = (
                VariableSpec("compression", "float64"),
                VariableSpec("spring_k", "float64"),
                VariableSpec("damping", "float64"),
                VariableSpec("mu_roll", "float64"),
                VariableSpec("drag_coeff", "float64"),
                VariableSpec("on_ground", "bool"),
            )
            exit_specs = (
                VariableSpec("compression", "float64"),
                VariableSpec("normal_force", "float64"),
                VariableSpec("friction", "float64"),
                VariableSpec("gear_drag", "float64"),
                VariableSpec("mu_roll", "float64"),
                VariableSpec("on_ground", "bool"),
            )
        else:
            entry = (
                VariableSpec("fuel", "float64"),
                VariableSpec("burn_rate", "float64"),
                VariableSpec("dry_mass", "float64"),
                VariableSpec("cg_offset", "float64"),
                VariableSpec("inertia_base", "float64"),
            )
            exit_specs = entry + (
                VariableSpec("mass_total", "float64"),
                VariableSpec("weight", "float64"),
                VariableSpec("inertia_eff", "float64"),
            )
        if location is Location.ENTRY:
            return entry
        if location is Location.EXIT:
            return exit_specs
        seen: dict[str, VariableSpec] = {}
        for spec in entry + exit_specs:
            seen.setdefault(spec.name, spec)
        return tuple(seen.values())

    def module_sources(self, module: str) -> tuple | None:
        # Gear and Mass state feed the same integrated simulation step,
        # so the closure is conservatively the whole package: any edit
        # invalidates both modules' stored shards rather than risking a
        # stale hit.
        self.check_module(module)
        from repro.targets.flightgear import (
            aero,
            aircraft,
            gear,
            massbalance,
            spec,
        )
        import repro.targets.flightgear.takeoff as takeoff

        return (takeoff, aircraft, aero, gear, massbalance, spec)

    def run(self, test_case: int, harness: Harness) -> FailureReport:
        scenario = scenario_for(test_case)
        aircraft = self.aircraft
        gear = GearModule()
        mass = MassModule(aircraft, scenario)
        dt = self.dt

        # Flight state.
        v = 0.0        # ground speed, m/s
        x = 0.0        # distance along runway, m
        h = 0.0        # altitude, m
        vs = 0.0       # vertical speed, m/s
        theta = 0.0    # pitch attitude, rad
        q = 0.0        # pitch rate, rad/s

        # Trajectory summary accumulators.
        passed_critical = False
        passed_rotation = False
        max_airspeed = 0.0
        lifted_off = False
        cleared_runway = False
        distance_at_clear = math.inf
        max_pitch_rate_before_clear = 0.0
        stalled = False

        total = self.init_iterations + self.run_iterations
        for iteration in range(total):
            throttle = 0.0 if iteration < self.init_iterations else 1.0
            airspeed = max(v + scenario.headwind_ms * throttle, 0.0)

            mass_state = mass.step(harness, dt, throttle)
            m = max(_finite(mass_state.mass, 1.0), 1.0)
            weight = _finite(mass_state.weight, m * aircraft.gravity)
            inertia = max(_finite(mass_state.inertia, aircraft.pitch_inertia), 1.0)

            # Angle of attack = attitude minus flight-path angle; this
            # is what makes the climb self-stabilising (as speed bleeds
            # the path shallows, alpha and lift recover).
            gamma = math.atan2(vs, max(v, 1.0)) if h > 0.0 else 0.0
            alpha = aero.angle_of_attack(theta, vs, v, h)
            cl = aero.lift_coefficient(aircraft, alpha)
            lift = aero.lift(aircraft, airspeed, cl)
            drag = aero.drag(aircraft, airspeed, cl)

            forces = gear.step(
                harness, weight, lift, airspeed, aircraft.rho, h, dt
            )
            thrust = aircraft.thrust(airspeed) * throttle

            on_ground = forces.on_ground and h <= 0.0
            if on_ground:
                accel = (thrust - drag - forces.friction - forces.drag) / m
                v = max(v + _finite(accel) * dt, 0.0)
                x += v * dt
                vs = 0.0
                if lift >= weight and theta > 0.01:
                    lifted_off = True
                    h = 0.01
                    vs = 0.2
            else:
                lifted_off = True
                az = (lift - weight) / m
                vs = max(min(vs + _finite(az) * dt, 12.0), -12.0)
                accel = (thrust - drag - weight * math.sin(gamma)) / m
                v = max(v + _finite(accel) * dt, 0.0)
                x += v * dt
                h = h + vs * dt
                if h <= 0.0:
                    h = 0.0
                    vs = 0.0

            # Control module: a consistent input vector, as the paper's
            # control module provides.  Rotation at Vr to the target
            # attitude; once clear of the runway, a speed-hold pitch
            # law sustains the climb (pitch down when airspeed decays).
            if cleared_runway:
                # Climb-out attitude hold with stall protection: lower
                # the commanded attitude when airspeed decays towards
                # the climb target.
                theta_cmd_deg = aircraft.target_pitch_deg - max(
                    CLIMB_SPEED_TARGET_MS - airspeed, 0.0
                )
                theta_cmd = math.radians(max(theta_cmd_deg, 0.0))
                q_cmd = max(
                    min(2.0 * (theta_cmd - theta), math.radians(2.5)),
                    math.radians(-2.5),
                )
            elif throttle > 0.0 and airspeed >= aircraft.rotate_speed:
                passed_rotation = True
                target_theta = math.radians(aircraft.target_pitch_deg)
                cg_shaping = max(1.0 - 0.3 * mass_state.cg_offset, 0.0)
                q_cmd = (
                    math.radians(aircraft.pitch_rate_cmd_deg) * cg_shaping
                    if theta < target_theta
                    else 0.0
                )
            else:
                q_cmd = 0.0
            response = min(900.0 / inertia, 1.0 / dt)
            q += (q_cmd - q) * response * dt
            q = max(min(q, math.radians(30.0)), math.radians(-30.0))
            theta = max(min(theta + q * dt, math.radians(25.0)), math.radians(-8.0))

            # Summary tracking.
            if airspeed >= CRITICAL_SPEED_MS:
                passed_critical = True
            max_airspeed = max(max_airspeed, airspeed)
            if not cleared_runway:
                max_pitch_rate_before_clear = max(
                    max_pitch_rate_before_clear, abs(q) * _RAD_TO_DEG
                )
                if h >= aircraft.runway_clear_height:
                    cleared_runway = True
                    distance_at_clear = x
            if lifted_off and h > 0.5:
                stall_speed = self._stall_speed(weight)
                if airspeed < stall_speed:
                    stalled = True

        summary = TakeoffSummary(
            passed_critical_speed=passed_critical,
            passed_rotation_speed=passed_rotation,
            max_airspeed=round(max_airspeed, 6),
            lifted_off=lifted_off,
            cleared_runway=cleared_runway,
            distance_at_clear=(
                round(distance_at_clear, 6) if cleared_runway else math.inf
            ),
            max_pitch_rate_before_clear=round(max_pitch_rate_before_clear, 6),
            stalled_during_climb=stalled,
        )
        return evaluate_takeoff(summary, scenario.mass_lbs)

    def _stall_speed(self, weight: float) -> float:
        return aero.stall_speed(self.aircraft, weight)

    def is_failure(self, golden_output: object, run_output: object) -> bool:
        """FG's spec is absolute: the run fails if any category fires."""
        assert isinstance(run_output, FailureReport)
        return run_output.any_failure

"""The ``Gear`` module: landing gear ground reaction.

Invoked once per control-loop iteration.  While the aircraft is on the
runway the gear carries the weight not yet borne by the wings; the
module computes the oleo strut compression, the normal force, rolling
friction and the small aerodynamic drag of the gear legs.  Both the
entry state (strut constants, friction coefficient, ground flag) and
the exit state (computed forces) are live: the main loop integrates
the forces the *exit probe returns*, so bit flips at either location
propagate into the trajectory.
"""

from __future__ import annotations

import dataclasses

from repro.injection.instrument import Harness, Location

__all__ = ["GearModule", "GearForces"]


@dataclasses.dataclass
class GearForces:
    """Forces returned to the flight dynamics loop."""

    normal: float     # N upward ground reaction
    friction: float   # N rearward rolling friction
    drag: float       # N rearward gear aerodynamic drag
    on_ground: bool


class GearModule:
    """Stateful gear model (strut compression persists across calls)."""

    #: Ground reaction beyond which the gear structure fails; the
    #: golden loads stay well below (max ~9.5 kN at the heaviest mass).
    STRUCTURAL_LIMIT = 25_000.0  # N

    def __init__(self) -> None:
        self.spring_k = 95_000.0      # N/m oleo strut stiffness
        self.damping = 6_000.0        # N s/m strut damping
        self.mu_roll = 0.02           # rolling friction coefficient
        self.drag_coeff = 0.9         # gear drag area coefficient (Cd*A)
        self.compression = 0.0        # m, persisted
        self.damaged = False          # latched structural damage
        self._prev_compression = 0.0

    def step(
        self,
        harness: Harness,
        weight: float,
        lift: float,
        airspeed: float,
        rho: float,
        altitude: float,
        dt: float,
    ) -> GearForces:
        on_ground = altitude <= 0.0
        state = harness.probe(
            "Gear",
            Location.ENTRY,
            {
                "compression": self.compression,
                "spring_k": self.spring_k,
                "damping": self.damping,
                "mu_roll": self.mu_roll,
                "drag_coeff": self.drag_coeff,
                "on_ground": on_ground,
            },
        )
        # The module continues with the (possibly corrupted) state.
        compression = float(state["compression"])
        spring_k = float(state["spring_k"])
        damping = float(state["damping"])
        mu_roll = float(state["mu_roll"])
        drag_coeff = float(state["drag_coeff"])
        on_ground = bool(state["on_ground"])

        if self.damaged:
            # A failed strut drags: collapsed wheel fairing and bent
            # leg raise rolling friction and drag until the run ends.
            mu_roll = mu_roll * 6.0
            drag_coeff = drag_coeff * 4.0

        if on_ground:
            load = max(weight - lift, 0.0)
            # Static strut compression under the current load, with a
            # guard against a corrupted (zero/negative) stiffness.
            target = load / spring_k if spring_k > 1.0 else 0.0
            rate = (target - compression) * min(damping, 1e6) * 1e-4
            compression = compression + rate * dt
            normal = load
            friction = mu_roll * normal
            drag = 0.5 * rho * airspeed * airspeed * drag_coeff * 0.1
        else:
            compression = max(compression - 0.5 * dt, 0.0)  # strut extends
            normal = 0.0
            friction = 0.0
            drag = 0.5 * rho * airspeed * airspeed * drag_coeff * 0.05

        exit_state = harness.probe(
            "Gear",
            Location.EXIT,
            {
                "compression": compression,
                "normal_force": normal,
                "friction": friction,
                "gear_drag": drag,
                "mu_roll": mu_roll,
                "on_ground": on_ground,
            },
        )
        self._prev_compression = self.compression
        self.compression = float(exit_state["compression"])
        # Persist the *pre-damage* coefficients so damage multiplies
        # the nominal values, not itself, on later iterations.
        if self.damaged:
            mu_roll /= 6.0
            drag_coeff /= 4.0
        self.mu_roll = float(exit_state["mu_roll"]) if not self.damaged else mu_roll
        self.spring_k = spring_k
        self.damping = damping
        self.drag_coeff = drag_coeff
        forces = GearForces(
            normal=float(exit_state["normal_force"]),
            friction=float(exit_state["friction"]),
            drag=float(exit_state["gear_drag"]),
            on_ground=bool(exit_state["on_ground"]),
        )
        # Structural damage latches when the reported ground reaction
        # exceeds what the gear can carry (the exit state is what the
        # airframe's load monitor would see).
        if abs(forces.normal) > self.STRUCTURAL_LIMIT:
            self.damaged = True
        return forces

    @staticmethod
    def entry_variables() -> tuple[str, ...]:
        return (
            "compression",
            "spring_k",
            "damping",
            "mu_roll",
            "drag_coeff",
            "on_ground",
        )

    @staticmethod
    def exit_variables() -> tuple[str, ...]:
        return (
            "compression",
            "normal_force",
            "friction",
            "gear_drag",
            "mu_roll",
            "on_ground",
        )

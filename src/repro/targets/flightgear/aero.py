"""Longitudinal aerodynamics helpers for the takeoff simulator.

Pure functions, unit-testable against textbook laws (lift quadratic in
airspeed, stall speed scaling with sqrt(weight), induced drag
quadratic in lift coefficient).  The simulation loop in
:mod:`repro.targets.flightgear.takeoff` composes these.
"""

from __future__ import annotations

import math

from repro.targets.flightgear.aircraft import Aircraft

__all__ = [
    "angle_of_attack",
    "lift_coefficient",
    "dynamic_pressure",
    "lift",
    "drag",
    "stall_speed",
]


def angle_of_attack(theta: float, vs: float, v: float, altitude: float) -> float:
    """Angle of attack = attitude minus flight-path angle (rad).

    On the ground the flight path is horizontal, so alpha = theta.
    """
    gamma = math.atan2(vs, max(v, 1.0)) if altitude > 0.0 else 0.0
    return theta - gamma


def lift_coefficient(aircraft: Aircraft, alpha: float) -> float:
    """Linear lift slope capped at CL_max, floored at a small negative."""
    cl = min(aircraft.cl_ground + aircraft.cl_alpha * alpha, aircraft.cl_max)
    return max(cl, -0.2)


def dynamic_pressure(aircraft: Aircraft, airspeed: float) -> float:
    """q*S = 1/2 rho v^2 S (already multiplied by the wing area)."""
    return 0.5 * aircraft.rho * airspeed * airspeed * aircraft.wing_area


def lift(aircraft: Aircraft, airspeed: float, cl: float) -> float:
    return dynamic_pressure(aircraft, airspeed) * cl


def drag(aircraft: Aircraft, airspeed: float, cl: float) -> float:
    """Parasitic plus induced drag: q*S * (Cd0 + k*CL^2)."""
    return dynamic_pressure(aircraft, airspeed) * (
        aircraft.cd0 + aircraft.induced_k * cl * cl
    )


def stall_speed(aircraft: Aircraft, weight: float) -> float:
    """Speed below which CL_max cannot carry the weight."""
    weight = max(weight, 1.0)
    return math.sqrt(
        2.0 * weight / (aircraft.rho * aircraft.wing_area * aircraft.cl_max)
    )

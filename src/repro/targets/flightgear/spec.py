"""FlightGear failure specification (Section VI-F).

"A failure in the execution of a test case was considered to fall into
at least one of three categories; speed failure, distance failure and
angle failure":

* **speed failure** -- "the aircraft failed to reach a safe takeoff
  speed after first passing through critical speed and velocity of
  rotation";
* **distance failure** -- "the takeoff distance exceeds that specified
  by the aircraft manufacturer, where the specified distance is
  increased by 10 meters for every additional 200lbs over the aircraft
  base-weight";
* **angle failure** -- "a Pitch Rate of 4.5 degrees is exceeded before
  the aircraft is clear of the runway or the aircraft stalls during
  climb out".

The evaluation consumes the trajectory summary the simulator records;
unlike 7Z/MG this is an absolute specification, not a golden diff (the
golden runs satisfy it by construction, which the target's tests
assert for all nine scenarios).
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "BASE_WEIGHT_LBS",
    "BASE_TAKEOFF_DISTANCE_M",
    "SAFE_TAKEOFF_SPEED_MS",
    "CRITICAL_SPEED_MS",
    "MAX_PITCH_RATE_DEG_S",
    "FailureReport",
    "TakeoffSummary",
    "allowed_takeoff_distance",
    "evaluate_takeoff",
]

BASE_WEIGHT_LBS = 1300.0
BASE_TAKEOFF_DISTANCE_M = 420.0
SAFE_TAKEOFF_SPEED_MS = 32.0   # V2
CRITICAL_SPEED_MS = 24.0       # V1
MAX_PITCH_RATE_DEG_S = 4.5


@dataclasses.dataclass(frozen=True)
class TakeoffSummary:
    """Trajectory summary recorded by the simulation loop."""

    passed_critical_speed: bool
    passed_rotation_speed: bool
    max_airspeed: float
    lifted_off: bool
    cleared_runway: bool
    distance_at_clear: float
    max_pitch_rate_before_clear: float  # deg/s
    stalled_during_climb: bool


@dataclasses.dataclass(frozen=True)
class FailureReport:
    """Per-category failure flags plus the summary they came from."""

    speed_failure: bool
    distance_failure: bool
    angle_failure: bool
    summary: TakeoffSummary

    @property
    def any_failure(self) -> bool:
        return self.speed_failure or self.distance_failure or self.angle_failure


def allowed_takeoff_distance(mass_lbs: float) -> float:
    """Manufacturer distance, +10 m per 200 lbs over the base weight."""
    overweight = max(mass_lbs - BASE_WEIGHT_LBS, 0.0)
    return BASE_TAKEOFF_DISTANCE_M + 10.0 * (overweight / 200.0)


def evaluate_takeoff(summary: TakeoffSummary, mass_lbs: float) -> FailureReport:
    """Apply the three-part specification to a trajectory summary."""
    speed_failure = (
        summary.passed_critical_speed
        and summary.passed_rotation_speed
        and summary.max_airspeed < SAFE_TAKEOFF_SPEED_MS
    ) or not summary.lifted_off
    distance_failure = (
        not summary.cleared_runway
        or summary.distance_at_clear > allowed_takeoff_distance(mass_lbs)
    )
    angle_failure = (
        summary.max_pitch_rate_before_clear > MAX_PITCH_RATE_DEG_S
        or summary.stalled_during_climb
    )
    return FailureReport(speed_failure, distance_failure, angle_failure, summary)

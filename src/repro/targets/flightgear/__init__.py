"""FlightGear target analogue: an instrumented takeoff simulator.

The paper's FG case study flies a takeoff procedure for 2700 iterations
of the main simulation loop (500 initialisation + 2200 pre/post
injection) under 9 scenarios (3 aircraft masses x 3 wind speeds), with
instrumented modules ``Gear`` (landing gear) and ``Mass`` (mass &
balance) and a three-part failure specification (speed, distance,
pitch-angle).  This package implements the equivalent:

* :mod:`repro.targets.flightgear.aircraft` -- aircraft constants and
  the scenario grid;
* :mod:`repro.targets.flightgear.gear` -- the ``Gear`` module: ground
  reaction, rolling friction and gear drag;
* :mod:`repro.targets.flightgear.massbalance` -- the ``Mass`` module:
  fuel burn, total mass, weight and pitch inertia;
* :mod:`repro.targets.flightgear.spec` -- the Section VI-F failure
  specification (speed / distance / angle);
* :mod:`repro.targets.flightgear.takeoff` -- the longitudinal
  flight-dynamics loop tying it together as a
  :class:`repro.targets.base.TargetSystem`.
"""

from repro.targets.flightgear.aircraft import Aircraft, Scenario, scenario_for
from repro.targets.flightgear.spec import FailureReport, evaluate_takeoff
from repro.targets.flightgear.takeoff import FlightGearTarget

__all__ = [
    "Aircraft",
    "FailureReport",
    "FlightGearTarget",
    "Scenario",
    "evaluate_takeoff",
    "scenario_for",
]

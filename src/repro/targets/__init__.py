"""Instrumented target systems.

The paper evaluates its methodology on three real systems -- 7-Zip,
FlightGear and Mp3Gain -- each with two instrumented modules (Table
II).  The binaries and their input corpora are unavailable here, so
this subpackage provides faithful behavioural analogues, each a genuine
implementation of the corresponding domain algorithm (see DESIGN.md,
"Substitution note"):

* :mod:`repro.targets.sevenzip` -- "PZip", an LZ77 + canonical-Huffman
  archiver; instrumented modules ``FHandle`` and ``LDecode``;
* :mod:`repro.targets.flightgear` -- a longitudinal takeoff simulator
  with a 2700-iteration control loop; instrumented modules ``Gear``
  and ``Mass``;
* :mod:`repro.targets.mp3gain` -- a ReplayGain-style loudness analyser
  and volume normaliser; instrumented modules ``GAnalysis`` and
  ``RGain``.

All targets implement :class:`repro.targets.base.TargetSystem`: they
run a numbered, deterministic test case against an injection harness
(calling ``harness.probe`` at instrumented module boundaries) and
define the failure specification of Section VI-F.
"""

from repro.targets.base import TargetSystem, TargetError
from repro.targets.sevenzip import SevenZipTarget
from repro.targets.flightgear import FlightGearTarget
from repro.targets.mp3gain import Mp3GainTarget

ALL_TARGETS = {
    "7Z": SevenZipTarget,
    "FG": FlightGearTarget,
    "MG": Mp3GainTarget,
}

__all__ = [
    "ALL_TARGETS",
    "TargetSystem",
    "TargetError",
    "SevenZipTarget",
    "FlightGearTarget",
    "Mp3GainTarget",
]

"""Command-line entry point: ``repro <command> [options]``.

Static analysis from the shell, over published artefacts::

    repro lint registry.json                 # gate: exit 1 on errors
    repro lint detector.json --fail-on warning --format json
    repro analyze registry.json              # full report, exit 0
    repro simplify detector.json             # canonical predicate form
    repro surface flightgear                 # injection surface of targets
    repro prune 7Z-A2 --scale smoke          # static injection-space prune plan

``lint``/``analyze`` accept any mix of registry documents
(``DetectorRegistry.save`` output), single-detector documents
(``detector_to_json``), bare predicate documents
(``predicate_to_json``), campaign-configuration documents
(``CampaignConfig.to_dict``, optionally with a ``journal`` path) and
serving-topology configurations (``ServeConfig.to_dict``); the
document shape is sniffed per file.

The serving tier runs (and load-tests itself) with ``serve``::

    repro serve registry.json --workers 4 --events 20000
    repro serve registry.json --slo-p99 0.05 --trace serve.jsonl

The expensive half of the pipeline runs through the orchestrator::

    repro orchestrate 7Z-A1 --scale smoke --jobs 4 --journal run.jsonl
    repro orchestrate 7Z-A2 --prune static --audit-fraction 0.1

Campaigns compose across runs through the content-addressed store
(only shards of edited modules re-execute; see
:mod:`repro.injection.store`)::

    repro campaign 7Z-A1 --store store/ --scale smoke
    repro store inspect store/
    repro store gc store/ --dry-run

The detector-placement knapsack (see :mod:`repro.portfolio`) is solved
with ``portfolio``::

    repro portfolio candidates --jobs 4 -o candidates.json
    repro portfolio solve candidates.json --budget 1e-5 --plan plan.json
    repro portfolio pareto candidates.json
    repro portfolio apply plan.json registry.json --snapshot snap.json
    repro portfolio drift plan.json metrics.json

Traces are recorded, summarized and exported with ``trace``::

    repro trace record 7Z-A1 --jobs 4 --out run-trace.jsonl
    repro trace summarize run-trace.jsonl
    repro trace export run-trace.jsonl -o run-trace.chrome.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import warnings

from repro.analysis.lint import (
    LintContext,
    Linter,
    default_rules,
    exit_code,
    render_json,
    render_text,
)
from repro.analysis.redundancy import analyze_registry
from repro.analysis.simplify import simplify_predicate
from repro.analysis.surface import analyze_target_package
from repro.core.serialize import (
    SerializationError,
    detector_from_dict,
    predicate_from_dict,
)
from repro.runtime.registry import DetectorRegistry, RegistryWarning

__all__ = ["main"]


def _load_documents(paths: list[str]) -> LintContext:
    """Build one lint context from a mix of artefact documents."""
    context = LintContext()
    for raw in paths:
        path = pathlib.Path(raw)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise SerializationError(f"{path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SerializationError(f"{path}: invalid JSON: {exc}") from exc
        if isinstance(payload, dict) and payload.get("format") == "repro.runtime.registry":
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RegistryWarning)
                registry = DetectorRegistry.from_dict(payload, check=False)
            if context.registry is not None:
                raise SerializationError(
                    f"{path}: only one registry document per run"
                )
            context.registry = registry
            for entry in registry.latest():
                context.predicates[_unique(context, entry.name)] = (
                    entry.detector.predicate
                )
        elif (
            isinstance(payload, dict)
            and payload.get("format") == "repro.injection.campaign"
        ):
            # A full campaign document (repro sample/orchestrate
            # output): lint its config, and its sampling report when
            # the campaign was sampled.
            from repro.injection.campaign import CampaignConfig

            subject = path.stem
            try:
                context.campaigns[subject] = CampaignConfig.from_dict(
                    payload["config"]
                )
            except (KeyError, ValueError) as exc:
                raise SerializationError(
                    f"{path}: invalid campaign document: {exc}"
                ) from exc
            if payload.get("journal"):
                context.journaled.add(subject)
            if payload.get("sampling") is not None:
                context.sampling[subject] = payload["sampling"]
            if payload.get("store"):
                context.stores[subject] = payload["store"]
        elif (
            isinstance(payload, dict)
            and "module" in payload
            and "injection_location" in payload
        ):
            from repro.injection.campaign import CampaignConfig

            subject = path.stem
            try:
                context.campaigns[subject] = CampaignConfig.from_dict(payload)
            except (KeyError, ValueError) as exc:
                raise SerializationError(
                    f"{path}: invalid campaign configuration: {exc}"
                ) from exc
            if payload.get("journal"):
                context.journaled.add(subject)
        elif (
            isinstance(payload, dict)
            and payload.get("format") == "repro.serving.config"
        ):
            from repro.serving.config import ServeConfig

            try:
                context.serving[path.stem] = ServeConfig.from_dict(payload)
            except (TypeError, ValueError) as exc:
                raise SerializationError(
                    f"{path}: invalid serving configuration: {exc}"
                ) from exc
        elif (
            isinstance(payload, dict)
            and payload.get("format") == "repro.portfolio.plan"
        ):
            from repro.portfolio.plan import DeploymentPlan

            try:
                context.plans[path.stem] = DeploymentPlan.from_dict(payload)
            except (KeyError, ValueError) as exc:
                raise SerializationError(
                    f"{path}: invalid deployment plan: {exc}"
                ) from exc
        elif isinstance(payload, dict) and "predicate" in payload:
            detector = detector_from_dict(payload)
            context.predicates[_unique(context, detector.name)] = (
                detector.predicate
            )
        else:
            context.predicates[_unique(context, path.stem)] = (
                predicate_from_dict(payload)
            )
    return context


def _unique(context: LintContext, name: str) -> str:
    if name not in context.predicates:
        return name
    suffix = 2
    while f"{name}#{suffix}" in context.predicates:
        suffix += 1
    return f"{name}#{suffix}"


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in default_rules():
            doc = (rule.__doc__ or "").strip().split("\n")[0]
            print(f"{rule.name:24s} {doc}")
        return 0
    if not args.paths:
        print("error: no documents to lint", file=sys.stderr)
        return 2
    context = _load_documents(args.paths)
    linter = Linter(select=args.select or None, ignore=args.ignore or None)
    findings = linter.run(context)
    report = render_json(findings) if args.format == "json" else render_text(findings)
    print(report)
    return exit_code(findings, args.fail_on)


def _cmd_analyze(args: argparse.Namespace) -> int:
    context = _load_documents(args.paths)
    out: dict[str, object] = {"subjects": [], "redundancy": []}
    for subject in sorted(context.predicates):
        result = context.simplification(subject)
        out["subjects"].append(
            {
                "subject": subject,
                "atoms_before": result.atoms_before,
                "atoms_after": result.atoms_after,
                "changed": result.changed,
                "simplified": result.simplified.to_source("state"),
                "verdicts": [
                    {"status": v.status, "detail": v.detail}
                    for v in result.verdicts
                ],
            }
        )
    if context.registry is not None:
        out["redundancy"] = [
            {
                "left": finding.left,
                "right": finding.right,
                "relation": finding.relation.relation,
                "proven": finding.relation.proven,
                "detail": finding.relation.detail,
            }
            for finding in analyze_registry(context.registry)
        ]
    if args.format == "json":
        print(json.dumps(out, indent=2))
        return 0
    for spec in out["subjects"]:
        marker = "~" if spec["changed"] else "="
        print(
            f"{spec['subject']}: {spec['atoms_before']} -> "
            f"{spec['atoms_after']} atoms {marker}"
        )
        print(f"  {spec['simplified']}")
        for verdict in spec["verdicts"]:
            print(f"  [{verdict['status']}] {verdict['detail']}")
    for pair in out["redundancy"]:
        kind = "proven" if pair["proven"] else "evidence"
        print(
            f"{pair['left']} {pair['relation']} {pair['right']} "
            f"({kind}: {pair['detail']})"
        )
    return 0


def _cmd_simplify(args: argparse.Namespace) -> int:
    context = _load_documents(args.paths)
    for subject in sorted(context.predicates):
        result = simplify_predicate(context.predicates[subject])
        print(f"# {subject}: {result.atoms_before} -> {result.atoms_after} atoms")
        print(result.simplified.to_source("state"))
    return 0


def _cmd_surface(args: argparse.Namespace) -> int:
    report = analyze_target_package(args.package)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "source": report.source,
                    "probes": [
                        {
                            "module": p.module,
                            "location": p.location,
                            "line": p.line,
                            "variables": list(p.variables),
                            "result_discarded": p.result_discarded,
                        }
                        for p in report.probes
                    ],
                    "dead_variables": [
                        {
                            "module": v.module,
                            "location": v.location,
                            "name": v.name,
                            "defined_line": v.defined_line,
                        }
                        for v in report.dead_variables()
                    ],
                },
                indent=2,
            )
        )
        return 0
    for probe in report.probes:
        print(f"{probe}: {', '.join(probe.variables) or '(no variables)'}")
        for variable in report.variables_at(probe.module, probe.location):
            status = (
                "dead"
                if variable.is_dead
                else f"read at {', '.join(map(str, variable.reads))}"
            )
            print(f"  {variable.name}: {status}")
    dead = report.dead_variables()
    print(f"{len(report.probes)} probe(s), {len(dead)} dead variable(s)")
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    """Plan (without executing) the static prune of one dataset's
    campaign: per-point verdicts with dataflow provenance."""
    from repro.analysis.prune import plan_prune
    from repro.experiments.datasets import (
        DATASET_SPECS,
        build_target,
        campaign_config,
    )
    from repro.experiments.scale import get_scale
    from repro.injection.campaign import Campaign

    spec = DATASET_SPECS.get(args.dataset)
    if spec is None:
        print(
            f"error: unknown dataset {args.dataset!r}; available: "
            f"{', '.join(sorted(DATASET_SPECS))}",
            file=sys.stderr,
        )
        return 2
    scale_obj = get_scale(args.scale)
    target = build_target(spec.target, scale_obj)
    config = campaign_config(spec, scale_obj)
    plan = plan_prune(Campaign(target, config))
    if args.format == "json":
        print(json.dumps(plan.to_dict(), indent=2))
        return 0
    counts = plan.counts
    print(
        f"{args.dataset} @ {scale_obj.name}: {len(plan.points)} points, "
        f"{plan.runs_planned} runs planned -> {plan.runs_executed} to "
        f"execute, {plan.runs_pruned} pruned "
        f"({plan.pruned_fraction:.0%})"
    )
    print(
        "  verdicts: "
        + ", ".join(f"{counts.get(v, 0)} {v}" for v in sorted(counts))
    )
    for variable, reason in sorted(plan.variable_reasons.items()):
        print(f"  {variable}: {reason}")
    if args.verbose:
        for point in plan.points:
            print(
                f"    {point.variable} bit {point.bit}: {point.verdict}"
                + (f" [{point.class_id}]" if point.class_id else "")
                + f" -- {point.reason}"
            )
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    """Run one dataset's campaign in statistical sampling mode and
    report the per-stratum outcome-class estimates."""
    import time

    from repro.experiments.datasets import (
        DATASET_SPECS,
        build_target,
        campaign_config,
    )
    from repro.experiments.scale import get_scale
    from repro.injection.campaign import Campaign
    from repro.injection.sampling import SamplingSpec

    spec = DATASET_SPECS.get(args.dataset)
    if spec is None:
        print(
            f"error: unknown dataset {args.dataset!r}; available: "
            f"{', '.join(sorted(DATASET_SPECS))}",
            file=sys.stderr,
        )
        return 2
    scale_obj = get_scale(args.scale)
    target = build_target(spec.target, scale_obj)
    config = campaign_config(spec, scale_obj)
    try:
        sampling = SamplingSpec(
            ci=args.ci,
            confidence=args.confidence,
            target_halfwidth=args.target_halfwidth,
            min_cells=args.min_cells,
            round_cells=args.round_cells,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pool = None
    journal = None
    if args.jobs > 1:
        from repro.orchestration.pool import ProcessPool

        pool = ProcessPool(jobs=args.jobs)
    if args.journal:
        from repro.orchestration.journal import Journal

        journal = Journal(args.journal)
    start = time.perf_counter()
    try:
        result = Campaign(target, config).run(
            pool=pool,
            journal=journal,
            mode="sample",
            sampling=sampling,
            prune=args.prune,
        )
    finally:
        if pool is not None:
            pool.close()
    seconds = time.perf_counter() - start
    if args.out:
        payload = result.to_dict()
        if args.journal:
            payload["journal"] = args.journal
        pathlib.Path(args.out).write_text(json.dumps(payload, indent=2))
    report = result.sampling
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    print(
        f"{args.dataset} @ {scale_obj.name}: sampled "
        f"{report.cells_sampled} of {report.cells_total} cells "
        f"({report.sampled_fraction:.1%}) in {report.rounds} round(s), "
        f"{seconds:.2f}s [{report.spec.ci}, "
        f"{report.spec.confidence:.0%} CI, target half-width "
        f"{report.spec.target_halfwidth}]"
    )
    for stratum in report.strata:
        rates = ", ".join(
            f"{name}={estimate.rate:.3f} "
            f"[{estimate.low:.3f}, {estimate.high:.3f}]"
            for name, estimate in sorted(stratum.classes.items())
        )
        exact = (
            f" + {stratum.exact_cells} exact" if stratum.exact_cells else ""
        )
        print(
            f"  {stratum.stratum}: n={stratum.sampled}/{stratum.population}"
            f"{exact} ({stratum.stopped}): {rates}"
        )
    return 0


def _cmd_orchestrate(args: argparse.Namespace) -> int:
    from repro.orchestration.orchestrate import run_dataset

    report = run_dataset(
        args.dataset,
        scale=args.scale,
        jobs=args.jobs,
        journal_path=args.journal,
        learner=args.learner,
        prune=args.prune,
        audit_fraction=args.audit_fraction,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    campaign = report.campaign
    print(
        f"{report.dataset} @ {report.scale} (learner {report.learner}, "
        f"jobs {report.jobs}): {report.seconds:.2f}s"
    )
    print(
        f"  campaign: {campaign['runs']} runs, "
        f"{campaign['failures']} failures ({campaign['crashes']} crashes); "
        f"{campaign.get('executed', '?')} shard(s) executed, "
        f"{campaign.get('cached', 0)} cached, "
        f"{len(campaign.get('quarantined', ()))} quarantined"
    )
    prune_info = campaign.get("prune")
    if prune_info:
        audit = prune_info.get("audit") or {}
        print(
            f"  prune: {prune_info['runs_pruned']} of "
            f"{prune_info['runs_planned']} runs pruned "
            f"({prune_info['pruned_fraction']:.0%}); "
            f"{audit.get('audited', 0)} audited, "
            f"{audit.get('contradictions', 0)} contradiction(s)"
        )
    for label, row in (("baseline", report.baseline), ("refined", report.refined)):
        print(
            f"  {label}: auc={row['auc']:.3f} tpr={row['tpr']:.3f} "
            f"fpr={row['fpr']:.3f} comp={row['comp']:.1f}"
        )
    print(f"  best plan: {report.best_plan}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Run one dataset's campaign against a persistent store: shards
    whose content address is already stored load instead of executing,
    so re-runs after a module edit only pay for the edited module."""
    import time

    from repro.experiments.datasets import (
        DATASET_SPECS,
        build_target,
        campaign_config,
    )
    from repro.experiments.scale import get_scale
    from repro.injection.campaign import Campaign
    from repro.injection.store import CampaignStore

    spec = DATASET_SPECS.get(args.dataset)
    if spec is None:
        print(
            f"error: unknown dataset {args.dataset!r}; available: "
            f"{', '.join(sorted(DATASET_SPECS))}",
            file=sys.stderr,
        )
        return 2
    scale_obj = get_scale(args.scale)
    target = build_target(spec.target, scale_obj)
    config = campaign_config(spec, scale_obj)
    store = CampaignStore(args.store)
    pool = None
    journal = None
    if args.jobs > 1:
        from repro.orchestration.pool import ProcessPool

        pool = ProcessPool(jobs=args.jobs)
    if args.journal:
        from repro.orchestration.journal import Journal

        journal = Journal(args.journal)
    start = time.perf_counter()
    try:
        result = Campaign(target, config).run(
            pool=pool,
            journal=journal,
            prune=args.prune,
            mode=args.mode,
            store=store,
        )
    finally:
        if pool is not None:
            pool.close()
    seconds = time.perf_counter() - start
    if args.out:
        payload = result.to_dict()
        payload["store"] = args.store
        if args.journal:
            payload["journal"] = args.journal
        pathlib.Path(args.out).write_text(json.dumps(payload, indent=2))
    orchestration = getattr(result, "orchestration", None) or {}
    counters = orchestration.get("store") or {}
    if args.format == "json":
        print(
            json.dumps(
                {
                    "dataset": args.dataset,
                    "scale": scale_obj.name,
                    "seconds": seconds,
                    "runs": result.n_runs,
                    "failures": result.n_failures,
                    "crashes": result.n_crashes,
                    "orchestration": orchestration,
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{args.dataset} @ {scale_obj.name}: {result.n_runs} runs, "
        f"{result.n_failures} failures ({result.n_crashes} crashes), "
        f"{seconds:.2f}s"
    )
    print(
        f"  shards: {orchestration.get('executed', '?')} executed, "
        f"{orchestration.get('stored', 0)} from store, "
        f"{orchestration.get('cached', 0)} from journal, "
        f"{len(orchestration.get('quarantined', ()))} quarantined"
    )
    if counters:
        print(
            f"  store: {counters.get('hits', 0)} hit(s), "
            f"{counters.get('misses', 0)} cold miss(es), "
            f"{counters.get('invalidated', 0)} invalidated, "
            f"{counters.get('writes', 0)} write(s) -> {args.store}"
        )
    else:
        print(
            "  store: target not eligible (no module_sources); ran "
            "storeless"
        )
    return 0


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    from repro.injection.store import CampaignStore

    summary = CampaignStore(args.store).summary()
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"{summary['root']}: {summary['shards']} shard(s), "
        f"{summary['records']} record(s), {summary['stale']} stale"
    )
    for row in summary["slices"]:
        marker = " [stale]" if row["stale"] else ""
        print(
            f"  {row['target']}/{row['module']}: {row['shards']} shard(s), "
            f"{row['records']} record(s){marker}"
        )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    from repro.injection.store import CampaignStore

    removed = CampaignStore(args.store).gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"{args.store}: {verb} {len(removed)} stale shard(s)")
    for fingerprint in removed:
        print(f"  {fingerprint}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving tier against a registry, self-driven by the
    load generator, and report throughput, detections and SLOs."""
    import contextlib
    import tempfile

    from repro import observability as obs
    from repro.serving import (
        LoadProfile,
        ServeConfig,
        ServingTopology,
        SLOPolicy,
        run_load,
    )

    try:
        config = ServeConfig(
            workers=args.workers,
            capacity=args.capacity,
            batch_size=args.batch_size,
            shed_after_s=args.shed_after,
            key_field=args.key_field,
            worker_cost_s=args.worker_cost,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    slo = None
    if any(
        v is not None
        for v in (args.slo_p50, args.slo_p95, args.slo_p99)
    ) or args.max_shed_ratio is not None:
        slo = SLOPolicy(
            p50_s=args.slo_p50,
            p95_s=args.slo_p95,
            p99_s=args.slo_p99,
            max_shed_ratio=(
                args.max_shed_ratio if args.max_shed_ratio is not None else 0.0
            ),
        )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RegistryWarning)
        registry = DetectorRegistry.load(args.registry, check=False)
    with contextlib.ExitStack() as stack:
        if args.trace:
            stack.enter_context(obs.tracing_to(args.trace))
        if args.snapshot:
            snapshot = pathlib.Path(args.snapshot)
        else:
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-serve-")
            )
            snapshot = pathlib.Path(tmp) / "snapshot.json"
        topology = ServingTopology.from_registry(
            registry, snapshot, config, slo=slo, inline=args.inline
        )
        topology.start()
        try:
            with obs.span("phase.serve", workers=config.workers):
                timing = run_load(
                    topology,
                    LoadProfile(events=args.events, seed=args.seed),
                )
        finally:
            report = topology.stop()
    payload = report.to_dict()
    payload["load"] = timing
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{args.registry}: {report.submitted} events -> "
            f"{report.processed} processed, {report.shed} shed "
            f"({timing['events_per_second']:.0f} events/s, "
            f"{config.workers} worker(s))"
        )
        for name, count in sorted(payload["detections"].items()):
            print(f"  {name}: {count} detection(s)")
        if report.slo is not None:
            verdict = "ok" if report.slo.ok else "VIOLATED"
            print(f"  slo: {verdict}")
            for violation in report.slo.violations:
                print(f"    {violation}")
    if not report.accounted:
        print("error: accounting broken", file=sys.stderr)
        return 1
    if report.slo is not None and not report.slo.ok:
        return 1
    return 0


def _load_candidate_set(path: str):
    from repro.portfolio.candidates import CandidateSet

    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except OSError as exc:
        raise SerializationError(f"{path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: invalid JSON: {exc}") from exc
    try:
        return CandidateSet.from_dict(payload)
    except (TypeError, KeyError, ValueError) as exc:
        raise SerializationError(
            f"{path}: invalid candidate document: {exc}"
        ) from exc


def _cmd_portfolio_candidates(args: argparse.Namespace) -> int:
    """Build the candidate set (one detector per dataset), pooled."""
    from repro.experiments.datasets import DATASET_SPECS
    from repro.portfolio.candidates import candidates_from_datasets

    names = args.datasets or sorted(DATASET_SPECS)
    unknown = [name for name in names if name not in DATASET_SPECS]
    if unknown:
        print(
            f"error: unknown dataset(s): {', '.join(unknown)}; available: "
            f"{', '.join(sorted(DATASET_SPECS))}",
            file=sys.stderr,
        )
        return 2
    candidates = candidates_from_datasets(
        names,
        args.scale,
        jobs=args.jobs,
        repeats=args.repeats,
        warmup=args.warmup,
    )
    document = json.dumps(candidates.to_dict(), indent=2, sort_keys=True)
    if args.out:
        pathlib.Path(args.out).write_text(document + "\n")
        print(
            f"{len(candidates)} candidate(s) over {candidates.activated} "
            f"activated failure run(s) -> {args.out}"
        )
    else:
        print(document)
    return 0


def _render_selection(selection, candidates) -> str:
    lines = [
        f"budget {selection.budget_s:.3e} s/event: "
        f"{len(selection.names)} detector(s), "
        f"coverage {selection.coverage:.3f}, "
        f"cost {selection.cost_s:.3e} s/event ({selection.solver})"
    ]
    for name in selection.names:
        candidate = candidates.get(name)
        lines.append(
            f"  {name}@v{candidate.version}: coverage "
            f"{candidate.coverage:.3f}, cost {candidate.cost_s:.3e}, "
            f"fpr {candidate.fpr:.3f}"
        )
    return "\n".join(lines)


def _cmd_portfolio_solve(args: argparse.Namespace) -> int:
    from repro.portfolio.optimize import solve
    from repro.portfolio.plan import DeploymentPlan

    candidates = _load_candidate_set(args.candidates)
    try:
        selection = solve(candidates, args.budget, solver=args.solver)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.plan:
        plan = DeploymentPlan.from_selection(
            selection, candidates, name=args.name
        )
        plan.save(args.plan)
    if args.format == "json":
        print(json.dumps(selection.to_dict(), indent=2))
    else:
        print(_render_selection(selection, candidates))
        if args.plan:
            print(f"plan -> {args.plan}")
    return 0


def _cmd_portfolio_pareto(args: argparse.Namespace) -> int:
    from repro.portfolio.pareto import pareto_front

    candidates = _load_candidate_set(args.candidates)
    budgets = None
    if args.budgets:
        try:
            budgets = [float(b) for b in args.budgets.split(",") if b]
        except ValueError as exc:
            print(f"error: bad --budgets: {exc}", file=sys.stderr)
            return 2
    try:
        front = pareto_front(candidates, budgets, solver=args.solver)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                {"points": [point.to_dict() for point in front]},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(
        f"{args.candidates}: {len(front)} non-dominated point(s) over "
        f"{len(candidates)} candidate(s)"
    )
    for point in front:
        print(
            f"  cost {point.cost_s:.3e} s/event -> coverage "
            f"{point.coverage:.3f} ({len(point.names)} detector(s): "
            f"{', '.join(point.names)}) [{point.solver}, budget "
            f"{point.budget_s:.3e}]"
        )
    return 0


def _cmd_portfolio_apply(args: argparse.Namespace) -> int:
    """Materialize a plan against a registry and publish the pinned
    subset snapshot atomically (a polling topology hot-deploys it)."""
    from repro.portfolio.plan import DeploymentPlan
    from repro.serving.supervisor import publish_snapshot

    plan = DeploymentPlan.load(args.plan)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RegistryWarning)
        registry = DetectorRegistry.load(args.registry, check=False)
    try:
        subset = plan.build_registry(registry)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    serial = publish_snapshot(subset, args.snapshot)
    print(
        f"plan {plan.name!r}: {len(plan.detectors)} detector(s) "
        f"(predicted coverage {plan.coverage:.3f}, cost "
        f"{plan.cost_s:.3e} s/event) -> {args.snapshot} @ serial {serial}"
    )
    return 0


def _metrics_from_payload(payload, source: str):
    """Accept both metrics shapes: the lossless ``to_dict()`` transport
    form and the ``report()`` form that ``repro serve --format json``
    emits (rebuilt just far enough for the per-state drift check)."""
    from repro.runtime.metrics import RuntimeMetrics

    if isinstance(payload, dict) and "metrics" in payload:
        payload = payload["metrics"]
    if isinstance(payload, dict) and "stats" in payload:
        return RuntimeMetrics.from_dict(payload)
    if isinstance(payload, dict) and isinstance(payload.get("detectors"), dict):
        metrics = RuntimeMetrics()
        for name, row in payload["detectors"].items():
            stats = metrics.stats_for(str(name))
            stats.evaluations = int(row.get("evaluations", 0))
            stats.detections = int(row.get("detections", 0))
            stats.faults = int(row.get("faults", 0))
            stats.batches = int(row.get("batches", 0))
            stats.latency.count = stats.batches
            stats.latency.total = (
                float(row.get("per_state", 0.0)) * stats.evaluations
            )
        return metrics
    raise SerializationError(
        f"{source}: neither a RuntimeMetrics document nor a serve report"
    )


def _cmd_portfolio_drift(args: argparse.Namespace) -> int:
    """Plan-vs-actual check: calibrated costs against served metrics."""
    from repro.portfolio.plan import DeploymentPlan

    plan = DeploymentPlan.load(args.plan)
    try:
        payload = json.loads(pathlib.Path(args.metrics).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"{args.metrics}: {exc}") from exc
    metrics = _metrics_from_payload(payload, args.metrics)
    report = plan.drift_report(metrics, cost_tolerance=args.tolerance)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for name, row in sorted(report["detectors"].items()):
            marker = "DRIFTED" if name in report["drifted"] else "ok"
            print(
                f"  {name}: predicted {row['predicted_cost_s']:.3e} "
                f"s/event, actual {row['actual_cost_s']:.3e} "
                f"({row['drift']:+.0%}) [{marker}]"
            )
        for name in report["missing"]:
            print(f"  {name}: no serving traffic recorded [MISSING]")
        print("drift: ok" if report["ok"] else "drift: CHECK FAILED")
    return 0 if report["ok"] else 1


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro import observability as obs
    from repro.orchestration.orchestrate import run_dataset

    with obs.tracing_to(args.out):
        report = run_dataset(
            args.dataset,
            scale=args.scale,
            jobs=args.jobs,
            journal_path=args.journal,
            learner=args.learner,
        )
    spans = obs.load_trace(args.out)
    summary = obs.summarize(spans)
    if args.format == "json":
        print(
            json.dumps(
                {"report": report.to_dict(), "summary": summary.to_dict()},
                indent=2,
            )
        )
        return 0
    print(
        f"{report.dataset} @ {report.scale} (jobs {report.jobs}): "
        f"{report.seconds:.2f}s -> {args.out}"
    )
    print(obs.render_summary(summary))
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro import observability as obs

    summary = obs.summarize(obs.load_trace(args.trace))
    if args.format == "json":
        print(json.dumps(summary.to_dict(), indent=2))
    else:
        print(obs.render_summary(summary))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro import observability as obs

    spans = obs.load_trace(args.trace)
    out = args.out or f"{args.trace}.chrome.json"
    obs.write_chrome_trace(spans, out)
    print(f"{len(spans)} span(s) -> {out} (open in about:tracing / Perfetto)")
    return 0


def _add_document_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", help="registry/detector/predicate JSON documents"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="static analysis of detector artefacts"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser(
        "lint", help="run lint rules; non-zero exit on findings at --fail-on"
    )
    _add_document_options(lint)
    lint.add_argument(
        "--fail-on", choices=("error", "warning", "info", "never"),
        default="error",
        help="lowest severity that fails the run (default: error)",
    )
    lint.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only these rules (repeatable)",
    )
    lint.add_argument(
        "--ignore", action="append", metavar="RULE",
        help="skip these rules (repeatable)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    lint.set_defaults(func=_cmd_lint)

    analyze = commands.add_parser(
        "analyze", help="full static report: simplification + redundancy"
    )
    _add_document_options(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    simplify = commands.add_parser(
        "simplify", help="print the canonical form of each predicate"
    )
    simplify.add_argument(
        "paths", nargs="+", help="registry/detector/predicate JSON documents"
    )
    simplify.set_defaults(func=_cmd_simplify)

    surface = commands.add_parser(
        "surface", help="injection-surface report of a target package"
    )
    surface.add_argument(
        "package",
        help='target package (e.g. "flightgear" or a dotted module path)',
    )
    surface.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    surface.set_defaults(func=_cmd_surface)

    prune = commands.add_parser(
        "prune",
        help="static injection-space prune plan for a dataset's campaign",
    )
    prune.add_argument(
        "dataset", help='Table II dataset name (e.g. "7Z-A2")'
    )
    prune.add_argument(
        "--scale", choices=("smoke", "bench", "paper"), default="smoke",
        help="experiment scale (default: smoke)",
    )
    prune.add_argument(
        "--verbose", action="store_true",
        help="print every per-point verdict with its provenance",
    )
    prune.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    prune.set_defaults(func=_cmd_prune)

    sample = commands.add_parser(
        "sample",
        help="statistical sampling campaign with per-stratum interval "
        "estimates",
    )
    sample.add_argument(
        "dataset", help='Table II dataset name (e.g. "7Z-A1")'
    )
    sample.add_argument(
        "--scale", choices=("smoke", "bench", "paper"), default="smoke",
        help="experiment scale (default: smoke)",
    )
    sample.add_argument(
        "--ci", choices=("wilson", "clopper-pearson"), default="wilson",
        help="interval estimator (default: wilson)",
    )
    sample.add_argument(
        "--target-halfwidth", type=float, default=0.05, metavar="W",
        help="early-stop interval half-width target (default: 0.05)",
    )
    sample.add_argument(
        "--confidence", type=float, default=0.95,
        help="two-sided confidence level (default: 0.95)",
    )
    sample.add_argument(
        "--min-cells", type=int, default=32, metavar="N",
        help="per-stratum cell floor before early stop (default: 32)",
    )
    sample.add_argument(
        "--round-cells", type=int, default=256, metavar="N",
        help="cells per stratum per round (default: 256)",
    )
    sample.add_argument(
        "--seed", type=int, default=0,
        help="root seed of the stratified draw order (default: 0)",
    )
    sample.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default: serial)",
    )
    sample.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint journal; shards interoperate with exhaustive "
        "campaigns of the same config",
    )
    sample.add_argument(
        "--prune", choices=("none", "static"), default=None,
        help="restrict draws to statically live classes and synthesize "
        "the rest exactly (default: config setting, else none)",
    )
    sample.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full campaign document (records + sampling "
        "report, lintable) to PATH",
    )
    sample.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    sample.set_defaults(func=_cmd_sample)

    campaign = commands.add_parser(
        "campaign",
        help="run a dataset's campaign against a persistent "
        "content-addressed store (delta re-runs after module edits)",
    )
    campaign.add_argument(
        "dataset", help='Table II dataset name (e.g. "7Z-A1")'
    )
    campaign.add_argument(
        "--store", required=True, metavar="DIR",
        help="campaign store directory (created on first run)",
    )
    campaign.add_argument(
        "--scale", choices=("smoke", "bench", "paper"), default="smoke",
        help="experiment scale (default: smoke)",
    )
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default: serial)",
    )
    campaign.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint journal; composes with the store (each "
        "backfills the other)",
    )
    campaign.add_argument(
        "--prune", choices=("none", "static"), default=None,
        help="skip statically proven-dead/equivalent injections "
        "(default: config setting, else none)",
    )
    campaign.add_argument(
        "--mode", choices=("exhaustive", "sample"), default="exhaustive",
        help="enumeration mode (default: exhaustive)",
    )
    campaign.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full campaign document (lintable; records the "
        "store path) to PATH",
    )
    campaign.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    campaign.set_defaults(func=_cmd_campaign)

    store = commands.add_parser(
        "store", help="inspect and garbage-collect campaign stores"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    s_inspect = store_commands.add_parser(
        "inspect", help="per-slice shard/record counts and staleness"
    )
    s_inspect.add_argument("store", help="campaign store directory")
    s_inspect.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    s_inspect.set_defaults(func=_cmd_store_inspect)

    s_gc = store_commands.add_parser(
        "gc", help="remove shard generations superseded by module edits"
    )
    s_gc.add_argument("store", help="campaign store directory")
    s_gc.add_argument(
        "--dry-run", action="store_true",
        help="report stale shards without deleting them",
    )
    s_gc.set_defaults(func=_cmd_store_gc)

    orchestrate = commands.add_parser(
        "orchestrate",
        help="run campaign + refinement for a dataset, parallel and resumable",
    )
    orchestrate.add_argument(
        "dataset", help='Table II dataset name (e.g. "7Z-A1")'
    )
    orchestrate.add_argument(
        "--scale", choices=("smoke", "bench", "paper"), default="smoke",
        help="experiment scale (default: smoke)",
    )
    orchestrate.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: serial)",
    )
    orchestrate.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint journal; an existing one resumes the run",
    )
    orchestrate.add_argument(
        "--learner", default="c45", help="learner name (default: c45)"
    )
    orchestrate.add_argument(
        "--prune", choices=("none", "static"), default=None,
        help="skip statically proven-dead/equivalent injections "
        "(default: config setting, else none)",
    )
    orchestrate.add_argument(
        "--audit-fraction", type=float, default=None, metavar="FRACTION",
        help="fraction of pruned cells to re-inject as a soundness "
        "audit (default: 0.05)",
    )
    orchestrate.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    orchestrate.set_defaults(func=_cmd_orchestrate)

    serve = commands.add_parser(
        "serve",
        help="serve a registry behind sharded workers under generated load",
    )
    serve.add_argument(
        "registry", help="registry document (DetectorRegistry.save output)"
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="evaluator worker processes (default: 2)",
    )
    serve.add_argument(
        "--events", type=int, default=10000,
        help="synthetic events to generate (default: 10000)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="load-generator seed (default: 0)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=64,
        help="micro-batch size (default: 64)",
    )
    serve.add_argument(
        "--capacity", type=int, default=1024,
        help="per-worker ring capacity in events (default: 1024)",
    )
    serve.add_argument(
        "--shed-after", type=float, default=0.25, metavar="SECONDS",
        help="backpressure bound before shedding (default: 0.25)",
    )
    serve.add_argument(
        "--key-field", default=None, metavar="FIELD",
        help="state field to shard by (default: sequence round-robin)",
    )
    serve.add_argument(
        "--worker-cost", type=float, default=0.0, metavar="SECONDS",
        help="modeled per-event downstream cost in workers (default: 0)",
    )
    serve.add_argument(
        "--inline", action="store_true",
        help="step workers in-process (deterministic, no subprocesses)",
    )
    serve.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="snapshot file for hot deploys (default: private temp file)",
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record spans to this trace journal",
    )
    serve.add_argument(
        "--slo-p50", type=float, default=None, metavar="SECONDS",
        help="per-detector p50 batch-latency budget",
    )
    serve.add_argument(
        "--slo-p95", type=float, default=None, metavar="SECONDS",
        help="per-detector p95 batch-latency budget",
    )
    serve.add_argument(
        "--slo-p99", type=float, default=None, metavar="SECONDS",
        help="per-detector p99 batch-latency budget",
    )
    serve.add_argument(
        "--max-shed-ratio", type=float, default=None, metavar="RATIO",
        help="topology-wide shed budget (events shed / submitted)",
    )
    serve.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    serve.set_defaults(func=_cmd_serve)

    portfolio = commands.add_parser(
        "portfolio",
        help="detector-placement knapsack: candidates, solve, pareto, apply",
    )
    portfolio_commands = portfolio.add_subparsers(
        dest="portfolio_command", required=True
    )

    p_candidates = portfolio_commands.add_parser(
        "candidates",
        help="build the per-dataset candidate set (pooled evaluation)",
    )
    p_candidates.add_argument(
        "--datasets", nargs="*", metavar="NAME", default=None,
        help="Table II dataset names (default: all 18)",
    )
    p_candidates.add_argument(
        "--scale", choices=("smoke", "bench", "paper"), default="smoke",
        help="experiment scale (default: smoke)",
    )
    p_candidates.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: serial)",
    )
    p_candidates.add_argument(
        "--repeats", type=int, default=9,
        help="timed calibration batches per detector (default: 9)",
    )
    p_candidates.add_argument(
        "--warmup", type=int, default=2,
        help="untimed calibration batches per detector (default: 2)",
    )
    p_candidates.add_argument(
        "-o", "--out", default=None, metavar="PATH",
        help="write the candidate document here (default: stdout)",
    )
    p_candidates.set_defaults(func=_cmd_portfolio_candidates)

    p_solve = portfolio_commands.add_parser(
        "solve", help="solve the placement knapsack under one budget"
    )
    p_solve.add_argument(
        "candidates", help="candidate document (portfolio candidates output)"
    )
    p_solve.add_argument(
        "--budget", type=float, required=True, metavar="SECONDS",
        help="per-event cost budget in seconds",
    )
    p_solve.add_argument(
        "--solver", choices=("auto", "greedy", "exact"), default="auto",
        help="solver (default: auto = exact when <= 20 candidates)",
    )
    p_solve.add_argument(
        "--plan", default=None, metavar="PATH",
        help="write the selection as a deployment plan",
    )
    p_solve.add_argument(
        "--name", default="portfolio",
        help="plan name (default: portfolio)",
    )
    p_solve.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    p_solve.set_defaults(func=_cmd_portfolio_solve)

    p_pareto = portfolio_commands.add_parser(
        "pareto", help="sweep the budget axis: coverage-vs-overhead front"
    )
    p_pareto.add_argument(
        "candidates", help="candidate document (portfolio candidates output)"
    )
    p_pareto.add_argument(
        "--budgets", default=None, metavar="CSV",
        help="comma-separated budgets in s/event (default: cost landmarks)",
    )
    p_pareto.add_argument(
        "--solver", choices=("auto", "greedy", "exact"), default="auto",
        help="solver (default: auto)",
    )
    p_pareto.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    p_pareto.set_defaults(func=_cmd_portfolio_pareto)

    p_apply = portfolio_commands.add_parser(
        "apply",
        help="publish a plan's pinned subset registry as a serving snapshot",
    )
    p_apply.add_argument("plan", help="deployment plan document")
    p_apply.add_argument(
        "registry", help="registry document the plan was solved against"
    )
    p_apply.add_argument(
        "--snapshot", required=True, metavar="PATH",
        help="snapshot path to publish atomically (topologies poll it)",
    )
    p_apply.set_defaults(func=_cmd_portfolio_apply)

    p_drift = portfolio_commands.add_parser(
        "drift", help="plan-vs-actual check against merged serving metrics"
    )
    p_drift.add_argument("plan", help="deployment plan document")
    p_drift.add_argument(
        "metrics",
        help="RuntimeMetrics document (worker summary or merged export)",
    )
    p_drift.add_argument(
        "--tolerance", type=float, default=0.5, metavar="RATIO",
        help="relative per-event cost tolerance (default: 0.5)",
    )
    p_drift.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    p_drift.set_defaults(func=_cmd_portfolio_drift)

    trace = commands.add_parser(
        "trace", help="record, summarize and export pipeline traces"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_commands.add_parser(
        "record", help="run an orchestrated dataset with tracing enabled"
    )
    record.add_argument("dataset", help='Table II dataset name (e.g. "7Z-A1")')
    record.add_argument(
        "--scale", choices=("smoke", "bench", "paper"), default="smoke",
        help="experiment scale (default: smoke)",
    )
    record.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: serial)",
    )
    record.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint journal; an existing one resumes the run",
    )
    record.add_argument(
        "--learner", default="c45", help="learner name (default: c45)"
    )
    record.add_argument(
        "--out", default="trace.jsonl", metavar="PATH",
        help="trace journal to write (default: trace.jsonl)",
    )
    record.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    record.set_defaults(func=_cmd_trace_record)

    summarize = trace_commands.add_parser(
        "summarize", help="per-phase totals, self-time, counter rollups"
    )
    summarize.add_argument("trace", help="trace journal (JSONL) to summarize")
    summarize.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    summarize.set_defaults(func=_cmd_trace_summarize)

    export = trace_commands.add_parser(
        "export", help="convert a trace journal to Chrome trace-event JSON"
    )
    export.add_argument("trace", help="trace journal (JSONL) to convert")
    export.add_argument(
        "-o", "--out", default=None, metavar="PATH",
        help="output path (default: <trace>.chrome.json)",
    )
    export.set_defaults(func=_cmd_trace_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not our error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())

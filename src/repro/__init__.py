"""repro -- reproduction of "A Methodology for the Generation of
Efficient Error Detection Mechanisms" (Leeke, Arif, Jhumka, Anand;
DSN 2011).

The library has four layers, mirroring the paper's architecture:

* :mod:`repro.targets` -- modular target systems to protect (analogues
  of the paper's 7-Zip, FlightGear and Mp3Gain case studies);
* :mod:`repro.injection` -- the fault injection environment (PROPANE
  analogue): golden runs, transient single bit-flip injection, state
  sampling, logging and dataset extraction;
* :mod:`repro.mining` -- the data mining substrate (Weka analogue):
  C4.5 decision trees, rule induction, sampling/SMOTE, metrics and
  stratified cross-validation;
* :mod:`repro.core` -- the methodology itself: the four-step pipeline
  that turns fault injection data into efficient error detection
  predicates, plus detectors, refinement and re-injection validation.

On top of the four layers, :mod:`repro.runtime` serves the generated
detectors: predicate compilation (vectorised batch + scalar closure),
a versioned detector registry, a streaming micro-batch evaluation
engine with fault isolation, and runtime latency/detection metrics.
:mod:`repro.orchestration` runs the expensive steps -- injection
campaigns and refinement grids -- sharded across worker processes with
checkpointed, resumable journals, bit-identical to serial execution.

Quickstart::

    from repro import Methodology

    method = Methodology()
    outcome = method.run(dataset)          # steps 2-4 on an injection dataset
    print(outcome.refined.predicate)       # the detection predicate
    print(outcome.refined.evaluation.summary())  # FPR/TPR/AUC/Comp/Var
"""

from repro.mining import Attribute, ConfusionMatrix, Dataset, C45DecisionTree

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "ConfusionMatrix",
    "Dataset",
    "C45DecisionTree",
    "__version__",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` cheap and avoid circular imports
    # while the higher layers are assembled on top of repro.mining.
    if name in ("Methodology", "MethodologyOutcome"):
        from repro.core import methodology

        return getattr(methodology, name)
    if name == "Detector":
        from repro.core.detector import Detector

        return Detector
    if name == "Predicate":
        from repro.core.predicate import Predicate

        return Predicate
    if name in ("Journal", "ProcessPool", "SerialPool", "make_pool"):
        from repro import orchestration

        return getattr(orchestration, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

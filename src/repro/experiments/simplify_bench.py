"""Experiment R-2: static simplification of Table II detectors.

The static checker (:mod:`repro.analysis.simplify`) rewrites a mined
predicate to a provably-equivalent canonical form before the runtime
lowers it.  This driver quantifies that step on real mined detectors:
for each Table II dataset and symbolic learner it reports the atom
count before/after simplification, the checker's clause verdicts, and
the batch-serving time of the compiled detector with simplification
off vs on.

Detection vectors of the simplified pipeline are verified bit-identical
to the unsimplified interpreted path over the full replayed traffic
before any timing is reported; a mismatch aborts the experiment --
the equivalence proof is not trusted blindly here.

C4.5 trees yield mutually exclusive paths (extraction already merges
per-path bounds), so their detectors mostly shrink through cross-branch
subsumption and interval merging; sequential-covering learners (PRISM)
emit overlapping rules where subsumption bites harder.  Both appear in
the report for exactly that contrast.
"""

from __future__ import annotations

import dataclasses
import time
from collections import Counter

import numpy as np

from repro.analysis.simplify import simplify_predicate
from repro.core.methodology import Methodology, MethodologyConfig
from repro.experiments.datasets import generate_dataset
from repro.experiments.reporting import render_table
from repro.experiments.scale import Scale, get_scale
from repro.runtime.compile import compile_predicate
from repro.runtime.pack import pack_states

__all__ = ["SimplifyBenchRow", "run", "render", "main"]

DEFAULT_DATASETS = ("7Z-A1", "MG-A1", "FG-A1")
DEFAULT_LEARNERS = ("c45", "prism")


@dataclasses.dataclass
class SimplifyBenchRow:
    dataset: str
    learner: str
    atoms_before: int
    atoms_after: int
    verdicts: Counter
    n_states: int
    seconds_original: float
    seconds_simplified: float
    detections: int

    @property
    def shrink(self) -> float:
        """Fraction of atoms removed by simplification."""
        if self.atoms_before == 0:
            return 0.0
        return 1.0 - self.atoms_after / self.atoms_before

    @property
    def speedup(self) -> float:
        if self.seconds_simplified <= 0:
            return 0.0
        return self.seconds_original / self.seconds_simplified

    def cells(self) -> list[str]:
        verdicts = (
            ", ".join(
                f"{count} {status}"
                for status, count in sorted(self.verdicts.items())
            )
            or "-"
        )
        return [
            self.dataset,
            self.learner,
            str(self.atoms_before),
            str(self.atoms_after),
            f"{self.shrink * 100.0:.0f}%",
            verdicts,
            f"{self.seconds_original * 1e3:.2f}",
            f"{self.seconds_simplified * 1e3:.2f}",
            f"{self.speedup:.2f}x",
            str(self.detections),
        ]


def _traffic(dataset, n_states: int) -> list[dict[str, object]]:
    names = [attribute.name for attribute in dataset.attributes]
    rows = dataset.x
    return [
        dict(zip(names, (float(v) for v in rows[i % len(rows)])))
        for i in range(n_states)
    ]


def _timed(fn) -> tuple[float, object]:
    started = time.perf_counter()
    out = fn()
    return time.perf_counter() - started, out


def run(
    scale: Scale | str = "bench",
    datasets=None,
    learners=DEFAULT_LEARNERS,
    n_states: int = 10_000,
) -> list[SimplifyBenchRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets else list(DEFAULT_DATASETS)
    rows: list[SimplifyBenchRow] = []
    for name in names:
        dataset = generate_dataset(name, scale)
        states = _traffic(dataset, n_states)
        index = {a.name: i for i, a in enumerate(dataset.attributes)}
        x = pack_states(states, index)
        for learner in learners:
            method = Methodology(
                MethodologyConfig(
                    learner=learner, folds=scale.folds, seed=scale.seed
                )
            )
            predicate = method.step3_generate(dataset).predicate
            result = simplify_predicate(predicate)

            original = compile_predicate(predicate, simplify=False)
            simplified = compile_predicate(predicate, simplify=True)

            reference = predicate.evaluate_rows(x, index).astype(bool)
            original_s, original_flags = _timed(
                lambda c=original: np.asarray(
                    c.evaluate_rows(x, index), dtype=bool
                )
            )
            simplified_s, simplified_flags = _timed(
                lambda c=simplified: np.asarray(
                    c.evaluate_rows(x, index), dtype=bool
                )
            )
            for mode, flags in (
                ("original", original_flags),
                ("simplified", simplified_flags),
            ):
                if not np.array_equal(flags, reference):
                    raise RuntimeError(
                        f"{name}/{learner}: {mode} detection vector diverges "
                        "from the interpreted path -- refusing to report"
                    )
            rows.append(
                SimplifyBenchRow(
                    dataset=name,
                    learner=learner,
                    atoms_before=result.atoms_before,
                    atoms_after=result.atoms_after,
                    verdicts=Counter(v.status for v in result.verdicts),
                    n_states=n_states,
                    seconds_original=original_s,
                    seconds_simplified=simplified_s,
                    detections=int(reference.sum()),
                )
            )
    return rows


def render(rows: list[SimplifyBenchRow]) -> str:
    return render_table(
        [
            "Dataset",
            "Learner",
            "Atoms",
            "Simplified",
            "Shrink",
            "Verdicts",
            "ms (orig)",
            "ms (simpl)",
            "Speedup",
            "Det",
        ],
        [row.cells() for row in rows],
        title="R-2: static simplification of mined detectors",
    )


def main(scale: Scale | str = "bench", datasets=None) -> str:
    table = render(run(scale, datasets))
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Ablation A-3: injection/sampling location combinations.

Section VI-A: "we may wish to inject errors at the start of a module,
and sample at the end.  Such a process will yield one type of
predicate. ... As future work, we plan to investigate the relationship
between injection and sampling locations in the generation of
efficient predicates."  Table II realises three combinations per
module (entry/entry, entry/exit, exit/exit); this ablation lines the
baseline results up per module so the location effect is directly
readable -- the reproduction's take on that future-work question.

Expected shape: entry/entry sampling sees the corrupted value itself
(predicates key on the injected variable), entry/exit sees its
propagated consequences (often easier or harder depending on whether
the module masks or amplifies the error); no combination dominates.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.datasets import DATASET_SPECS
from repro.experiments.reporting import fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale
from repro.experiments import table3

__all__ = ["LocationRow", "run", "main"]


@dataclasses.dataclass
class LocationRow:
    module_group: str  # e.g. "7Z-A"
    combination: str   # e.g. "entry/exit"
    dataset: str
    fpr: float
    tpr: float
    auc: float

    def cells(self) -> list[str]:
        return [
            self.module_group,
            self.combination,
            self.dataset,
            fmt_sci(self.fpr),
            fmt_rate(self.tpr),
            fmt_rate(self.auc),
        ]


def run(scale: Scale | str = "bench", groups=None) -> list[LocationRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    chosen = list(groups) if groups is not None else ["7Z-A", "7Z-B", "MG-A"]
    names = [f"{group}{k}" for group in chosen for k in (1, 2, 3)]
    for name in names:
        if name not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {name!r}")
    rows: list[LocationRow] = []
    for entry in table3.run(scale, names):
        spec = DATASET_SPECS[entry.dataset]
        rows.append(
            LocationRow(
                module_group=entry.dataset[:-1],
                combination=(
                    f"{spec.injection_location}/{spec.sample_location}"
                ),
                dataset=entry.dataset,
                fpr=entry.fpr,
                tpr=entry.tpr,
                auc=entry.auc,
            )
        )
    return rows


def main(scale: Scale | str = "bench", groups=None) -> str:
    rows = run(scale, groups)
    table = render_table(
        ["Module", "Inject/Sample", "Dataset", "FPR", "TPR", "AUC"],
        [r.cells() for r in rows],
        title="Ablation A-3: injection/sampling location combinations",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""The 18 fault-injection datasets of Table II.

Each dataset is one (target system, module, injection location,
sampling location) combination; Table II names them ``<SYS>-<M><K>``
where M is A/B for the system's two modules and K in 1..3 selects the
location pair: 1 = entry/entry, 2 = entry/exit, 3 = exit/exit.

:func:`generate_dataset` runs the campaign at a given scale (caching
the PROPANE-style log on disk so Step 1 runs once per dataset+scale)
and converts it to a mining dataset via
:mod:`repro.injection.readout` -- the paper's Step 2 format
transformation.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib

from repro.injection.campaign import Campaign, CampaignConfig, CampaignResult
from repro.injection.instrument import Location
from repro.injection.logfmt import read_log, write_log
from repro.mining.dataset import Dataset
from repro.experiments.scale import Scale, get_scale
from repro.targets import FlightGearTarget, Mp3GainTarget, SevenZipTarget
from repro.targets.base import TargetSystem

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "build_target",
    "campaign_config",
    "generate_dataset",
    "load_dataset",
    "default_cache_dir",
]

_LOCATION_PAIRS = {
    1: (Location.ENTRY, Location.ENTRY),
    2: (Location.ENTRY, Location.EXIT),
    3: (Location.EXIT, Location.EXIT),
}


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """One Table II row."""

    name: str
    target: str   # "7Z" | "FG" | "MG"
    module: str
    injection_location: Location
    sample_location: Location


def _specs() -> dict[str, DatasetSpec]:
    modules = {
        "7Z": ("FHandle", "LDecode"),
        "FG": ("Gear", "Mass"),
        "MG": ("GAnalysis", "RGain"),
    }
    out: dict[str, DatasetSpec] = {}
    for target, (module_a, module_b) in modules.items():
        for letter, module in (("A", module_a), ("B", module_b)):
            for k, (inject, sample) in _LOCATION_PAIRS.items():
                name = f"{target}-{letter}{k}"
                out[name] = DatasetSpec(name, target, module, inject, sample)
    return out


#: Table II, keyed by dataset name ("7Z-A1" ... "MG-B3").
DATASET_SPECS: dict[str, DatasetSpec] = _specs()


def build_target(target: str, scale: Scale) -> TargetSystem:
    """Instantiate a target system at the given scale."""
    if target == "7Z":
        lo, hi = scale.sz_size_range
        return SevenZipTarget(n_files=scale.sz_n_files, min_size=lo, max_size=hi)
    if target == "MG":
        lo, hi = scale.mg_sample_range
        return Mp3GainTarget(
            n_tracks=scale.mg_n_tracks, min_samples=lo, max_samples=hi
        )
    if target == "FG":
        init_iters, run_iters = scale.fg_iterations
        return FlightGearTarget(
            init_iterations=init_iters, run_iterations=run_iters, dt=scale.fg_dt
        )
    raise ValueError(f"unknown target {target!r}")


def campaign_config(spec: DatasetSpec, scale: Scale) -> CampaignConfig:
    """The campaign parameters for one dataset at one scale."""
    if spec.target == "7Z":
        test_cases, times, bits = (
            scale.sz_test_cases,
            scale.sz_injection_times,
            scale.sz_bits,
        )
    elif spec.target == "MG":
        test_cases, times, bits = (
            scale.mg_test_cases,
            scale.mg_injection_times,
            scale.mg_bits,
        )
    else:
        test_cases, times, bits = (
            scale.fg_test_cases,
            scale.fg_injection_times,
            scale.fg_bits,
        )
    return CampaignConfig(
        module=spec.module,
        injection_location=spec.injection_location,
        sample_location=spec.sample_location,
        test_cases=test_cases,
        injection_times=times,
        bits=bits,
    )


def default_cache_dir() -> pathlib.Path:
    """Campaign log cache location (override with $REPRO_CACHE)."""
    env = os.environ.get("REPRO_CACHE")
    if env:
        return pathlib.Path(env)
    return pathlib.Path(__file__).resolve().parents[3] / ".cache" / "repro"


def generate_dataset(
    name: str,
    scale: Scale | str = "bench",
    cache_dir: pathlib.Path | None = None,
    use_cache: bool = True,
) -> Dataset:
    """Produce the named Table II dataset at the given scale.

    The campaign's PROPANE-style log is cached under ``cache_dir``;
    subsequent calls parse the log instead of re-running Step 1.
    """
    if isinstance(scale, str):
        scale = get_scale(scale)
    spec = DATASET_SPECS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        )
    cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
    cache_path = cache_dir / f"{name}.{scale.name}.log"
    if use_cache and cache_path.exists():
        return load_dataset(cache_path, name)

    result = _run_campaign(spec, scale)
    if use_cache:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp_path = cache_path.with_suffix(".tmp")
        with open(tmp_path, "w") as fp:
            write_log(result, fp)
        tmp_path.replace(cache_path)
    return result.to_dataset(name)


def load_dataset(path: pathlib.Path, name: str | None = None) -> Dataset:
    """Load a cached campaign log into a mining dataset."""
    with open(path) as fp:
        parsed = read_log(fp)
    return parsed.to_dataset(name)


def _run_campaign(spec: DatasetSpec, scale: Scale) -> CampaignResult:
    target = build_target(spec.target, scale)
    config = campaign_config(spec, scale)
    # When the experiments CLI was invoked with --resume, checkpoint
    # the campaign shards next to the log cache so a killed run picks
    # up where it stopped (repro-experiments ... --resume).
    from repro.orchestration import Journal, default_journal_dir

    journal_dir = default_journal_dir()
    journal = None
    if journal_dir is not None:
        journal = Journal(
            journal_dir / f"{spec.name}.{scale.name}.journal.jsonl"
        )
    return Campaign(target, config).run(journal=journal)

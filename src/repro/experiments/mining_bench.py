"""Experiment R-4: mining data-plane throughput, presorted vs naive.

Step 4's refinement sweep is the compute budget of the methodology:
every plan in the grid re-induces C4.5 trees over resampled training
folds, so induction cost multiplies by (plans x folds).  This driver
measures the vectorised data plane (presorted index-based induction,
batch tree inference, content-keyed reuse caches) against the seed
implementation on a program-state-like workload, under the data
plane's hard contract: **bit-identical trees, predictions and trial
rankings** -- every comparison is verified before any timing is
reported, and a divergence aborts the experiment.

Three stages:

* ``fit`` -- one C4.5 induction on the full dataset, naive per-node
  sorting vs presorted index subsets (trees compared by pickle bytes);
* ``distribution`` -- routing a state matrix through the fitted tree,
  per-row recursive descent vs level-order batch routing (class
  distributions compared by bytes);
* ``refine`` -- the end-to-end Step 4 grid search, seed path (naive
  engine, reuse caches disabled) vs the full data plane (rankings,
  selection keys and per-trial AUCs compared exactly).

The synthetic dataset mirrors sampled program state: small counters,
enum-like codes, quantised measurements and a few continuous signals,
with missing values, driving an imbalanced failure label.
"""

from __future__ import annotations

import dataclasses
import pickle
import time

import numpy as np

from repro.core.refine import RefinementGrid, RefinementResult, refine
from repro.experiments.reporting import render_table
from repro.experiments.scale import Scale, get_scale
from repro.mining.cache import clear_reuse_caches, reuse_caches_disabled
from repro.mining.dataset import Attribute, Dataset
from repro.mining.tree import C45DecisionTree

__all__ = ["MiningBenchRow", "make_state_dataset", "run", "render", "main"]


@dataclasses.dataclass
class MiningBenchRow:
    stage: str
    detail: str
    baseline_s: float
    optimized_s: float

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.optimized_s if self.optimized_s > 0 else 0.0

    def cells(self) -> list[str]:
        return [
            self.stage,
            self.detail,
            f"{self.baseline_s * 1e3:,.1f}",
            f"{self.optimized_s * 1e3:,.1f}",
            f"{self.speedup:.2f}x",
        ]


def make_state_dataset(
    n: int, d: int = 24, seed: int = 0, missing: float = 0.03
) -> Dataset:
    """A program-state-like mining dataset.

    Numeric variables cycle through four flavours of sampled program
    state -- small counters, enum-like codes, quantised measurements
    and continuous signals -- plus one nominal mode attribute; a few
    variables drive an imbalanced (20 % positive) failure label and
    ``missing`` of the cells are dropped, as unlogged variables are.
    """
    rng = np.random.default_rng(seed)
    attributes = [Attribute.numeric(f"v{j}") for j in range(d)]
    attributes.append(Attribute.nominal("mode", ("a", "b", "c")))
    columns = []
    for j in range(d):
        kind = j % 4
        if kind == 0:
            column = rng.integers(0, 20, size=n).astype(float)
        elif kind == 1:
            column = rng.integers(0, 5, size=n).astype(float)
        elif kind == 2:
            column = np.round(rng.normal(size=n) * 4.0)
        else:
            column = rng.normal(size=n)
        columns.append(column)
    x = np.column_stack(columns + [rng.integers(0, 3, size=n).astype(float)])
    x[rng.random(x.shape) < missing] = np.nan
    filled = np.nan_to_num(x)
    score = (
        filled[:, 0] * 0.2
        + filled[:, 3] * 0.8
        + filled[:, 2] * filled[:, 7] * 0.1
        + rng.normal(scale=1.0, size=n)
    )
    y = (score > np.quantile(score, 0.8)).astype(np.int64)
    return Dataset(
        attributes, Attribute.nominal("class", ("neg", "pos")), x, y, name="R4"
    )


def _workload(scale: Scale) -> dict:
    if scale.name == "smoke":
        return {
            "n": 600,
            "d": 12,
            "folds": 3,
            "repeats": 2,
            "predict_rows": 8_000,
            "grid": RefinementGrid(
                undersample_levels=(25.0, 85.0),
                oversample_levels=(100.0, 700.0),
                neighbour_counts=(1, 5),
            ),
        }
    return {
        "n": 2_000,
        "d": 24,
        "folds": 5,
        "repeats": 3,
        "predict_rows": 20_000,
        "grid": RefinementGrid.reduced(),
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _ranking(result: RefinementResult) -> list[tuple]:
    return [
        (t.plan.sampling, t.plan.level, t.plan.neighbours, t.key)
        for t in result.ranked()
    ]


def run(scale: Scale | str = "bench") -> list[MiningBenchRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    load = _workload(scale)
    dataset = make_state_dataset(load["n"], load["d"], seed=scale.seed)
    dataset.presort()
    factory_args = dict(min_leaf_weight=2.0)
    rows: list[MiningBenchRow] = []

    # -- fit: naive per-node sorting vs presorted index subsets -------
    naive_tree = C45DecisionTree(engine="naive", **factory_args).fit(dataset)
    fast_tree = C45DecisionTree(engine="presort", **factory_args).fit(dataset)
    if pickle.dumps(naive_tree.root) != pickle.dumps(fast_tree.root):
        raise RuntimeError("presorted induction diverged from the naive tree")
    fit_naive = _best_of(
        lambda: C45DecisionTree(engine="naive", **factory_args).fit(dataset),
        load["repeats"],
    )
    fit_fast = _best_of(
        lambda: C45DecisionTree(engine="presort", **factory_args).fit(dataset),
        load["repeats"],
    )
    rows.append(
        MiningBenchRow(
            "fit",
            f"n={load['n']} d={load['d']} nodes={fast_tree.node_count}",
            fit_naive,
            fit_fast,
        )
    )

    # -- distribution: per-row descent vs level-order batch routing ---
    reps = -(-load["predict_rows"] // load["n"])
    states = np.tile(dataset.x, (reps, 1))[: load["predict_rows"]]
    fast_tree.engine = "naive"
    per_row = fast_tree.distribution(states)
    fast_tree.engine = "presort"
    batch = fast_tree.distribution(states)
    if per_row.tobytes() != batch.tobytes():
        raise RuntimeError("batch routing diverged from per-row descent")

    def time_predict(engine: str) -> float:
        fast_tree.engine = engine
        return _best_of(lambda: fast_tree.distribution(states), load["repeats"])

    predict_naive = time_predict("naive")
    predict_fast = time_predict("presort")
    rows.append(
        MiningBenchRow(
            "distribution",
            f"rows={len(states)}",
            predict_naive,
            predict_fast,
        )
    )

    # -- refine: the end-to-end Step 4 sweep --------------------------
    # The serial path is forced (a lambda factory cannot cross a
    # process boundary) so both runs time a single process; the
    # baseline disables every reuse cache, putting smote back on
    # per-seed neighbour queries -- the seed repo's exact data plane.
    def sweep(engine: str) -> tuple[float, RefinementResult]:
        factory = lambda: C45DecisionTree(engine=engine, **factory_args)  # noqa: E731
        clear_reuse_caches()
        fresh = make_state_dataset(load["n"], load["d"], seed=scale.seed)
        started = time.perf_counter()
        result = refine(
            fresh, factory, load["grid"], folds=load["folds"], seed=scale.seed
        )
        return time.perf_counter() - started, result

    with reuse_caches_disabled():
        refine_naive, result_naive = sweep("naive")
    refine_fast, result_fast = sweep("presort")
    if _ranking(result_naive) != _ranking(result_fast):
        raise RuntimeError("refinement ranking diverged from the seed path")
    naive_aucs = [t.evaluation.mean_auc for t in result_naive.trials]
    fast_aucs = [t.evaluation.mean_auc for t in result_fast.trials]
    if naive_aucs != fast_aucs:
        raise RuntimeError("refinement AUCs diverged from the seed path")
    rows.append(
        MiningBenchRow(
            "refine",
            f"plans={load['grid'].size()} folds={load['folds']}",
            refine_naive,
            refine_fast,
        )
    )
    return rows


def render(rows: list[MiningBenchRow]) -> str:
    return render_table(
        ["Stage", "Workload", "Baseline ms", "Optimized ms", "Speedup"],
        [row.cells() for row in rows],
        title="R-4: mining data-plane throughput (presorted vs naive)",
    )


def main(scale: Scale | str = "bench") -> str:
    table = render(run(scale))
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Ablation A-1: how much does the imbalance treatment matter?

Step 2 motivates resampling by the skew of fault injection data; Step
4 sweeps its parameters.  This ablation isolates the *kind* of
treatment: for each dataset it cross-validates C4.5 under four fixed
plans -- none, undersampling (50% majority retained), oversampling
with replacement (300%), and SMOTE (300%, k=5) -- reporting
AUC/TPR/FPR per plan.  Expected shape: resampling raises TPR on the
imbalanced datasets (most visibly where the baseline TPR is lowest,
the paper's FG-B pattern) at a small FPR cost, with SMOTE >= plain
oversampling more often than not.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.preprocess import PreprocessingPlan
from repro.experiments.datasets import DATASET_SPECS, generate_dataset
from repro.experiments.reporting import fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale
from repro.mining.crossval import cross_validate
from repro.mining.tree import C45DecisionTree

__all__ = ["PLANS", "AblationRow", "run", "main"]

PLANS: dict[str, PreprocessingPlan] = {
    "none": PreprocessingPlan(),
    "under-50": PreprocessingPlan(sampling="undersample", level=50.0),
    "over-300": PreprocessingPlan(sampling="oversample", level=300.0),
    "smote-300-k5": PreprocessingPlan(sampling="smote", level=300.0, neighbours=5),
}


@dataclasses.dataclass
class AblationRow:
    dataset: str
    plan: str
    fpr: float
    tpr: float
    auc: float

    def cells(self) -> list[str]:
        return [
            self.dataset,
            self.plan,
            fmt_sci(self.fpr),
            fmt_rate(self.tpr),
            fmt_rate(self.auc),
        ]


def run(scale: Scale | str = "bench", datasets=None) -> list[AblationRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = (
        list(datasets)
        if datasets is not None
        else ["7Z-A1", "7Z-B2", "FG-B1", "MG-A2"]
    )
    rows: list[AblationRow] = []
    for name in names:
        if name not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {name!r}")
        data = generate_dataset(name, scale)
        for plan_name, plan in PLANS.items():
            evaluation = cross_validate(
                data,
                C45DecisionTree,
                k=scale.folds,
                rng=np.random.default_rng(scale.seed),
                preprocess=plan.apply,
            )
            rows.append(
                AblationRow(
                    dataset=name,
                    plan=plan_name,
                    fpr=evaluation.mean_fpr,
                    tpr=evaluation.mean_tpr,
                    auc=evaluation.mean_auc,
                )
            )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "Plan", "FPR", "TPR", "AUC"],
        [r.cells() for r in rows],
        title="Ablation A-1: class-imbalance treatment",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

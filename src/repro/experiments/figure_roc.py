"""Figure R (extension): the multi-point ROC plot of Section IV.

"For different settings, the same algorithm will produce multiple
points on the plot.  The area under the curve (AUC) obtained by
joining these points to (0,0) and (1,1) is a common measure of
expected accuracy of the algorithm."  The paper's tables collapse each
model to the single-point trapezoid AUC; this driver draws the full
picture for one dataset: every Step-4 grid configuration contributes
one (FPR, TPR) point, the points are joined into the upper envelope,
and its AUC is reported alongside the baseline's single-point value.

Rendered as an ASCII scatter so it works anywhere.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.methodology import Methodology, MethodologyConfig
from repro.experiments.datasets import generate_dataset
from repro.experiments.scale import Scale, get_scale

__all__ = ["run", "main", "ascii_roc"]


def run(scale: Scale | str = "bench", dataset: str = "FG-B1"):
    """Return (points, envelope_auc, baseline_auc) for the dataset.

    ``points`` is the list of (fpr, tpr, label) across the grid plus
    the baseline.
    """
    if isinstance(scale, str):
        scale = get_scale(scale)
    data = generate_dataset(dataset, scale)
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    baseline = method.step3_generate(data)
    refinement = method.step4_refine(data, scale.grid)

    points = [
        (
            baseline.evaluation.mean_fpr,
            baseline.evaluation.mean_tpr,
            "baseline",
        )
    ]
    for trial in refinement.trials:
        points.append(
            (
                trial.evaluation.mean_fpr,
                trial.evaluation.mean_tpr,
                trial.plan.describe(),
            )
        )
    envelope_auc = _envelope_auc([(p[0], p[1]) for p in points])
    return points, envelope_auc, baseline.evaluation.mean_auc


def _envelope_auc(points: list[tuple[float, float]]) -> float:
    """AUC of the concave upper envelope through (0,0) and (1,1)."""
    candidates = sorted(set(points) | {(0.0, 0.0), (1.0, 1.0)})
    # Upper envelope: keep the points forming a concave chain in tpr.
    hull: list[tuple[float, float]] = []
    for point in candidates:
        hull.append(point)
        while len(hull) >= 3 and _turns_right(hull[-3], hull[-2], hull[-1]):
            del hull[-2]
    fpr = np.array([p[0] for p in hull])
    tpr = np.array([p[1] for p in hull])
    dx = np.diff(fpr)
    mid = (tpr[1:] + tpr[:-1]) / 2.0
    return float((dx * mid).sum())


def _turns_right(a, b, c) -> bool:
    cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    return cross >= 0


def ascii_roc(points, width: int = 61, height: int = 21) -> str:
    """Plot ROC points in the unit square as ASCII.

    The FPR axis is magnified (fault-injection FPRs live near 0) by a
    square-root scale, noted in the axis label.
    """
    grid = [[" "] * width for _ in range(height)]
    # Diagonal (chance line) under sqrt-x scaling.
    for col in range(width):
        fpr = (col / (width - 1)) ** 2
        row = height - 1 - round(fpr * (height - 1))
        grid[row][col] = "."
    for fpr, tpr, _ in points:
        col = round(math.sqrt(min(max(fpr, 0.0), 1.0)) * (width - 1))
        row = height - 1 - round(min(max(tpr, 0.0), 1.0) * (height - 1))
        grid[row][col] = "*"
    lines = ["TPR"]
    for r, row in enumerate(grid):
        ordinate = 1.0 - r / (height - 1)
        prefix = f"{ordinate:4.1f}|" if r % 5 == 0 else "    |"
        lines.append(prefix + "".join(row))
    lines.append("    +" + "-" * width)
    lines.append("     0" + " " * (width - 12) + "sqrt(FPR) -> 1")
    return "\n".join(lines)


def main(scale: Scale | str = "bench", dataset: str = "FG-B1") -> str:
    points, envelope_auc, baseline_auc = run(scale, dataset)
    plot = ascii_roc(points)
    best = max(points, key=lambda p: p[1] - p[0])
    text = (
        f"Figure R: ROC points of the refinement grid ({dataset})\n\n"
        f"{plot}\n\n"
        f"points: {len(points)} (baseline + grid trials)\n"
        f"baseline single-point AUC: {baseline_auc:.4f}\n"
        f"multi-point envelope AUC : {envelope_auc:.4f}\n"
        f"best operating point     : fpr={best[0]:.4f} tpr={best[1]:.4f} "
        f"[{best[2]}]"
    )
    print(text)
    return text


if __name__ == "__main__":
    main()

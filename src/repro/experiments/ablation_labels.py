"""Ablation A-6: failure-based vs deviation-based target functions.

The paper's Discussion (Section VIII): "existing work on fault
injection ... typically adopts the view that an error is any deviation
from a fault-free execution, i.e, golden run ... we believe that it is
possible to adopt a similar approach in order to derive error
detection predicates that can identify such deviations.  [Our] focus
... has been on generating predicates ... capable of detecting failure
inducing states."

This ablation builds both target functions from the *same* injected
runs and trains a C4.5 predicate on each, evaluating both predicates
against the **failure** ground truth (the thing a fail-safe system
ultimately cares about).  Expected shape: the deviation-trained
predicate behaves like the invariants of A-5 -- it flags the many
corrupted-but-absorbed states too, so judged against failures it pays
a large false positive price; at entry-sampling it degenerates further
(directly after injection, virtually every run deviates, so the
deviation concept has almost no negative class to learn from).
"""

from __future__ import annotations

import dataclasses

from repro.core.methodology import Methodology, MethodologyConfig
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
)
from repro.experiments.reporting import fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale
from repro.injection.campaign import Campaign

__all__ = ["LabelRow", "run", "main"]


@dataclasses.dataclass
class LabelRow:
    dataset: str
    trained_on: str        # failure | deviation
    positives: int         # training positives under that labelling
    tpr_vs_failure: float  # completeness against failure ground truth
    fpr_vs_failure: float

    def cells(self) -> list[str]:
        return [
            self.dataset,
            self.trained_on,
            str(self.positives),
            fmt_rate(self.tpr_vs_failure),
            fmt_sci(self.fpr_vs_failure),
        ]


def run(scale: Scale | str = "bench", datasets=None) -> list[LabelRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else ["7Z-B2", "MG-A2"]
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    rows: list[LabelRow] = []
    for name in names:
        spec = DATASET_SPECS[name]
        # Run the campaign fresh: the deviation label needs the golden
        # comparison, which cached logs from older runs may lack.
        target = build_target(spec.target, scale)
        result = Campaign(target, campaign_config(spec, scale)).run()
        failure_data = result.to_dataset(name, label_mode="failure")
        deviation_data = result.to_dataset(name, label_mode="deviation")

        for trained_on, data in (
            ("failure", failure_data),
            ("deviation", deviation_data),
        ):
            report = method.step3_generate(data)
            detector = report.detector(name=f"{trained_on}_detector")
            # Ground truth is always the failure labelling.
            efficiency = detector.efficiency_on(failure_data)
            rows.append(
                LabelRow(
                    dataset=name,
                    trained_on=trained_on,
                    positives=int(data.class_counts()[1]),
                    tpr_vs_failure=efficiency.completeness,
                    fpr_vs_failure=1.0 - efficiency.accuracy,
                )
            )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "TrainedOn", "Positives", "TPRvsFail", "FPRvsFail"],
        [r.cells() for r in rows],
        title="Ablation A-6: failure-based vs deviation-based labelling",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

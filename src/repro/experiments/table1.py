"""Table I: the confusion-matrix form, populated from a real model.

Table I of the paper is the general confusion matrix layout for
concept learning (TP/FN/FP/TN and the marginals).  This driver renders
that layout populated with the pooled cross-validation confusion
matrix of a baseline model on one dataset, together with every derived
measure Section IV defines -- demonstrating the full metric surface on
real numbers.
"""

from __future__ import annotations

from repro.core.methodology import Methodology, MethodologyConfig
from repro.experiments.datasets import generate_dataset
from repro.experiments.reporting import render_table
from repro.experiments.scale import Scale, get_scale

__all__ = ["run", "main"]


def run(scale: Scale | str = "bench", dataset: str = "7Z-A1"):
    if isinstance(scale, str):
        scale = get_scale(scale)
    data = generate_dataset(dataset, scale)
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    report = method.step3_generate(data)
    return report.evaluation.pooled_confusion()


def main(scale: Scale | str = "bench", dataset: str = "7Z-A1") -> str:
    confusion = run(scale, dataset)
    rows = [
        ["Actual pos.", f"{confusion.tp:.0f}", f"{confusion.fn:.0f}",
         f"{confusion.n_pos:.0f}"],
        ["Actual neg.", f"{confusion.fp:.0f}", f"{confusion.tn:.0f}",
         f"{confusion.n_neg:.0f}"],
        ["Marginal", f"{confusion.tp + confusion.fp:.0f}",
         f"{confusion.fn + confusion.tn:.0f}", f"{confusion.total:.0f}"],
    ]
    table = render_table(
        ["", "Pred. pos.", "Pred. neg.", "Sum"],
        rows,
        title=f"Table I: confusion matrix ({dataset}, pooled over folds)",
    )
    metrics = confusion.as_dict()
    lines = [table, "", "Derived measures (Section IV):"]
    for key in ("tpr", "fpr", "tnr", "precision", "recall", "f1", "gmean",
                "accuracy", "auc", "distance_to_perfect"):
        lines.append(f"  {key:>20s} = {metrics[key]:.6f}")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Table rendering helpers shared by the experiment drivers.

The drivers print their results in the paper's layout: FPR and Var in
compact scientific notation ("2E-05", "1E-32", "0"), rates as
four-decimal fractions without the leading zero (".9979"), and
complexity with one decimal -- so a reproduction run can be compared
against Tables III/IV cell by cell.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["fmt_rate", "fmt_sci", "fmt_comp", "render_table"]


def fmt_sci(value: float) -> str:
    """Paper-style compact scientific notation ('2E-05'; '0' for zero)."""
    if value == 0:
        return "0"
    text = f"{value:.0E}"
    mantissa, _, exponent = text.partition("E")
    return f"{mantissa}E{exponent}"


def fmt_rate(value: float) -> str:
    """Paper-style rate: '.9979' (or '1.0000' at the top end)."""
    if value >= 0.99995:
        return "1.0000"
    return f"{value:.4f}"[1:] if value < 1 else f"{value:.4f}"


def fmt_comp(value: float) -> str:
    return f"{value:.1f}"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str | None = None
) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

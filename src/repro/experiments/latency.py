"""Experiment L-1: detection latency and location composition.

Coverage and latency are the paper's two detector-efficiency metrics
(Sections I/II: "coverage relates to the design problem, while latency
relates to the location problem").  The tables only report the design
side; this experiment measures the location side on the reproduction:

* train one detector at the module's **entry** and one at its **exit**
  (the 1- and 3-style datasets of Table II);
* install each — and their union (:func:`repro.core.composition.any_of`)
  — as continuous runtime assertions and repeat the injection campaign
  of the entry configuration;
* report Powell-style coverage with Wilson bounds, observed FPR, and
  the detection-latency distribution in probe occurrences.

Expected shape: the entry detector catches corruptions at latency ~0
(it guards the injection point); the exit detector sees them only
after the module executes, trading latency for observing propagated
effects; the union dominates both in coverage at the sum of their
false-positive costs.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.coverage import EfficiencyReport, detector_efficiency_report
from repro.core.composition import any_of
from repro.core.methodology import Methodology, MethodologyConfig
from repro.core.validate import ValidationCampaign
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
    generate_dataset,
)
from repro.experiments.reporting import fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale

__all__ = ["LatencyRow", "run", "main"]


@dataclasses.dataclass
class LatencyRow:
    group: str          # e.g. "MG-B"
    detector: str       # entry | exit | union
    report: EfficiencyReport

    def cells(self) -> list[str]:
        coverage = self.report.coverage
        latency = self.report.latency
        return [
            self.group,
            self.detector,
            fmt_rate(coverage.point),
            f"[{coverage.wilson_low:.3f},{coverage.wilson_high:.3f}]",
            fmt_sci(self.report.false_positive_rate),
            f"{latency.mean:.2f}",
            f"{latency.p90:.1f}",
        ]


def run(scale: Scale | str = "bench", groups=None) -> list[LatencyRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    chosen = list(groups) if groups is not None else ["MG-B"]
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    rows: list[LatencyRow] = []
    for group in chosen:
        entry_name, exit_name = f"{group}1", f"{group}3"
        for name in (entry_name, exit_name):
            if name not in DATASET_SPECS:
                raise ValueError(f"unknown dataset {name!r}")
        entry_spec = DATASET_SPECS[entry_name]
        entry_detector = method.step3_generate(
            generate_dataset(entry_name, scale)
        ).detector(
            location=campaign_config(entry_spec, scale).sample_probe,
            name="entry",
        )
        exit_spec = DATASET_SPECS[exit_name]
        exit_detector = method.step3_generate(
            generate_dataset(exit_name, scale)
        ).detector(
            location=campaign_config(exit_spec, scale).sample_probe,
            name="exit",
        )
        union = any_of([entry_detector, exit_detector], name="union")
        # Validation runs the detectors as continuous runtime
        # assertions -- exactly the deployed configuration -- so lower
        # them through the serving compiler first; the compiler's
        # self-check guarantees the coverage/latency numbers are
        # unchanged while the campaign itself runs faster.
        for detector in (entry_detector, exit_detector, union):
            detector.compile()

        # Re-inject with each detector monitoring continuously.  The
        # campaign injects at the entry (the *1 configuration) and
        # samples at each detector's own probe.
        target = build_target(entry_spec.target, scale)
        for label, detector, spec, everywhere in (
            ("entry", entry_detector, entry_spec, False),
            ("exit", exit_detector, exit_spec, False),
            # The union spans both locations, so its assertion runs at
            # every probe (monitor_all_probes).
            ("union", union, exit_spec, True),
        ):
            config = campaign_config(spec, scale)
            config = dataclasses.replace(
                config,
                injection_location=entry_spec.injection_location,
            )
            validation = ValidationCampaign(
                target, config, detector, mode="continuous",
                monitor_all_probes=everywhere,
            ).validate()
            rows.append(
                LatencyRow(
                    group=group,
                    detector=label,
                    report=detector_efficiency_report(validation),
                )
            )
    return rows


def main(scale: Scale | str = "bench", groups=None) -> str:
    rows = run(scale, groups)
    table = render_table(
        ["Group", "Detector", "Coverage", "Wilson95", "FPR",
         "MeanLat", "P90Lat"],
        [r.cells() for r in rows],
        title="L-1: coverage and latency by detector location",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

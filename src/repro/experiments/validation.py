"""Experiment V-1: runtime-assertion validation (Section VII-D).

The paper's final check installs each model's predicate as a runtime
assertion at its code location and repeats the fault injection
experiments "to ensure that the observed FPR and TPR values were
commensurate with the rates presented previously".  This driver does
exactly that -- same test cases, new injected runs -- in both
evaluation modes:

* single-shot at the sampling point (the trained distribution) --
  observed rates should be commensurate with the CV estimates;
* continuous monitoring at every subsequent occurrence -- additionally
  yields detection latency, and quantifies how predicates degrade away
  from their sampling point (the location-specificity the paper
  flags as future work).

Pass ``holdout=True`` to validate on *unseen* test cases instead --
stricter than the paper's procedure.  Expect degradation on targets
whose predicates key on workload-specific thresholds (e.g. the 7Z
archive offsets); that gap is a real observation about
workload-generality, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses

from repro.core.methodology import Methodology, MethodologyConfig
from repro.core.validate import ValidationCampaign
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
    generate_dataset,
)
from repro.experiments.reporting import fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale

__all__ = ["ValidationRow", "run", "main"]


@dataclasses.dataclass
class ValidationRow:
    dataset: str
    cv_tpr: float
    cv_fpr: float
    observed_tpr: float
    observed_fpr: float
    continuous_tpr: float
    continuous_fpr: float
    mean_latency: float
    commensurate: bool

    def cells(self) -> list[str]:
        return [
            self.dataset,
            fmt_rate(self.cv_tpr),
            fmt_sci(self.cv_fpr),
            fmt_rate(self.observed_tpr),
            fmt_sci(self.observed_fpr),
            fmt_rate(self.continuous_tpr),
            fmt_sci(self.continuous_fpr),
            f"{self.mean_latency:.2f}",
            "yes" if self.commensurate else "NO",
        ]


def _holdout_test_cases(spec, scale: Scale) -> tuple[int, ...]:
    """Test cases the training campaign did not use."""
    if spec.target == "7Z":
        used = scale.sz_test_cases
        return tuple(max(used) + 1 + i for i in range(2))
    if spec.target == "MG":
        used = scale.mg_test_cases
        return tuple(max(used) + 1 + i for i in range(2))
    # FG has exactly 9 scenarios; hold out by using scenarios the
    # training scale skipped, falling back to a subset when it used all.
    used = set(scale.fg_test_cases)
    free = [tc for tc in range(9) if tc not in used]
    return tuple(free[:2]) if free else (1, 5)


def run(
    scale: Scale | str = "bench",
    datasets=None,
    tolerance: float = 0.15,
    holdout: bool = False,
) -> list[ValidationRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else ["7Z-A1", "MG-A1", "MG-B2"]
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    rows: list[ValidationRow] = []
    for name in names:
        spec = DATASET_SPECS[name]
        data = generate_dataset(name, scale)
        outcome = method.run(data, scale.grid)
        refined = outcome.refined
        detector = refined.detector(name=f"{name.replace('-', '_')}_detector")

        config = campaign_config(spec, scale)
        if holdout:
            config = dataclasses.replace(
                config, test_cases=_holdout_test_cases(spec, scale)
            )
        target = build_target(spec.target, scale)
        single = ValidationCampaign(target, config, detector).validate()
        continuous = ValidationCampaign(
            target, config, detector, mode="continuous"
        ).validate()

        cv_tpr = refined.evaluation.mean_tpr
        cv_fpr = refined.evaluation.mean_fpr
        rows.append(
            ValidationRow(
                dataset=name,
                cv_tpr=cv_tpr,
                cv_fpr=cv_fpr,
                observed_tpr=single.observed_tpr,
                observed_fpr=single.observed_fpr,
                continuous_tpr=continuous.observed_tpr,
                continuous_fpr=continuous.observed_fpr,
                mean_latency=continuous.mean_latency,
                commensurate=single.commensurate_with(cv_tpr, cv_fpr, tolerance),
            )
        )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "cvTPR", "cvFPR", "obsTPR", "obsFPR",
         "contTPR", "contFPR", "Latency", "Commensurate"],
        [r.cells() for r in rows],
        title="V-1: runtime-assertion validation on held-out test cases",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Ablation A-2: learner choice and the log-mapping interaction.

The paper chooses symbolic learners because their output converts to
first-order predicates, and prescribes the signed log mapping g(x) for
distribution-sensitive learners (Naive Bayes, logistic regression) on
the extreme magnitudes bit flips produce.  This ablation
cross-validates every registered learner on each dataset -- the
distribution-sensitive ones both with and without g(x) -- reporting
AUC/TPR/FPR.

Expected shape: the symbolic learners (C4.5, rules, PRISM) are
competitive with or better than the rest (justifying the paper's
choice: predicates come for free), and the log mapping helps Naive
Bayes / logistic regression noticeably (thresholds on raw magnitudes
spanning 1e300 defeat their likelihoods).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.preprocess import PreprocessingPlan, make_learner, model_complexity
from repro.experiments.datasets import DATASET_SPECS, generate_dataset
from repro.experiments.reporting import fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale
from repro.mining.crossval import cross_validate

__all__ = ["CONFIGS", "LearnerRow", "run", "main"]

#: (label, learner name, plan)
CONFIGS: list[tuple[str, str, PreprocessingPlan]] = [
    ("c45", "c45", PreprocessingPlan()),
    ("rules", "rules", PreprocessingPlan()),
    ("prism", "prism", PreprocessingPlan()),
    ("naive-bayes(raw)", "naive-bayes", PreprocessingPlan()),
    ("naive-bayes(log)", "naive-bayes", PreprocessingPlan(signed_log=True)),
    ("logistic(raw)", "logistic", PreprocessingPlan(standardise=True)),
    (
        "logistic(log)",
        "logistic",
        PreprocessingPlan(signed_log=True, standardise=True),
    ),
    ("knn", "knn", PreprocessingPlan(signed_log=True)),
    ("adaboost", "adaboost", PreprocessingPlan()),
    ("oner", "oner", PreprocessingPlan()),
]


@dataclasses.dataclass
class LearnerRow:
    dataset: str
    learner: str
    fpr: float
    tpr: float
    auc: float
    comp: float

    def cells(self) -> list[str]:
        return [
            self.dataset,
            self.learner,
            fmt_sci(self.fpr),
            fmt_rate(self.tpr),
            fmt_rate(self.auc),
            f"{self.comp:.1f}",
        ]


def run(scale: Scale | str = "bench", datasets=None, configs=None) -> list[LearnerRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else ["7Z-A1", "MG-B2"]
    chosen = configs if configs is not None else CONFIGS
    rows: list[LearnerRow] = []
    for name in names:
        if name not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {name!r}")
        data = generate_dataset(name, scale)
        for label, learner, plan in chosen:
            evaluation = cross_validate(
                data,
                lambda learner=learner: make_learner(learner),
                k=scale.folds,
                rng=np.random.default_rng(scale.seed),
                preprocess=plan.apply,
                complexity=model_complexity,
            )
            rows.append(
                LearnerRow(
                    dataset=name,
                    learner=label,
                    fpr=evaluation.mean_fpr,
                    tpr=evaluation.mean_tpr,
                    auc=evaluation.mean_auc,
                    comp=evaluation.mean_complexity,
                )
            )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "Learner", "FPR", "TPR", "AUC", "Comp"],
        [r.cells() for r in rows],
        title="Ablation A-2: learner choice and log mapping",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Ablation A-5: mined predicates vs likely-invariant baselines.

Section II-D positions the methodology against Daikon-style likely
program invariants: "our approach seeks to detect erroneous states
that lead to failure rather than all erroneous states".  This ablation
makes that contrast measurable.  For each dataset it builds three
detectors for the same program location and evaluates them on the same
injection data:

* **mined** -- the methodology's baseline C4.5 predicate (Step 3);
* **invariants** -- Daikon-style invariants (ranges, constants, signs,
  orderings) mined from the golden runs, violation = detection;
* **range-EA** -- Hiller-style executable assertions (range constraints
  only, generous margin), the specification-constraint baseline of
  Section II-A.

Expected shape: the invariant detectors are *complete* (they flag the
states that lead to failure, since those deviate from golden
behaviour) but pay a large false-positive price -- they also flag the
majority of corrupted-but-harmless states, which the failure-aware
mined predicate deliberately ignores.
"""

from __future__ import annotations

import dataclasses

from repro.baselines.invariants import mine_invariants, range_assertions
from repro.core.methodology import Methodology, MethodologyConfig
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
    generate_dataset,
)
from repro.experiments.reporting import fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale
from repro.injection.golden import capture_golden_run

__all__ = ["BaselineRow", "run", "main"]


@dataclasses.dataclass
class BaselineRow:
    dataset: str
    approach: str
    tpr: float       # completeness
    fpr: float       # 1 - accuracy
    complexity: int  # atomic conditions in the predicate

    def cells(self) -> list[str]:
        return [
            self.dataset,
            self.approach,
            fmt_rate(self.tpr),
            fmt_sci(self.fpr),
            str(self.complexity),
        ]


def run(scale: Scale | str = "bench", datasets=None) -> list[BaselineRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else ["7Z-A1", "FG-B1", "MG-B1"]
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    rows: list[BaselineRow] = []
    for name in names:
        spec = DATASET_SPECS[name]
        data = generate_dataset(name, scale)
        config = campaign_config(spec, scale)
        target = build_target(spec.target, scale)

        # Golden-run traces at the sampling probe feed the baselines.
        samples = []
        for test_case in config.test_cases:
            golden = capture_golden_run(target, test_case)
            samples.extend(
                s.variables for s in golden.samples_at(config.sample_probe)
            )

        mined = method.step3_generate(data).detector(name="mined")
        detectors = {
            "mined (step 3)": mined,
            "invariants": mine_invariants(
                samples, config.sample_probe
            ).to_detector("invariants"),
            "range-EA": range_assertions(
                samples, config.sample_probe
            ).to_detector("range_ea"),
        }
        for approach, detector in detectors.items():
            efficiency = detector.efficiency_on(data)
            rows.append(
                BaselineRow(
                    dataset=name,
                    approach=approach,
                    tpr=efficiency.completeness,
                    fpr=1.0 - efficiency.accuracy,
                    complexity=detector.predicate.complexity(),
                )
            )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "Approach", "TPR", "FPR", "Conds"],
        [r.cells() for r in rows],
        title="Ablation A-5: mined predicates vs invariant baselines",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

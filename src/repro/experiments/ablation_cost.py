"""Ablation A-4: cost-sensitive weighting vs resampling.

Section IV reviews two treatments for imbalance: change the data
distribution implicitly via per-instance costs (Ting's instance
weighting, which C4.5 consumes directly) or explicitly via resampling.
This ablation puts them side by side on the same datasets: Ting
weighting at cost ratios 5 and 20 against oversampling-with-
replacement and SMOTE at 300%.

Expected shape (Ting's empirical finding, which the paper cites):
instance weighting is competitive with resampling -- it lifts TPR on
the imbalanced datasets for a comparable FPR cost -- while being
deterministic and not inflating the training set.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.preprocess import PreprocessingPlan
from repro.experiments.datasets import DATASET_SPECS, generate_dataset
from repro.experiments.reporting import fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale
from repro.mining.crossval import cross_validate
from repro.mining.tree import C45DecisionTree

__all__ = ["PLANS", "CostRow", "run", "main"]

PLANS: dict[str, PreprocessingPlan] = {
    "none": PreprocessingPlan(),
    "ting-cost-5": PreprocessingPlan(cost_ratio=5.0),
    "ting-cost-20": PreprocessingPlan(cost_ratio=20.0),
    "over-300": PreprocessingPlan(sampling="oversample", level=300.0),
    "smote-300-k5": PreprocessingPlan(sampling="smote", level=300.0, neighbours=5),
}


@dataclasses.dataclass
class CostRow:
    dataset: str
    plan: str
    fpr: float
    tpr: float
    auc: float

    def cells(self) -> list[str]:
        return [
            self.dataset,
            self.plan,
            fmt_sci(self.fpr),
            fmt_rate(self.tpr),
            fmt_rate(self.auc),
        ]


def run(scale: Scale | str = "bench", datasets=None) -> list[CostRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else ["7Z-B1", "MG-B1"]
    rows: list[CostRow] = []
    for name in names:
        if name not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {name!r}")
        data = generate_dataset(name, scale)
        for plan_name, plan in PLANS.items():
            evaluation = cross_validate(
                data,
                C45DecisionTree,
                k=scale.folds,
                rng=np.random.default_rng(scale.seed),
                preprocess=plan.apply,
            )
            rows.append(
                CostRow(
                    dataset=name,
                    plan=plan_name,
                    fpr=evaluation.mean_fpr,
                    tpr=evaluation.mean_tpr,
                    auc=evaluation.mean_auc,
                )
            )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "Plan", "FPR", "TPR", "AUC"],
        [r.cells() for r in rows],
        title="Ablation A-4: cost-sensitive weighting vs resampling",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Experiment scales.

The paper's campaigns are large (250 test cases x every bit of every
variable x 4 injection times per 7Z/MG module; 9 scenarios x 2700-
iteration simulations for FG).  The drivers support that configuration
("paper") but record their numbers at a documented laptop scale
("bench"); the test suite uses a seconds-scale configuration
("smoke").  EXPERIMENTS.md states which scale produced which numbers.

A scale fixes, per target: the workload size, the test cases, the
injection times (in probe occurrences) and the bit positions flipped
per variable kind, plus the cross-validation fold count and the
refinement grid.
"""

from __future__ import annotations

import dataclasses

from repro.core.refine import RefinementGrid

__all__ = ["Scale", "get_scale", "SCALES"]


def _float_bits_dense() -> tuple[int, ...]:
    """Full exponent+sign coverage, sparse mantissa."""
    return tuple(range(0, 52, 8)) + tuple(range(52, 64))


def _float_bits_smoke() -> tuple[int, ...]:
    return (0, 16, 40) + tuple(range(52, 64, 2))


@dataclasses.dataclass(frozen=True)
class Scale:
    """One named experiment configuration."""

    name: str
    # 7-Zip analogue
    sz_n_files: int
    sz_size_range: tuple[int, int]
    sz_test_cases: tuple[int, ...]
    sz_injection_times: tuple[int, ...]
    sz_bits: dict[str, tuple[int, ...]]
    # Mp3Gain analogue
    mg_n_tracks: int
    mg_sample_range: tuple[int, int]
    mg_test_cases: tuple[int, ...]
    mg_injection_times: tuple[int, ...]
    mg_bits: dict[str, tuple[int, ...]]
    # FlightGear analogue
    fg_iterations: tuple[int, int]  # (init, run)
    fg_dt: float
    fg_test_cases: tuple[int, ...]
    fg_injection_times: tuple[int, ...]
    fg_bits: dict[str, tuple[int, ...]]
    # Analysis
    folds: int
    grid: RefinementGrid
    seed: int = 0


SCALES: dict[str, Scale] = {
    # Seconds-scale: CI / unit tests.
    "smoke": Scale(
        name="smoke",
        sz_n_files=5,
        sz_size_range=(40, 90),
        sz_test_cases=tuple(range(3)),
        sz_injection_times=(1, 3),
        sz_bits={"int32": tuple(range(0, 32, 4)) + (31,), "float64": _float_bits_smoke(), "bool": (0,)},
        mg_n_tracks=5,
        mg_sample_range=(256, 512),
        mg_test_cases=tuple(range(3)),
        mg_injection_times=(1, 3),
        mg_bits={"int32": tuple(range(0, 32, 4)) + (31,), "float64": _float_bits_smoke(), "bool": (0,)},
        fg_iterations=(40, 180),
        fg_dt=0.25,
        fg_test_cases=(0, 4, 8),
        fg_injection_times=(48, 90, 140),
        fg_bits={"int32": (0, 4, 12, 24, 31), "float64": _float_bits_smoke(), "bool": (0,)},
        folds=5,
        grid=RefinementGrid(
            undersample_levels=(25.0,),
            oversample_levels=(300.0,),
            neighbour_counts=(5,),
        ),
    ),
    # Minutes-scale: the configuration behind EXPERIMENTS.md numbers.
    "bench": Scale(
        name="bench",
        sz_n_files=8,
        sz_size_range=(60, 160),
        sz_test_cases=tuple(range(6)),
        sz_injection_times=(1, 3, 5, 7),
        sz_bits={"int32": tuple(range(32)), "float64": _float_bits_dense(), "bool": (0,)},
        mg_n_tracks=8,
        mg_sample_range=(512, 1024),
        mg_test_cases=tuple(range(6)),
        mg_injection_times=(1, 3, 5, 7),
        mg_bits={"int32": tuple(range(32)), "float64": _float_bits_dense(), "bool": (0,)},
        fg_iterations=(100, 440),
        fg_dt=0.1,
        fg_test_cases=tuple(range(9)),
        fg_injection_times=(120, 220, 340),
        fg_bits={"int32": tuple(range(0, 32, 2)) + (31,), "float64": _float_bits_dense(), "bool": (0,)},
        folds=10,
        grid=RefinementGrid.reduced(),
    ),
    # The paper's configuration; supported but hours-scale in pure
    # Python -- run deliberately, not from the benches.
    "paper": Scale(
        name="paper",
        sz_n_files=25,
        sz_size_range=(60, 240),
        sz_test_cases=tuple(range(250)),
        sz_injection_times=(3, 9, 15, 21),
        sz_bits={"int32": tuple(range(32)), "float64": tuple(range(64)), "bool": (0,)},
        mg_n_tracks=25,
        mg_sample_range=(1024, 4096),
        mg_test_cases=tuple(range(250)),
        mg_injection_times=(3, 9, 15, 21),
        mg_bits={"int32": tuple(range(32)), "float64": tuple(range(64)), "bool": (0,)},
        fg_iterations=(500, 2200),
        fg_dt=0.02,
        fg_test_cases=tuple(range(9)),
        fg_injection_times=(1100, 1700, 2300),  # 600/1200/1800 post-init
        fg_bits={"int32": tuple(range(32)), "float64": tuple(range(64)), "bool": (0,)},
        folds=10,
        grid=RefinementGrid.paper(),
    ),
}


def get_scale(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None

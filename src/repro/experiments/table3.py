"""Table III: baseline Decision Tree Induction results (no sampling).

For every Table II dataset, the paper evaluates a baseline C4.5
configuration ("no attempt was made to search for algorithm
parameters") with 10-fold stratified cross-validation and reports the
mean FPR, mean TPR, mean AUC, mean tree node count (Comp) and the AUC
variance across folds (Var).  This driver reproduces each row.

Paper-shape expectations (see EXPERIMENTS.md for measured values):
mean AUC > ~0.89 everywhere, FPR at or near zero, TPR mostly > 0.94
with the FG datasets the hardest, Var consistently tiny.
"""

from __future__ import annotations

import dataclasses

from repro.core.methodology import Methodology, MethodologyConfig, ModelReport
from repro.experiments.datasets import DATASET_SPECS, generate_dataset
from repro.experiments.reporting import fmt_comp, fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale

__all__ = ["Table3Row", "run", "main"]


@dataclasses.dataclass
class Table3Row:
    dataset: str
    fpr: float
    tpr: float
    auc: float
    comp: float
    var: float
    report: ModelReport

    def cells(self) -> list[str]:
        return [
            self.dataset,
            fmt_sci(self.fpr),
            fmt_rate(self.tpr),
            fmt_rate(self.auc),
            fmt_comp(self.comp),
            fmt_sci(self.var),
        ]


def run(scale: Scale | str = "bench", datasets=None) -> list[Table3Row]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else sorted(DATASET_SPECS)
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    rows: list[Table3Row] = []
    for name in names:
        dataset = generate_dataset(name, scale)
        report = method.step3_generate(dataset)
        summary = report.summary()
        rows.append(
            Table3Row(
                dataset=name,
                fpr=summary["fpr"],
                tpr=summary["tpr"],
                auc=summary["auc"],
                comp=summary["comp"],
                var=summary["var"],
                report=report,
            )
        )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "FPR", "TPR", "AUC", "Comp", "Var"],
        [r.cells() for r in rows],
        title="Table III: decision tree induction results (no sampling)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Experiment drivers: one module per paper table/figure plus ablations.

Every artefact of the paper's evaluation has a driver here (the
per-experiment index lives in DESIGN.md):

* :mod:`repro.experiments.table1` -- the confusion-matrix form of
  Table I, populated from a real model;
* :mod:`repro.experiments.table2` -- the 18 fault-injection datasets
  of Table II (campaign summary);
* :mod:`repro.experiments.table3` -- baseline Decision Tree Induction
  results (Table III: FPR/TPR/AUC/Comp/Var per dataset);
* :mod:`repro.experiments.table4` -- refined results after the Step-4
  grid search (Table IV: adds the S and N columns);
* :mod:`repro.experiments.figure1` -- the methodology pipeline of
  Figure 1, executed stage by stage with a trace;
* :mod:`repro.experiments.figure2` -- a decision-tree predicate
  example in the style of Figure 2;
* :mod:`repro.experiments.ablation_sampling` /
  :mod:`~repro.experiments.ablation_learners` /
  :mod:`~repro.experiments.ablation_location` -- ablations over the
  design choices DESIGN.md calls out;
* :mod:`repro.experiments.validation` -- the runtime-assertion
  re-injection validation of Section VII-D;
* :mod:`repro.experiments.runtime_bench` -- serving throughput of the
  :mod:`repro.runtime` compiled detectors vs interpreted evaluation;
* :mod:`repro.experiments.simplify_bench` -- effect of the static
  simplifier (:mod:`repro.analysis.simplify`) on mined detectors:
  atom counts, clause verdicts and batch-serving time;
* :mod:`repro.experiments.mining_bench` -- throughput of the
  vectorised mining data plane (presorted induction, batch inference,
  reuse caches) vs the naive reference, under its bit-identity
  contract.

All drivers are parameterised by an :class:`~repro.experiments.scale.Scale`
("smoke" for tests, "bench" for the recorded numbers, "paper" for the
full-size configuration) and cache campaign logs on disk so the
expensive Step 1 runs once per (dataset, scale).
"""

from repro.experiments.scale import Scale, get_scale
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
    generate_dataset,
    load_dataset,
)

__all__ = [
    "DATASET_SPECS",
    "Scale",
    "build_target",
    "campaign_config",
    "generate_dataset",
    "get_scale",
    "load_dataset",
]

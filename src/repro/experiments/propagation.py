"""Experiment P-1: error propagation profiles (the [14] substrate).

For each module the paper injects into, compute the per-variable error
permeability from the campaign records and print the placement-order
ranking with its bit-region profile.  This is the analysis the paper
assumes has already chosen the detector locations; running it on the
reproduction's own campaigns closes that loop (and explains the
failure rates of Table II: modules whose variables are mostly
resilient produce the heavily imbalanced datasets).
"""

from __future__ import annotations

from repro.analysis.propagation import PropagationReport, analyse_propagation
from repro.experiments.datasets import (
    DATASET_SPECS,
    default_cache_dir,
    generate_dataset,
)
from repro.experiments.reporting import render_table
from repro.experiments.scale import Scale, get_scale
from repro.injection.logfmt import read_log

__all__ = ["run", "main"]


def run(scale: Scale | str = "bench", datasets=None) -> list[PropagationReport]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = (
        list(datasets)
        if datasets is not None
        else ["7Z-A1", "7Z-B1", "FG-A1", "FG-B1", "MG-A1", "MG-B1"]
    )
    reports = []
    for name in names:
        if name not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {name!r}")
        # Ensure the campaign log exists, then analyse the records.
        generate_dataset(name, scale)
        log_path = default_cache_dir() / f"{name}.{scale.name}.log"
        with open(log_path) as fp:
            parsed = read_log(fp)
        reports.append(analyse_propagation(parsed))
    return reports


def main(scale: Scale | str = "bench", datasets=None) -> str:
    reports = run(scale, datasets)
    blocks = []
    for report in reports:
        rows = []
        for v in report.ranked():
            rows.append(
                [
                    v.variable,
                    v.kind,
                    str(v.runs),
                    str(v.failures),
                    f"{v.permeability:.3f}",
                    f"{v.region_permeability('low'):.2f}",
                    f"{v.region_permeability('mid'):.2f}",
                    f"{v.region_permeability('high'):.2f}",
                ]
            )
        table = render_table(
            ["Variable", "Kind", "Runs", "Fails", "Perm",
             "LowBits", "MidBits", "HighBits"],
            rows,
            title=(
                f"P-1 {report.target}/{report.module}"
                f"@{report.injection_location}: module permeability "
                f"{report.module_permeability:.3f}"
            ),
        )
        critical = ", ".join(report.critical_variables(0.4)) or "-"
        resilient = ", ".join(report.resilient_variables(0.02)) or "-"
        blocks.append(
            f"{table}\n  critical (perm >= 0.4): {critical}\n"
            f"  resilient (perm <= 0.02): {resilient}"
        )
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":
    main()

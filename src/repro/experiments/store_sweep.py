"""Experiment R-10: compositional campaign store across Table II.

For every Table II dataset, populate a campaign store with the
exhaustive campaign, apply a *representative single-module edit* to
each target system -- module A of each target gains one definition,
leaving module B's source closure untouched -- and re-run every
campaign against the store.  The sweep reports, per dataset, how many
shards reloaded versus re-executed, and verifies the differential
contract on real targets: every warm record table must equal the
fresh run's bit-for-bit (``to_dict()`` equality), i.e. zero
divergences.

The edit is applied without touching the target sources on disk: the
target instance is re-classed to a dynamic subclass (same qualname,
so instance fingerprints are unchanged) whose ``module_sources``
appends one extra definition to the edited module's closure only --
exactly what editing that module's file would do to the fingerprints.
"""

from __future__ import annotations

import shutil
import tempfile

from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
)
from repro.experiments.reporting import render_table
from repro.experiments.scale import Scale, get_scale
from repro.injection.campaign import Campaign
from repro.injection.store import CampaignStore
from repro.mining.cache import clear_reuse_caches

__all__ = ["run", "main", "EDITED_MODULES", "apply_representative_edit"]

#: The module each target's representative edit lands in (module A of
#: every Table II target): its datasets must re-execute, the module-B
#: datasets must reload every shard.
EDITED_MODULES = {"7Z": "FHandle", "FG": "Gear", "MG": "GAnalysis"}

#: The edit itself: one new definition appended to the module's
#: source closure, the smallest change a real patch could make.
EDIT_SOURCE = "def representative_edit():\n    return 10\n"


def apply_representative_edit(target, module: str):
    """Re-class ``target`` so ``module_sources(module)`` gains one
    definition -- the fingerprint effect of editing that module's
    file -- while every other module's closure is unchanged."""
    base = type(target)

    def module_sources(self, m):
        sources = base.module_sources(self, m)
        if sources is None or m != module:
            return sources
        return tuple(sources) + (EDIT_SOURCE,)

    subclass = type(base.__name__, (base,), {"module_sources": module_sources})
    # Same qualname: instance fingerprints (golden cache, shared
    # state) are those of the unedited class, as a file edit's would be.
    subclass.__module__ = base.__module__
    subclass.__qualname__ = base.__qualname__
    target.__class__ = subclass
    return target


def run(scale: Scale | str = "smoke", datasets=None):
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else sorted(DATASET_SPECS)
    root = tempfile.mkdtemp(prefix="repro-store-sweep-")
    store = CampaignStore(root)
    results = []
    try:
        cold_tables = {}
        for name in names:
            if name not in DATASET_SPECS:
                raise ValueError(f"unknown dataset {name!r}")
            spec = DATASET_SPECS[name]
            config = campaign_config(spec, scale)
            clear_reuse_caches()
            cold = Campaign(build_target(spec.target, scale), config).run(
                store=store
            )
            cold_tables[name] = [r.to_dict() for r in cold.records]

        for name in names:
            spec = DATASET_SPECS[name]
            config = campaign_config(spec, scale)
            edited_module = EDITED_MODULES.get(spec.target, spec.module)
            target = apply_representative_edit(
                build_target(spec.target, scale), edited_module
            )
            clear_reuse_caches()
            warm = Campaign(target, config).run(store=store)
            orchestration = warm.orchestration
            warm_table = [r.to_dict() for r in warm.records]
            edited = spec.module == edited_module
            # The edit adds an (unused) definition: fingerprints move,
            # behaviour does not -- so even re-executed shards must
            # reproduce the cold table bit-for-bit.
            divergences = sum(
                1
                for before, after in zip(cold_tables[name], warm_table)
                if before != after
            ) + abs(len(cold_tables[name]) - len(warm_table))
            results.append(
                {
                    "dataset": name,
                    "module": spec.module,
                    "edited_module": edited_module,
                    "edited": edited,
                    "shards": orchestration["tasks"],
                    "reused": orchestration["stored"],
                    "executed": orchestration["executed"],
                    "reused_fraction": (
                        orchestration["stored"] / orchestration["tasks"]
                        if orchestration["tasks"]
                        else 0.0
                    ),
                    "divergences": divergences,
                }
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return results


def main(scale: Scale | str = "smoke", datasets=None) -> str:
    results = run(scale, datasets)
    rows = [
        [
            entry["dataset"],
            entry["module"],
            "yes" if entry["edited"] else "no",
            str(entry["shards"]),
            str(entry["reused"]),
            str(entry["executed"]),
            f"{entry['reused_fraction']:.0%}",
            str(entry["divergences"]),
        ]
        for entry in results
    ]
    total = sum(e["shards"] for e in results)
    reused = sum(e["reused"] for e in results)
    divergences = sum(e["divergences"] for e in results)
    table = render_table(
        ["Dataset", "Module", "Edited", "Shards", "Reused",
         "Re-run", "Frac", "Diverg"],
        rows,
        title="R-10 campaign-store delta after a representative module edit",
    )
    summary = (
        f"  shards reused across datasets: {reused}/{total}"
        f" ({reused / total:.1%}); divergences: {divergences}"
        if total
        else "  no shards"
    )
    output = f"{table}\n{summary}"
    print(output)
    return output

"""Figure 1: the methodology pipeline, executed with a trace.

Figure 1 of the paper depicts the four-stage flow (fault injection ->
preprocessing -> model generation -> refinement).  The reproduction's
version of a pipeline figure is the pipeline *running*: this driver
executes all four steps on one target system end to end and prints
what each stage produced, ending with the generated detector as
executable-assertion source.
"""

from __future__ import annotations

import io

from repro.core.detector import Detector
from repro.core.methodology import Methodology, MethodologyConfig
from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
)
from repro.experiments.scale import Scale, get_scale

__all__ = ["run", "main"]


def run(scale: Scale | str = "bench", dataset: str = "MG-A2") -> tuple[str, Detector]:
    """Execute steps 1-4 and return (trace, generated detector)."""
    if isinstance(scale, str):
        scale = get_scale(scale)
    spec = DATASET_SPECS[dataset]
    out = io.StringIO()
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )

    out.write("[Step 1] Fault injection analysis\n")
    target = build_target(spec.target, scale)
    config = campaign_config(spec, scale)
    result = method.step1_inject(target, config)
    out.write(
        f"    target={spec.target} module={spec.module} "
        f"inject@{config.injection_location} sample@{config.sample_location}\n"
        f"    runs={result.n_runs} failures={result.n_failures} "
        f"crashes={result.n_crashes} failure_rate={result.failure_rate:.3f}\n"
    )

    out.write("[Step 2] Algorithm selection and preprocessing\n")
    data = result.to_dataset(dataset)
    counts = data.class_counts()
    out.write(
        f"    learner=c45 (symbolic); format: PROPANE log -> dataset "
        f"({len(data)} instances, {data.n_attributes} attributes)\n"
        f"    class imbalance: nofail={counts[0]} fail={counts[1]}\n"
    )

    out.write("[Step 3] Data mining / model generation (baseline)\n")
    baseline = method.step3_generate(data)
    summary = baseline.summary()
    out.write(
        f"    10-fold CV: FPR={summary['fpr']:.5f} TPR={summary['tpr']:.4f} "
        f"AUC={summary['auc']:.4f} Comp={summary['comp']:.1f}\n"
    )

    out.write("[Step 4] Model refinement and optimisation\n")
    refinement = method.step4_refine(data, scale.grid)
    best = refinement.best
    out.write(
        f"    searched {len(refinement.trials)} plans; "
        f"best={best.plan.describe()} AUC={best.evaluation.mean_auc:.4f} "
        f"(baseline {baseline.evaluation.mean_auc:.4f})\n"
    )

    if best.evaluation.mean_auc >= baseline.evaluation.mean_auc:
        final = method._final_report(data, best.plan, best.evaluation)
    else:
        final = baseline
    detector = final.detector(
        location=config.sample_probe, name="generated_detector"
    )
    out.write("[Output] Error detection mechanism\n")
    out.write(detector.to_source())
    return out.getvalue(), detector


def main(scale: Scale | str = "bench", dataset: str = "MG-A2") -> str:
    trace, _ = run(scale, dataset)
    print(trace)
    return trace


if __name__ == "__main__":
    main()

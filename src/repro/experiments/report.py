"""Consolidated results report: every experiment, one markdown file.

``repro-experiments report --scale bench`` runs every registered
experiment at the chosen scale and writes their printed tables into a
single timestamp-free markdown document (deterministic, so two runs at
the same scale diff clean) -- the artefact to attach to a reproduction
claim.
"""

from __future__ import annotations

import contextlib
import io
import pathlib

__all__ = ["run", "main", "DEFAULT_ORDER"]

#: Execution order: paper artefacts first, then extensions.
DEFAULT_ORDER = (
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "validation",
    "figure-roc",
    "ablation-sampling",
    "ablation-learners",
    "ablation-location",
    "ablation-cost",
    "ablation-baselines",
    "ablation-labels",
    "significance",
    "latency",
    "propagation",
)


def run(scale: str = "bench", experiments=None) -> str:
    """Run the experiments and return the combined markdown."""
    from repro.experiments.cli import EXPERIMENTS

    chosen = list(experiments) if experiments is not None else list(DEFAULT_ORDER)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")

    sections = [
        "# repro results report",
        "",
        f"Scale: `{scale}`. Regenerate with "
        f"`repro-experiments report --scale {scale}`.",
        "",
    ]
    for name in chosen:
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            EXPERIMENTS[name](scale, None)
        sections.append(f"## {name}")
        sections.append("")
        sections.append("```")
        sections.append(buffer.getvalue().rstrip())
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def main(
    scale: str = "bench",
    experiments=None,
    output: str | pathlib.Path | None = None,
) -> str:
    text = run(scale, experiments)
    if output is not None:
        path = pathlib.Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {path} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return text


if __name__ == "__main__":
    main()

"""Experiment S-1: is the Step-4 refinement statistically significant?

Table IV's improvements are sometimes "less than a 0.000001 increase";
an obvious question the paper leaves open is which improvements are
real and which are fold noise.  This driver answers it with matched
folds: for each dataset, the baseline plan and the dataset's best
refinement plan are cross-validated on the *same* stratified folds
(same fold RNG), and the per-fold AUC differences go through the
Nadeau-Bengio corrected paired t-test.

Expected shape: refinement is significant exactly where it changes the
TPR visibly (the imbalanced datasets) and indistinguishable from the
baseline where the baseline was already near-perfect -- which is the
honest reading of Table IV.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.significance import TTestResult, compare_fold_metrics
from repro.core.methodology import Methodology, MethodologyConfig
from repro.core.preprocess import PreprocessingPlan, model_complexity
from repro.experiments.datasets import DATASET_SPECS, generate_dataset
from repro.experiments.reporting import fmt_rate, render_table
from repro.experiments.scale import Scale, get_scale
from repro.mining.crossval import cross_validate
from repro.mining.tree import C45DecisionTree

__all__ = ["SignificanceRow", "run", "main"]


@dataclasses.dataclass
class SignificanceRow:
    dataset: str
    best_plan: str
    baseline_auc: float
    refined_auc: float
    t_test: TTestResult

    @property
    def significant(self) -> bool:
        return self.t_test.significant(0.05)

    def cells(self) -> list[str]:
        return [
            self.dataset,
            self.best_plan,
            fmt_rate(self.baseline_auc),
            fmt_rate(self.refined_auc),
            f"{self.t_test.mean_difference:+.4f}",
            f"{self.t_test.p_value:.4f}",
            "yes" if self.significant else "no",
        ]


def run(scale: Scale | str = "bench", datasets=None) -> list[SignificanceRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = (
        list(datasets)
        if datasets is not None
        else ["7Z-A1", "7Z-B3", "FG-B1", "MG-A2", "MG-B1"]
    )
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    rows: list[SignificanceRow] = []
    for name in names:
        if name not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {name!r}")
        data = generate_dataset(name, scale)
        refinement = method.step4_refine(data, scale.grid)
        best_plan = refinement.best.plan
        # Matched folds: both plans evaluated with the same fold RNG.
        fold_seed = np.random.default_rng((scale.seed, 0x5151))
        baseline_eval = cross_validate(
            data,
            C45DecisionTree,
            k=scale.folds,
            rng=np.random.default_rng(fold_seed.integers(2**63)),
            preprocess=PreprocessingPlan().apply,
            complexity=model_complexity,
        )
        fold_seed = np.random.default_rng((scale.seed, 0x5151))
        refined_eval = cross_validate(
            data,
            C45DecisionTree,
            k=scale.folds,
            rng=np.random.default_rng(fold_seed.integers(2**63)),
            preprocess=best_plan.apply,
            complexity=model_complexity,
        )
        comparison = compare_fold_metrics(refined_eval, baseline_eval, "auc")
        rows.append(
            SignificanceRow(
                dataset=name,
                best_plan=best_plan.describe(),
                baseline_auc=baseline_eval.mean_auc,
                refined_auc=refined_eval.mean_auc,
                t_test=comparison,
            )
        )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "BestPlan", "BaseAUC", "RefAUC", "dAUC", "p", "Sig@.05"],
        [r.cells() for r in rows],
        title=(
            "S-1: significance of refinement "
            "(corrected paired t-test, matched folds)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

"""Table IV: refined Decision Tree Induction results.

For every dataset the Step-4 grid search sweeps sampling type, level
and SMOTE neighbour count, keeping the configuration with the best
mean AUC.  The paper reports the winning configuration (S = sampling
level and type, N = neighbour count, '-' for non-SMOTE entries) plus
the same FPR/TPR/AUC/Comp/Var columns as Table III.

Paper-shape expectation: every row's mean AUC is at least the Table
III baseline's ("each of the models generated in the previous step
were improved on"), sometimes by less than 1e-6.
"""

from __future__ import annotations

import dataclasses

from repro.core.methodology import Methodology, MethodologyConfig, MethodologyOutcome
from repro.experiments.datasets import DATASET_SPECS, generate_dataset
from repro.experiments.reporting import fmt_comp, fmt_rate, fmt_sci, render_table
from repro.experiments.scale import Scale, get_scale

__all__ = ["Table4Row", "run", "main"]


@dataclasses.dataclass
class Table4Row:
    dataset: str
    sampling: str
    neighbours: str
    fpr: float
    tpr: float
    auc: float
    comp: float
    var: float
    baseline_auc: float
    outcome: MethodologyOutcome

    @property
    def improved(self) -> bool:
        return self.auc >= self.baseline_auc

    def cells(self) -> list[str]:
        return [
            self.dataset,
            self.sampling,
            self.neighbours,
            fmt_sci(self.fpr),
            fmt_rate(self.tpr),
            fmt_rate(self.auc),
            fmt_comp(self.comp),
            fmt_sci(self.var),
        ]


def run(scale: Scale | str = "bench", datasets=None) -> list[Table4Row]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else sorted(DATASET_SPECS)
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    rows: list[Table4Row] = []
    for name in names:
        dataset = generate_dataset(name, scale)
        outcome = method.run(dataset, scale.grid)
        refined = outcome.refined
        summary = refined.summary()
        plan = refined.plan
        if plan.sampling is None:
            sampling, neighbours = "-", "-"
        else:
            tag = {"undersample": "U", "oversample": "O", "smote": "O"}[plan.sampling]
            sampling = f"{plan.level:g}({tag})"
            neighbours = (
                str(plan.neighbours) if plan.neighbours is not None else "-"
            )
        rows.append(
            Table4Row(
                dataset=name,
                sampling=sampling,
                neighbours=neighbours,
                fpr=summary["fpr"],
                tpr=summary["tpr"],
                auc=summary["auc"],
                comp=summary["comp"],
                var=summary["var"],
                baseline_auc=outcome.baseline.evaluation.mean_auc,
                outcome=outcome,
            )
        )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "S", "N", "FPR", "TPR", "AUC", "Comp", "Var"],
        [r.cells() for r in rows],
        title="Table IV: decision tree induction results (refined)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

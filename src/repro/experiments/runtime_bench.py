"""Experiment R-1: detector serving throughput, compiled vs interpreted.

The tables measure detector *quality*; deployment also cares about
detector *cost* (DETOx's lesson: configurations are chosen by measured
runtime overhead).  This driver trains a Table II detector per target
system, replays its dataset's states as serving traffic and measures
end-to-end throughput on four evaluation paths:

* ``interpreted`` -- per-state ``Predicate.evaluate`` AST walks, the
  seed repo's only runtime path;
* ``scalar`` -- the generated-Python closure from
  :mod:`repro.runtime.compile`, still one state at a time;
* ``batch`` -- the NumPy-vectorised evaluator over a pre-packed
  instance array (pure compute, the upper bound);
* ``engine`` -- :class:`~repro.runtime.engine.StreamingEngine` over
  the same states, i.e. micro-batching *including* dict-to-array
  packing and metrics accounting (the realistic serving number).

Every path's detection vector is verified bit-identical before any
timing is reported; a mismatch aborts the experiment.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.methodology import Methodology, MethodologyConfig
from repro.experiments.datasets import generate_dataset
from repro.experiments.reporting import render_table
from repro.experiments.scale import Scale, get_scale
from repro.runtime.compile import compile_predicate
from repro.runtime.engine import StreamingEngine
from repro.runtime.pack import pack_states

__all__ = ["RuntimeBenchRow", "run", "render", "main"]

#: One dataset per target system (7-Zip, Mp3Gain, FlightGear).
DEFAULT_DATASETS = ("7Z-A1", "MG-A1", "FG-A1")


@dataclasses.dataclass
class RuntimeBenchRow:
    dataset: str
    mode: str
    n_states: int
    seconds: float
    detections: int
    speedup: float  # vs the interpreted path on the same dataset

    @property
    def throughput(self) -> float:
        """States evaluated per second."""
        return self.n_states / self.seconds if self.seconds > 0 else 0.0

    def cells(self) -> list[str]:
        return [
            self.dataset,
            self.mode,
            str(self.n_states),
            f"{self.seconds * 1e3:.2f}",
            f"{self.throughput:,.0f}",
            f"{self.speedup:.1f}x",
            str(self.detections),
        ]


def _traffic(dataset, n_states: int) -> list[dict[str, object]]:
    """Replay dataset rows as ``n_states`` module-state dicts."""
    names = [attribute.name for attribute in dataset.attributes]
    rows = dataset.x
    return [
        dict(zip(names, (float(v) for v in rows[i % len(rows)])))
        for i in range(n_states)
    ]


def _timed(fn) -> tuple[float, object]:
    started = time.perf_counter()
    out = fn()
    return time.perf_counter() - started, out


def run(
    scale: Scale | str = "bench",
    datasets=None,
    n_states: int = 10_000,
) -> list[RuntimeBenchRow]:
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets else list(DEFAULT_DATASETS)
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    rows: list[RuntimeBenchRow] = []
    for name in names:
        dataset = generate_dataset(name, scale)
        detector = method.step3_generate(dataset).detector(
            name=f"{name}-detector"
        )
        predicate = detector.predicate
        compiled = compile_predicate(predicate)
        states = _traffic(dataset, n_states)
        index = {a.name: i for i, a in enumerate(dataset.attributes)}
        x = pack_states(states, index)

        interp_s, interp_flags = _timed(
            lambda: np.fromiter(
                (predicate.evaluate(state) for state in states),
                dtype=bool,
                count=len(states),
            )
        )
        scalar_s, scalar_flags = _timed(
            lambda: np.fromiter(
                (compiled.evaluate(state) for state in states),
                dtype=bool,
                count=len(states),
            )
        )
        batch_s, batch_flags = _timed(
            lambda: np.asarray(compiled.evaluate_rows(x, index), dtype=bool)
        )

        engine = StreamingEngine(batch_size=1024)
        engine.add(detector)

        def serve() -> np.ndarray:
            return np.concatenate(
                [
                    result.flags[detector.name]
                    for result in engine.evaluate_stream(states)
                ]
            )

        engine_s, engine_flags = _timed(serve)

        for mode, flags in (
            ("scalar", scalar_flags),
            ("batch", batch_flags),
            ("engine", engine_flags),
        ):
            if not np.array_equal(flags, interp_flags):
                raise RuntimeError(
                    f"{name}: {mode} detection vector diverges from the "
                    "interpreted path -- refusing to report timings"
                )
        detections = int(interp_flags.sum())
        for mode, seconds in (
            ("interpreted", interp_s),
            ("scalar", scalar_s),
            ("batch", batch_s),
            ("engine", engine_s),
        ):
            rows.append(
                RuntimeBenchRow(
                    dataset=name,
                    mode=mode,
                    n_states=n_states,
                    seconds=seconds,
                    detections=detections,
                    speedup=interp_s / seconds if seconds > 0 else 0.0,
                )
            )
    return rows


def render(rows: list[RuntimeBenchRow]) -> str:
    return render_table(
        ["Dataset", "Mode", "States", "ms", "States/s", "Speedup", "Det"],
        [row.cells() for row in rows],
        title="R-1: detector serving throughput (compiled vs interpreted)",
    )


def main(scale: Scale | str = "bench", datasets=None) -> str:
    table = render(run(scale, datasets))
    print(table)
    return table


if __name__ == "__main__":
    main()

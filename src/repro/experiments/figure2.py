"""Figure 2: a decision tree predicate example.

Figure 2 of the paper shows a learned decision tree -- decision nodes
labelled with variables, edges with value conditions, leaves with the
failure classification -- from which the detection predicate is read
off.  This driver trains the baseline tree on one dataset, renders it
in that style (J48-ish indented ASCII) and prints the extracted
predicate both as logic and as Python assertion source.
"""

from __future__ import annotations

import io

from repro.core.extraction import tree_to_predicate
from repro.core.methodology import Methodology, MethodologyConfig
from repro.experiments.datasets import generate_dataset
from repro.experiments.scale import Scale, get_scale
from repro.mining.tree import C45DecisionTree, render_tree

__all__ = ["run", "main"]


def run(scale: Scale | str = "bench", dataset: str = "MG-A1") -> str:
    if isinstance(scale, str):
        scale = get_scale(scale)
    data = generate_dataset(dataset, scale)
    method = Methodology(
        MethodologyConfig(learner="c45", folds=scale.folds, seed=scale.seed)
    )
    report = method.step3_generate(data)
    model = report.model
    assert isinstance(model, C45DecisionTree) and model.root is not None

    out = io.StringIO()
    out.write(f"Figure 2: decision tree predicate example ({dataset})\n\n")
    out.write(render_tree(model.root, data.class_attribute.values))
    out.write(
        f"\n\n(tree: {model.node_count} nodes, {model.leaf_count} leaves, "
        f"depth {model.depth})\n\n"
    )
    predicate = tree_to_predicate(model.root, data.class_attribute.values)
    out.write("Extracted predicate (disjunction of conjunctive paths):\n")
    out.write(f"    {predicate}\n\n")
    out.write("As an executable assertion:\n")
    out.write(f"    flag_error = {predicate.to_source('state')}\n")
    return out.getvalue()


def main(scale: Scale | str = "bench", dataset: str = "MG-A1") -> str:
    text = run(scale, dataset)
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Table II: the 18 fault-injection datasets.

The paper's Table II lists each dataset's target system, module,
injection location and sample location.  This driver regenerates the
table and extends it with the campaign statistics the reproduction
actually produced at the chosen scale: runs, instances, failures and
the class-imbalance ratio (the skew that motivates Step 2).
"""

from __future__ import annotations

import dataclasses

from repro.experiments.datasets import DATASET_SPECS, generate_dataset
from repro.experiments.reporting import render_table
from repro.experiments.scale import Scale, get_scale

__all__ = ["Table2Row", "run", "main"]


@dataclasses.dataclass
class Table2Row:
    dataset: str
    target: str
    module: str
    injection: str
    sample: str
    instances: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.instances if self.instances else 0.0


def run(scale: Scale | str = "bench", datasets=None) -> list[Table2Row]:
    """Generate (or load from cache) every dataset and summarise it."""
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else sorted(DATASET_SPECS)
    rows: list[Table2Row] = []
    for name in names:
        spec = DATASET_SPECS[name]
        dataset = generate_dataset(name, scale)
        counts = dataset.class_counts()
        rows.append(
            Table2Row(
                dataset=name,
                target=spec.target,
                module=spec.module,
                injection=str(spec.injection_location),
                sample=str(spec.sample_location),
                instances=len(dataset),
                failures=int(counts[1]),
            )
        )
    return rows


def main(scale: Scale | str = "bench", datasets=None) -> str:
    rows = run(scale, datasets)
    table = render_table(
        ["Dataset", "Target", "Module", "Injection", "Sample",
         "Instances", "Failures", "FailRate"],
        [
            [
                r.dataset,
                r.target,
                r.module,
                r.injection,
                r.sample,
                str(r.instances),
                str(r.failures),
                f"{r.failure_rate:.3f}",
            ]
            for r in rows
        ],
        title="Table II: summary of fault injection datasets",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()

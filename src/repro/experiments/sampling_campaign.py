"""Experiment R-9: statistical sampling campaigns vs exhaustive.

For every Table II dataset, run the injection campaign twice -- once
exhaustively and once under ``Campaign.run(mode="sample")`` -- and
compare what the sample *estimated* against what the full enumeration
*measured*: per-stratum outcome-class rates, whether each confidence
interval contains the exhaustive truth, the fraction of the space
drawn, and the wall-clock ratio.  Strata the sampler exhausted are
exact by construction and excluded from the interval tally.
"""

from __future__ import annotations

import time

from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
)
from repro.experiments.reporting import render_table
from repro.experiments.scale import Scale, get_scale
from repro.injection.campaign import Campaign
from repro.injection.sampling import SamplingSpec, outcome_class
from repro.mining.cache import clear_reuse_caches

__all__ = ["run", "main", "DEFAULT_SPEC"]

#: Smoke-scale strata are only a few dozen cells, so the stop target
#: and round size are scaled down from the benchmark's (0.02, 256) --
#: this experiment measures estimate quality against the exhaustive
#: truth; the benchmark measures speed at 100k-cell scale.
DEFAULT_SPEC = SamplingSpec(
    ci="wilson",
    target_halfwidth=0.08,
    min_cells=16,
    round_cells=16,
    seed=0,
)


def _true_rates(records) -> dict[str, dict[str, float]]:
    """Per-variable outcome-class rates of the exhaustive campaign."""
    counts: dict[str, dict[str, int]] = {}
    totals: dict[str, int] = {}
    for record in records:
        variable = record.flip.variable
        by_class = counts.setdefault(variable, {})
        cls = outcome_class(record)
        by_class[cls] = by_class.get(cls, 0) + 1
        totals[variable] = totals.get(variable, 0) + 1
    return {
        variable: {
            cls: by_class.get(cls, 0) / totals[variable]
            for cls in ("ok", "fail", "crash")
        }
        for variable, by_class in counts.items()
    }


def run(scale: Scale | str = "smoke", datasets=None, spec=DEFAULT_SPEC):
    if isinstance(scale, str):
        scale = get_scale(scale)
    names = list(datasets) if datasets is not None else sorted(DATASET_SPECS)
    results = []
    for name in names:
        if name not in DATASET_SPECS:
            raise ValueError(f"unknown dataset {name!r}")
        dataset = DATASET_SPECS[name]
        config = campaign_config(dataset, scale)

        clear_reuse_caches()
        started = time.perf_counter()
        exhaustive = Campaign(build_target(dataset.target, scale), config).run()
        exhaustive_s = time.perf_counter() - started

        clear_reuse_caches()
        started = time.perf_counter()
        sampled = Campaign(build_target(dataset.target, scale), config).run(
            mode="sample", sampling=spec
        )
        sampled_s = time.perf_counter() - started

        truth = _true_rates(exhaustive.records)
        report = sampled.sampling
        intervals = covered = 0
        worst_error = 0.0
        for stratum in report.strata:
            if stratum.sampled >= stratum.population:
                continue  # exact: nothing estimated
            for cls, estimate in stratum.classes.items():
                true_rate = truth[stratum.stratum][cls]
                intervals += 1
                if estimate.low <= true_rate <= estimate.high:
                    covered += 1
                worst_error = max(worst_error, abs(estimate.rate - true_rate))
        results.append(
            {
                "dataset": name,
                "cells_total": report.cells_total,
                "cells_sampled": report.cells_sampled,
                "sampled_fraction": report.sampled_fraction,
                "rounds": report.rounds,
                "strata": len(report.strata),
                "estimated_intervals": intervals,
                "covered_intervals": covered,
                "worst_abs_error": worst_error,
                "runs_saved": report.cells_total - report.cells_sampled,
                "exhaustive_s": exhaustive_s,
                "sampled_s": sampled_s,
                "speedup": exhaustive_s / sampled_s if sampled_s else 0.0,
            }
        )
    return results


def main(scale: Scale | str = "smoke", datasets=None) -> str:
    results = run(scale, datasets)
    rows = []
    for entry in results:
        coverage = (
            f"{entry['covered_intervals']}/{entry['estimated_intervals']}"
            if entry["estimated_intervals"]
            else "exact"
        )
        rows.append(
            [
                entry["dataset"],
                str(entry["cells_total"]),
                str(entry["cells_sampled"]),
                f"{entry['sampled_fraction']:.0%}",
                str(entry["rounds"]),
                coverage,
                f"{entry['worst_abs_error']:.3f}",
                str(entry["runs_saved"]),
                f"{entry['speedup']:.1f}x",
            ]
        )
    intervals = sum(e["estimated_intervals"] for e in results)
    covered = sum(e["covered_intervals"] for e in results)
    saved = sum(e["runs_saved"] for e in results)
    total = sum(e["cells_total"] for e in results)
    table = render_table(
        ["Dataset", "Cells", "Drawn", "Frac", "Rnds",
         "CI cover", "MaxErr", "Saved", "Speedup"],
        rows,
        title=(
            f"R-9 sampled vs exhaustive campaigns "
            f"[{DEFAULT_SPEC.ci}, {DEFAULT_SPEC.confidence:.0%} CI, "
            f"half-width <= {DEFAULT_SPEC.target_halfwidth}]"
        ),
    )
    summary = (
        f"  intervals containing the exhaustive truth: {covered}/{intervals}"
        f" ({covered / intervals:.1%})\n" if intervals else ""
    ) + f"  runs saved across datasets: {saved}/{total} ({saved / total:.1%})"
    output = f"{table}\n{summary}"
    print(output)
    return output

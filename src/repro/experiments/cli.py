"""Command-line entry point: ``repro-experiments <experiment> [options]``.

Examples::

    repro-experiments table3 --scale bench
    repro-experiments table4 --scale smoke --datasets 7Z-A1 MG-B2
    repro-experiments runtime --scale smoke
    repro-experiments all --scale bench
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablation_baselines,
    ablation_cost,
    ablation_labels,
    ablation_learners,
    ablation_location,
    ablation_sampling,
    figure1,
    figure2,
    figure_roc,
    latency,
    mining_bench,
    propagation,
    runtime_bench,
    sampling_campaign,
    significance,
    simplify_bench,
    store_sweep,
    table1,
    table2,
    table3,
    table4,
    validation,
)

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "table1": lambda scale, datasets: table1.main(
        scale, datasets[0] if datasets else "7Z-A1"
    ),
    "table2": table2.main,
    "table3": table3.main,
    "table4": table4.main,
    "figure1": lambda scale, datasets: figure1.main(
        scale, datasets[0] if datasets else "MG-A2"
    ),
    "figure2": lambda scale, datasets: figure2.main(
        scale, datasets[0] if datasets else "MG-A1"
    ),
    "figure-roc": lambda scale, datasets: figure_roc.main(
        scale, datasets[0] if datasets else "FG-B1"
    ),
    "ablation-sampling": ablation_sampling.main,
    "ablation-learners": ablation_learners.main,
    "ablation-location": lambda scale, datasets: ablation_location.main(
        scale, datasets
    ),
    "ablation-baselines": ablation_baselines.main,
    "ablation-cost": ablation_cost.main,
    "ablation-labels": ablation_labels.main,
    "propagation": propagation.main,
    "sampling-campaign": sampling_campaign.main,
    "significance": significance.main,
    "store-sweep": store_sweep.main,
    "latency": lambda scale, datasets: latency.main(scale, datasets),
    "mining": lambda scale, datasets: mining_bench.main(scale),
    "runtime": runtime_bench.main,
    "simplify": simplify_bench.main,
    "validation": validation.main,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report"],
        help="which table/figure/ablation to run",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=("smoke", "bench", "paper"),
        help="experiment scale (default: bench)",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        help="restrict to specific Table II dataset names",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="for 'report': write the combined markdown to this file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="run campaigns and refinement grids on N worker processes "
        "(results are bit-identical to serial)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint campaign shards under the cache directory and "
        "resume from existing checkpoints",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None or args.resume:
        from repro.experiments.datasets import default_cache_dir
        from repro.orchestration import configure

        configure(
            jobs=args.jobs,
            journal_dir=default_cache_dir() if args.resume else None,
        )

    if args.experiment == "report":
        from repro.experiments import report

        report.main(args.scale, None, args.output)
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            print(f"\n=== {name} ===")
            EXPERIMENTS[name](args.scale, args.datasets)
        return 0
    EXPERIMENTS[args.experiment](args.scale, args.datasets)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Quickstart: from a fault-injection dataset to an error detector.

Runs the methodology's steps 2-4 on a pre-generated dataset (the 7Z-A1
configuration of the paper's Table II at a small scale) and prints the
generated detection predicate, its efficiency, and the executable
assertion you would paste into the target program.

Run with::

    python examples/quickstart.py
"""

from repro.core import Methodology, MethodologyConfig, RefinementGrid
from repro.experiments import generate_dataset


def main() -> None:
    # Step 1 -- fault injection.  generate_dataset runs (and caches) a
    # bit-flip campaign against the instrumented PZip archiver: every
    # instance is a sampled module state labelled failure-inducing or
    # not (see repro.experiments.datasets for the 18 Table II configs).
    dataset = generate_dataset("7Z-A1", scale="smoke")
    counts = dataset.class_counts()
    print(f"dataset: {dataset.name}, {len(dataset)} instances "
          f"({counts[1]} failure-inducing, {counts[0]} benign)")

    # Steps 2-4 -- preprocessing, C4.5 induction with 10-fold stratified
    # cross-validation, and the sampling-parameter grid search.
    method = Methodology(MethodologyConfig(learner="c45", folds=5, seed=0))
    outcome = method.run(dataset, RefinementGrid.reduced())

    baseline = outcome.baseline.summary()
    refined = outcome.refined.summary()
    print(f"baseline: TPR={baseline['tpr']:.4f} FPR={baseline['fpr']:.5f} "
          f"AUC={baseline['auc']:.4f}")
    print(f"refined : TPR={refined['tpr']:.4f} FPR={refined['fpr']:.5f} "
          f"AUC={refined['auc']:.4f} "
          f"(plan: {outcome.refined.plan.describe()})")

    # The deliverable: an error detection mechanism.
    detector = outcome.refined.detector(name="archive_state_detector")
    efficiency = detector.efficiency_on(dataset)
    print(f"\ndetector efficiency on the full dataset: {efficiency}")
    print("\nexecutable assertion:\n")
    print(detector.to_source())


if __name__ == "__main__":
    main()

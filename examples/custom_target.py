"""Bringing your own system: instrumenting a custom target.

The methodology is system-agnostic: anything that (a) exposes module
state at probe points and (b) has a failure specification can be
protected.  This example instruments a small bank-ledger service --
a system that is *not* one of the paper's case studies -- and walks
the whole pipeline to a generated detector:

* the ``Ledger`` module posts transactions against an account; its
  entry state (balance, amount, limit, fee scratch) is probed;
* the failure specification is a golden diff of the final statement;
* injected bit flips in the balance or amount corrupt the statement,
  while flips in the recomputed fee scratch variable are absorbed.

Run with::

    python examples/custom_target.py
"""

import random

from repro.core import Methodology, MethodologyConfig, RefinementGrid
from repro.injection import Campaign, CampaignConfig, Location, VariableSpec
from repro.injection.instrument import Harness
from repro.targets.base import TargetSystem


class BankLedgerTarget(TargetSystem):
    """Posts a deterministic batch of transactions per test case."""

    name = "BANK"

    def __init__(self, n_transactions: int = 12) -> None:
        self.n_transactions = n_transactions

    @property
    def modules(self) -> tuple[str, ...]:
        return ("Ledger",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        entry = (
            VariableSpec("balance", "int64"),     # cents
            VariableSpec("amount", "int64"),
            VariableSpec("overdraft_limit", "int64"),
            VariableSpec("fee_scratch", "int64"),
            VariableSpec("txn_index", "int32"),
        )
        exit_only = (
            VariableSpec("new_balance", "int64"),
            VariableSpec("rejected", "bool"),
        )
        if location is Location.ENTRY:
            return entry
        return entry + exit_only

    def _transactions(self, test_case: int) -> list[int]:
        rng = random.Random(0xB4A2 ^ test_case)
        return [rng.randint(-40_000, 60_000) for _ in range(self.n_transactions)]

    def run(self, test_case: int, harness: Harness):
        balance = 100_000  # cents
        overdraft_limit = -50_000
        statement = []
        for txn_index, amount in enumerate(self._transactions(test_case)):
            state = harness.probe(
                "Ledger",
                Location.ENTRY,
                {
                    "balance": balance,
                    "amount": amount,
                    "overdraft_limit": overdraft_limit,
                    "fee_scratch": 0,
                    "txn_index": txn_index,
                },
            )
            balance = int(state["balance"])
            amount = int(state["amount"])
            limit = int(state["overdraft_limit"])
            # fee_scratch is recomputed from scratch: resilient.
            fee = 150 if amount < 0 else 0
            candidate = balance + amount - fee
            rejected = candidate < limit
            if not rejected:
                balance = candidate
            state = harness.probe(
                "Ledger",
                Location.EXIT,
                {
                    "balance": balance,
                    "amount": amount,
                    "overdraft_limit": limit,
                    "fee_scratch": fee,
                    "txn_index": txn_index,
                    "new_balance": balance,
                    "rejected": rejected,
                },
            )
            balance = int(state["new_balance"])
            # The observable statement reports balances in $100 bands
            # (a summary report): sub-band corruption is absorbed
            # (inherent resilience), material corruption violates the
            # specification.
            statement.append(
                (txn_index, balance // 10_000, bool(state["rejected"]))
            )
        return tuple(statement)

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output


def main() -> None:
    target = BankLedgerTarget()

    config = CampaignConfig(
        module="Ledger",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=tuple(range(8)),
        injection_times=(2, 5, 9),
        bits={"int64": (0, 2, 4, 6, 8, 20, 24, 28, 36, 44, 52, 63),
              "int32": (0, 4, 8, 16, 31)},
    )
    result = Campaign(target, config).run()
    dataset = result.to_dataset("BANK-Ledger")
    counts = dataset.class_counts()
    print(f"campaign: {result.n_runs} runs, failure rate "
          f"{result.failure_rate:.1%} (nofail={counts[0]} fail={counts[1]})")

    method = Methodology(MethodologyConfig(learner="c45", folds=5, seed=2))
    outcome = method.run(dataset, RefinementGrid.reduced())
    detector = outcome.refined.detector(
        location=config.sample_probe, name="ledger_detector"
    )
    summary = outcome.refined.summary()
    print(f"refined detector: TPR={summary['tpr']:.3f} "
          f"FPR={summary['fpr']:.4f} AUC={summary['auc']:.3f}")
    print("\ngenerated runtime assertion:\n")
    print(detector.to_source())

    # Use it inline, as the service would.
    suspicious = {"balance": 100_000 + 2**44, "amount": -5_000,
                  "overdraft_limit": -50_000, "fee_scratch": 0,
                  "txn_index": 3}
    normal = {"balance": 95_000, "amount": -5_000,
              "overdraft_limit": -50_000, "fee_scratch": 0, "txn_index": 3}
    print(f"flags corrupted state: {detector.check(suspicious)}")
    print(f"flags normal state   : {detector.check(normal)}")


if __name__ == "__main__":
    main()

"""Comparing generated detectors against invariant-style baselines.

The paper argues (Section II) that its predicates differ from
Daikon-style likely invariants in *what* they detect: failure-inducing
states rather than any deviation from fault-free behaviour.  This
example makes the comparison concrete on the Mp3Gain target and shows
the deployment-side API:

1. mine a detector with the methodology and mine invariants from
   golden runs, both for the same program location;
2. evaluate both on the same injection data (completeness/accuracy);
3. validate the mined detector under re-injection and report Powell-
   style coverage with confidence intervals plus detection latency;
4. export the detector as JSON and as executable-assertion source.

Run with::

    python examples/baseline_comparison.py
"""

import json

from repro.analysis import detector_efficiency_report
from repro.baselines import invariants_from_golden_runs
from repro.core import Methodology, MethodologyConfig, ValidationCampaign
from repro.core.serialize import detector_to_dict
from repro.injection import Campaign, CampaignConfig, Location
from repro.targets import Mp3GainTarget


def main() -> None:
    target = Mp3GainTarget(n_tracks=6, min_samples=384, max_samples=768)
    config = CampaignConfig(
        module="RGain",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=tuple(range(4)),
        injection_times=(1, 3, 5),
        bits={"int32": (0, 8, 16, 24, 31),
              "float64": (0, 8, 16, 32, 48) + tuple(range(52, 64))},
    )

    # --- the methodology's detector -----------------------------------
    result = Campaign(target, config).run()
    dataset = result.to_dataset("MG-RGain")
    method = Methodology(MethodologyConfig(learner="c45", folds=5, seed=3))
    mined = method.step3_generate(dataset).detector(
        location=config.sample_probe, name="mined_detector"
    )

    # --- the Daikon-style baseline, same location ---------------------
    invariants = invariants_from_golden_runs(
        target, config.sample_probe, config.test_cases
    )
    print(f"mined invariants ({len(invariants)}):")
    for line in invariants.describe().splitlines():
        print(f"    {line}")
    baseline = invariants.to_detector("invariant_detector")

    # --- head-to-head on identical injection data ---------------------
    print("\nefficiency on the injection dataset "
          "(completeness = TPR, accuracy = 1 - FPR):")
    for detector in (mined, baseline):
        efficiency = detector.efficiency_on(dataset)
        print(f"    {detector.name:>20s}: {efficiency} "
              f"({detector.predicate.complexity()} conditions)")

    # --- coverage / latency under re-injection ------------------------
    validation = ValidationCampaign(
        target, config, mined, mode="continuous"
    ).validate()
    report = detector_efficiency_report(validation)
    print(f"\nre-injection, continuous monitoring:\n    {report}")

    # --- deployment artefacts ------------------------------------------
    print("\ndetector as JSON (first 300 chars):")
    print("   ", json.dumps(detector_to_dict(mined))[:300], "...")
    print("\ndetector as executable assertion (first 5 lines):")
    for line in mined.to_source().splitlines()[:5]:
        print(f"    {line}")


if __name__ == "__main__":
    main()

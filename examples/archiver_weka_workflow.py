"""The paper's tool-chain workflow: PROPANE logs -> ARFF -> predicates.

The original study moved data between two tools: PROPANE wrote
injection logs, a purpose-built converter produced ARFF, and Weka mined
the predicates.  This example reproduces that *workflow* with the
library's equivalents, showing the artefacts at each hand-off:

1. run a campaign against the PZip archiver's LZ-decode module and
   write the PROPANE-style log to disk;
2. parse the log back and convert it to a dataset, exporting the ARFF
   file Weka would have consumed;
3. induce the decision tree, render it Figure 2 style, and read off
   the predicate as a conjunction-of-disjunctions.

Run with::

    python examples/archiver_weka_workflow.py
"""

import pathlib
import tempfile

from repro.core import Methodology, MethodologyConfig, tree_to_predicate
from repro.injection import Campaign, CampaignConfig, Location
from repro.injection.logfmt import read_log, write_log
from repro.mining.arff import dump_arff
from repro.mining.tree import render_tree
from repro.targets import SevenZipTarget


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="pzip-workflow-"))
    target = SevenZipTarget(n_files=6, min_size=50, max_size=120)

    # --- PROPANE stage: inject and log ------------------------------
    config = CampaignConfig(
        module="LDecode",
        injection_location=Location.ENTRY,
        sample_location=Location.EXIT,
        test_cases=(0, 1, 2, 3),
        injection_times=(1, 3, 5),
        bits={"int32": tuple(range(0, 32, 2)) + (31,)},
    )
    result = Campaign(target, config).run()
    log_path = workdir / "ldecode.propane.log"
    with open(log_path, "w") as fp:
        write_log(result, fp)
    print(f"wrote injection log: {log_path} "
          f"({result.n_runs} runs, {result.n_failures} failures)")

    # --- Conversion stage: log -> dataset -> ARFF -------------------
    with open(log_path) as fp:
        parsed = read_log(fp)
    dataset = parsed.to_dataset("7Z-B2-example")
    arff_path = workdir / "ldecode.arff"
    with open(arff_path, "w") as fp:
        dump_arff(dataset, fp)
    print(f"wrote ARFF for the mining suite: {arff_path} "
          f"({len(dataset)} instances, {dataset.n_attributes} attributes)")

    # --- Mining stage: tree -> Figure 2 -> predicate ----------------
    method = Methodology(MethodologyConfig(learner="c45", folds=5))
    report = method.step3_generate(dataset)
    model = report.model
    print("\ndecision tree (Figure 2 style):")
    print(render_tree(model.root, dataset.class_attribute.values))
    predicate = tree_to_predicate(model.root, dataset.class_attribute.values)
    print("\npredicate (disjunction of conjunctive root-to-leaf paths):")
    print(f"    {predicate}")
    summary = report.summary()
    print(f"\n10-fold CV (5 here): TPR={summary['tpr']:.4f} "
          f"FPR={summary['fpr']:.5f} AUC={summary['auc']:.4f} "
          f"Comp={summary['comp']:.1f}")


if __name__ == "__main__":
    main()

"""End-to-end scenario: protecting a flight simulator's Mass module.

This is the paper's FlightGear case study in miniature, run end to end
*without* the pre-built experiment drivers, to show the full API:

1. build the instrumented takeoff simulator and run the bit-flip
   campaign against its mass & balance module (Table II's FG-B1
   configuration: inject at entry, sample at entry);
2. mine a detection predicate with C4.5 and refine it (SMOTE sweep);
3. install the predicate as a **runtime assertion** at the module
   entry and repeat fault injection on held-out takeoff scenarios --
   the paper's Section VII-D validation -- in both single-shot and
   continuous-monitoring modes.

Run with::

    python examples/flightgear_takeoff_detector.py
"""

import dataclasses

from repro.core import (
    Methodology,
    MethodologyConfig,
    RefinementGrid,
    ValidationCampaign,
)
from repro.injection import Campaign, CampaignConfig, Location
from repro.targets import FlightGearTarget


def main() -> None:
    # A reduced control loop (the paper uses 500+2200 iterations at
    # 50 Hz; this example uses 40+180 at 4 Hz so it runs in seconds).
    target = FlightGearTarget(init_iterations=40, run_iterations=180, dt=0.25)

    # --- Step 1: fault injection on the Mass module -----------------
    config = CampaignConfig(
        module="Mass",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 2, 4, 6, 8),          # 5 of the 9 scenarios
        injection_times=(50, 90, 140),       # during roll / rotation / climb
        bits={"float64": (0, 16, 40, 52, 54, 56, 58, 60, 62, 63)},
    )
    campaign = Campaign(target, config)
    result = campaign.run()
    print(f"campaign: {result.n_runs} injected runs, "
          f"{result.n_failures} failures ({result.failure_rate:.1%}), "
          f"{result.n_crashes} crashes")

    dataset = result.to_dataset("FG-Mass-entry")

    # --- Steps 2-4: mine and refine the predicate -------------------
    method = Methodology(MethodologyConfig(learner="c45", folds=5, seed=1))
    outcome = method.run(dataset, RefinementGrid.reduced())
    refined = outcome.refined
    print(f"cross-validated: TPR={refined.evaluation.mean_tpr:.3f} "
          f"FPR={refined.evaluation.mean_fpr:.4f} "
          f"AUC={refined.evaluation.mean_auc:.3f} "
          f"plan={refined.plan.describe()}")

    detector = refined.detector(
        location=config.sample_probe, name="mass_entry_detector"
    )
    print("\ndetection predicate:")
    print(f"    {detector.predicate}")

    # --- Section VII-D: runtime assertion on held-out scenarios -----
    holdout = dataclasses.replace(config, test_cases=(1, 3, 5, 7))
    single = ValidationCampaign(target, holdout, detector).validate()
    print(f"\nruntime assertion (held-out scenarios, single-shot): "
          f"TPR={single.observed_tpr:.3f} FPR={single.observed_fpr:.4f}")
    continuous = ValidationCampaign(
        target, holdout, detector, mode="continuous"
    ).validate()
    print(f"runtime assertion (continuous monitoring)          : "
          f"TPR={continuous.observed_tpr:.3f} "
          f"FPR={continuous.observed_fpr:.4f} "
          f"mean detection latency={continuous.mean_latency:.1f} iterations")

    commensurate = single.commensurate_with(
        refined.evaluation.mean_tpr, refined.evaluation.mean_fpr,
        tolerance=0.15,
    )
    print(f"\nobserved rates commensurate with CV estimates: {commensurate}")


if __name__ == "__main__":
    main()

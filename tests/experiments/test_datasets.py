"""Tests for the Table II dataset registry, scales and caching."""

import numpy as np
import pytest

from repro.experiments.datasets import (
    DATASET_SPECS,
    build_target,
    campaign_config,
    generate_dataset,
)
from repro.experiments.scale import SCALES, get_scale
from repro.injection.instrument import Location


class TestSpecs:
    def test_eighteen_datasets(self):
        assert len(DATASET_SPECS) == 18

    def test_location_pairs(self):
        # K=1: entry/entry, K=2: entry/exit, K=3: exit/exit (Table II).
        for name, spec in DATASET_SPECS.items():
            k = int(name[-1])
            expected = {
                1: (Location.ENTRY, Location.ENTRY),
                2: (Location.ENTRY, Location.EXIT),
                3: (Location.EXIT, Location.EXIT),
            }[k]
            assert (spec.injection_location, spec.sample_location) == expected

    def test_module_letters(self):
        assert DATASET_SPECS["7Z-A1"].module == "FHandle"
        assert DATASET_SPECS["7Z-B1"].module == "LDecode"
        assert DATASET_SPECS["FG-A1"].module == "Gear"
        assert DATASET_SPECS["FG-B1"].module == "Mass"
        assert DATASET_SPECS["MG-A1"].module == "GAnalysis"
        assert DATASET_SPECS["MG-B1"].module == "RGain"


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"smoke", "bench", "paper"}
        assert get_scale("bench").name == "bench"
        with pytest.raises(ValueError):
            get_scale("gigantic")

    def test_paper_scale_matches_paper(self):
        paper = get_scale("paper")
        assert paper.sz_n_files == 25
        assert len(paper.sz_test_cases) == 250
        assert len(paper.sz_injection_times) == 4
        assert paper.fg_iterations == (500, 2200)
        assert len(paper.fg_injection_times) == 3
        assert paper.folds == 10
        # Full bit coverage, as in the paper.
        assert paper.sz_bits["int32"] == tuple(range(32))
        assert paper.sz_bits["float64"] == tuple(range(64))
        # Refinement grid: 10 undersampling + 15 oversampling levels,
        # k in [1, 15].
        grid = paper.grid
        assert len(grid.undersample_levels) == 10
        assert len(grid.oversample_levels) == 15
        assert grid.neighbour_counts == tuple(range(1, 16))

    def test_fg_paper_injection_times(self):
        # 600/1200/1800 iterations after the 500-iteration init.
        paper = get_scale("paper")
        assert paper.fg_injection_times == (1100, 1700, 2300)


class TestBuilders:
    def test_build_targets(self):
        scale = get_scale("smoke")
        assert build_target("7Z", scale).name == "7Z"
        assert build_target("FG", scale).name == "FG"
        assert build_target("MG", scale).name == "MG"
        with pytest.raises(ValueError):
            build_target("XX", scale)

    def test_campaign_config_per_target(self):
        scale = get_scale("smoke")
        config = campaign_config(DATASET_SPECS["FG-B2"], scale)
        assert config.module == "Mass"
        assert config.injection_location is Location.ENTRY
        assert config.sample_location is Location.EXIT
        assert config.test_cases == scale.fg_test_cases


class TestGeneration:
    def test_generate_and_cache(self, tmp_path):
        ds = generate_dataset("MG-B1", "smoke", cache_dir=tmp_path)
        assert len(ds) > 0
        assert ds.name == "MG-B1"
        cached = tmp_path / "MG-B1.smoke.log"
        assert cached.exists()
        # Second call loads the cache and yields an identical dataset.
        again = generate_dataset("MG-B1", "smoke", cache_dir=tmp_path)
        assert np.array_equal(again.x, ds.x)
        assert np.array_equal(again.y, ds.y)

    def test_no_cache_mode(self, tmp_path):
        generate_dataset("MG-B1", "smoke", cache_dir=tmp_path, use_cache=False)
        assert not (tmp_path / "MG-B1.smoke.log").exists()

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            generate_dataset("XX-Z9", "smoke")

    def test_configured_journal_dir_checkpoints_campaign(self, tmp_path):
        """The --resume path: a configured journal directory makes the
        campaign checkpoint (and a repeat run replay) its shards."""
        from repro.orchestration import configure

        configure(journal_dir=tmp_path)
        try:
            ds = generate_dataset(
                "MG-B1", "smoke", cache_dir=tmp_path / "c", use_cache=False
            )
            journal = tmp_path / "MG-B1.smoke.journal.jsonl"
            assert journal.exists()
            lines = len(journal.read_text().splitlines())
            assert lines > 0
            again = generate_dataset(
                "MG-B1", "smoke", cache_dir=tmp_path / "c", use_cache=False
            )
            # Fully replayed from the journal: no new lines, same data.
            assert len(journal.read_text().splitlines()) == lines
            assert np.array_equal(again.x, ds.x)
            assert np.array_equal(again.y, ds.y)
        finally:
            configure()

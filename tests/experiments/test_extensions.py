"""Smoke-scale tests for the extension experiment drivers."""

import pytest

from repro.experiments import (
    ablation_baselines,
    ablation_cost,
    ablation_labels,
    figure_roc,
    propagation,
    runtime_bench,
    validation,
)


class TestRuntimeBench:
    def test_four_modes_per_dataset(self):
        rows = runtime_bench.run("smoke", ["MG-B1"], n_states=400)
        assert {r.mode for r in rows} == {
            "interpreted", "scalar", "batch", "engine"
        }
        # run() raises unless every path's detection vector is
        # bit-identical, so agreeing detections here is guaranteed.
        assert len({r.detections for r in rows}) == 1

    def test_table_renders(self):
        rows = runtime_bench.run("smoke", ["MG-B1"], n_states=200)
        table = runtime_bench.render(rows)
        assert "MG-B1" in table and "engine" in table


class TestAblationBaselines:
    def test_three_approaches_per_dataset(self):
        rows = ablation_baselines.run("smoke", ["MG-B1"])
        assert {r.approach for r in rows} == {
            "mined (step 3)", "invariants", "range-EA"
        }

    def test_mined_is_most_accurate(self):
        rows = ablation_baselines.run("smoke", ["MG-B1"])
        by_approach = {r.approach: r for r in rows}
        assert (
            by_approach["mined (step 3)"].fpr
            < by_approach["invariants"].fpr
        )


class TestAblationCost:
    def test_all_plans_evaluated(self):
        rows = ablation_cost.run("smoke", ["MG-B1"])
        assert {r.plan for r in rows} == set(ablation_cost.PLANS)

    def test_rates_in_range(self):
        for row in ablation_cost.run("smoke", ["MG-B1"]):
            assert 0 <= row.fpr <= 1 and 0 <= row.tpr <= 1


class TestAblationLabels:
    def test_deviation_is_broader(self):
        rows = ablation_labels.run("smoke", ["MG-A2"])
        by_mode = {r.trained_on: r for r in rows}
        assert by_mode["deviation"].positives >= by_mode["failure"].positives

    def test_table_renders(self):
        text = ablation_labels.main("smoke", ["MG-A2"])
        assert "A-6" in text


class TestFigureRoc:
    def test_points_and_envelope(self):
        points, envelope_auc, baseline_auc = figure_roc.run("smoke", "MG-B1")
        assert len(points) >= 2
        assert envelope_auc >= baseline_auc - 1e-9
        assert 0 <= envelope_auc <= 1

    def test_ascii_plot_shape(self):
        plot = figure_roc.ascii_roc([(0.0, 1.0, "x"), (0.5, 0.9, "y")])
        lines = plot.splitlines()
        assert lines[0] == "TPR"
        assert any("*" in line for line in lines)
        assert "sqrt(FPR)" in lines[-1]

    def test_envelope_auc_geometry(self):
        # Points on the diagonal give AUC 1/2; a perfect point gives 1.
        assert figure_roc._envelope_auc([(0.5, 0.5)]) == pytest.approx(0.5)
        assert figure_roc._envelope_auc([(0.0, 1.0)]) == pytest.approx(1.0)

    def test_envelope_ignores_dominated_points(self):
        dominated = figure_roc._envelope_auc([(0.0, 1.0), (0.5, 0.6)])
        assert dominated == pytest.approx(1.0)


class TestPropagationDriver:
    def test_reports_for_requested_datasets(self):
        reports = propagation.run("smoke", ["MG-B1"])
        assert len(reports) == 1
        assert reports[0].module == "RGain"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            propagation.run("smoke", ["nope"])


class TestValidationDriver:
    def test_same_workload_commensurate(self):
        rows = validation.run("smoke", ["MG-A1"], tolerance=0.2)
        assert len(rows) == 1
        assert rows[0].commensurate

    def test_holdout_mode_runs(self):
        rows = validation.run("smoke", ["MG-A1"], holdout=True)
        assert 0 <= rows[0].observed_tpr <= 1


class TestLatencyDriver:
    def test_three_detectors_per_group(self):
        from repro.experiments import latency

        rows = latency.run("smoke", ["MG-B"])
        assert [r.detector for r in rows] == ["entry", "exit", "union"]

    def test_unknown_group(self):
        from repro.experiments import latency

        with pytest.raises(ValueError):
            latency.run("smoke", ["XX-Y"])


class TestSignificanceDriver:
    def test_matched_folds_delta(self):
        from repro.experiments import significance

        rows = significance.run("smoke", ["MG-B1"])
        row = rows[0]
        assert row.t_test.mean_difference == pytest.approx(
            row.refined_auc - row.baseline_auc, abs=1e-12
        )


class TestReport:
    def test_report_runs_selected_experiments(self, tmp_path):
        from repro.experiments import report

        out = tmp_path / "results.md"
        text = report.main("smoke", ["table1", "figure2"], out)
        assert out.exists()
        assert "## table1" in text and "## figure2" in text
        assert "```" in text

    def test_unknown_experiment_rejected(self):
        from repro.experiments import report

        with pytest.raises(ValueError):
            report.run("smoke", ["tableX"])

    def test_cli_report(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        # Restrict via a monkeypatch-free path: write full smoke report
        # to a file (uses cached smoke datasets, so this is fast).
        out = tmp_path / "r.md"
        assert cli_main(["report", "--scale", "smoke",
                         "--output", str(out)]) == 0
        assert out.exists()
        assert "# repro results report" in out.read_text()

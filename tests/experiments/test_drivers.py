"""Smoke-scale tests of the experiment drivers (structure, not timing)."""

import pytest

from repro.experiments import (
    ablation_location,
    ablation_sampling,
    figure2,
    reporting,
    table1,
    table3,
    table4,
)
from repro.experiments.cli import main as cli_main

SUBSET = ["7Z-A1", "MG-B2"]


class TestReporting:
    def test_fmt_sci(self):
        assert reporting.fmt_sci(0.0) == "0"
        assert reporting.fmt_sci(2e-5) == "2E-05"
        assert reporting.fmt_sci(0.0025) == "3E-03"  # rounded

    def test_fmt_rate(self):
        assert reporting.fmt_rate(0.9979) == ".9979"
        assert reporting.fmt_rate(1.0) == "1.0000"
        assert reporting.fmt_rate(0.99996) == "1.0000"

    def test_render_table_alignment(self):
        text = reporting.render_table(
            ["A", "Blong"], [["x", "y"], ["longer", "z"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) <= len(lines[1]) + 2 for line in lines[2:])


class TestTable1:
    def test_structure(self):
        confusion = table1.run("smoke", "7Z-A1")
        assert confusion.total > 0
        text = table1.main("smoke", "7Z-A1")
        assert "Table I" in text and "auc" in text


class TestTable3:
    def test_rows_for_subset(self):
        rows = table3.run("smoke", SUBSET)
        assert [r.dataset for r in rows] == SUBSET
        for row in rows:
            assert 0 <= row.fpr <= 1
            assert 0 <= row.tpr <= 1
            assert 0.5 <= row.auc <= 1
            assert row.report.predicate is not None

    def test_cells_formatting(self):
        row = table3.run("smoke", ["MG-B2"])[0]
        cells = row.cells()
        assert cells[0] == "MG-B2"
        assert len(cells) == 6


class TestTable4:
    def test_refinement_never_worse(self):
        rows = table4.run("smoke", SUBSET)
        for row in rows:
            assert row.improved
            assert row.sampling != ""

    def test_sampling_column_format(self):
        rows = table4.run("smoke", ["MG-B2"])
        cell = rows[0].cells()[1]
        assert cell == "-" or cell.endswith("(U)") or cell.endswith("(O)")


class TestFigure2:
    def test_contains_tree_and_predicate(self):
        text = figure2.run("smoke", "MG-B2")
        assert "Extracted predicate" in text
        assert "nodes" in text


class TestAblations:
    def test_sampling_plans_evaluated(self):
        rows = ablation_sampling.run("smoke", ["MG-B2"])
        assert {r.plan for r in rows} == set(ablation_sampling.PLANS)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            ablation_sampling.run("smoke", ["nope"])

    def test_location_grouping(self):
        rows = ablation_location.run("smoke", ["MG-B"])
        assert len(rows) == 3
        assert {r.combination for r in rows} == {
            "entry/entry", "entry/exit", "exit/exit"
        }


class TestCli:
    def test_table3_subset(self, capsys):
        assert cli_main(["table3", "--scale", "smoke",
                         "--datasets", "MG-B2"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out and "MG-B2" in out

    def test_figure2_dataset_argument(self, capsys):
        assert cli_main(["figure2", "--scale", "smoke",
                         "--datasets", "MG-B2"]) == 0
        assert "MG-B2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["tableX"])


class TestFigure1:
    def test_trace_has_all_stages(self):
        from repro.experiments import figure1

        trace, detector = figure1.run("smoke", "MG-A2")
        for marker in ("[Step 1]", "[Step 2]", "[Step 3]", "[Step 4]",
                       "[Output]"):
            assert marker in trace
        assert detector.location is not None


class TestTable2Driver:
    def test_subset(self):
        from repro.experiments import table2

        rows = table2.run("smoke", ["MG-A1", "MG-A3"])
        assert [r.dataset for r in rows] == ["MG-A1", "MG-A3"]
        for row in rows:
            assert 0 < row.failure_rate < 1

"""Shared test fixtures: small synthetic datasets with known structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mining.dataset import Attribute, Dataset

CLASS_LABELS = ("nofail", "fail")


def make_separable(n: int = 400, seed: int = 42, noise: float = 0.0) -> Dataset:
    """Two numeric attributes; positive iff v1 > 1 and v2 <= 0.3."""
    rng = np.random.default_rng(seed)
    v1 = rng.normal(0.0, 1.0, n)
    v2 = rng.normal(0.0, 1.0, n)
    y = ((v1 > 1.0) & (v2 <= 0.3)).astype(int)
    if noise > 0:
        flips = rng.random(n) < noise
        y = np.where(flips, 1 - y, y)
    return Dataset(
        [Attribute.numeric("v1"), Attribute.numeric("v2")],
        Attribute.nominal("class", CLASS_LABELS),
        np.column_stack([v1, v2]),
        y,
        name="separable",
    )


def make_imbalanced(n: int = 500, positive_fraction: float = 0.06, seed: int = 7) -> Dataset:
    """Heavily imbalanced dataset with a learnable positive region."""
    rng = np.random.default_rng(seed)
    n_pos = max(int(n * positive_fraction), 3)
    n_neg = n - n_pos
    neg = rng.normal(0.0, 1.0, (n_neg, 3))
    pos = rng.normal(3.5, 0.6, (n_pos, 3))
    x = np.vstack([neg, pos])
    y = np.concatenate([np.zeros(n_neg, int), np.ones(n_pos, int)])
    order = rng.permutation(n)
    return Dataset(
        [Attribute.numeric(f"v{i}") for i in range(3)],
        Attribute.nominal("class", CLASS_LABELS),
        x[order],
        y[order],
        name="imbalanced",
    )


def make_mixed(n: int = 300, seed: int = 3) -> Dataset:
    """Numeric + nominal attributes; label depends on both."""
    rng = np.random.default_rng(seed)
    v = rng.normal(0.0, 1.0, n)
    flag = rng.integers(0, 2, n)  # nominal {off,on}
    colour = rng.integers(0, 3, n)  # nominal {red,green,blue}
    y = ((v > 0.5) & (flag == 1)).astype(int)
    x = np.column_stack([v, flag.astype(float), colour.astype(float)])
    return Dataset(
        [
            Attribute.numeric("v"),
            Attribute.nominal("flag", ("off", "on")),
            Attribute.nominal("colour", ("red", "green", "blue")),
        ],
        Attribute.nominal("class", CLASS_LABELS),
        x,
        y,
        name="mixed",
    )


@pytest.fixture
def separable_dataset() -> Dataset:
    return make_separable()

@pytest.fixture
def imbalanced_dataset() -> Dataset:
    return make_imbalanced()


@pytest.fixture
def mixed_dataset() -> Dataset:
    return make_mixed()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)

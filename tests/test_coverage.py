"""Tests for coverage/latency estimation (Powell-style)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.coverage import (
    _beta_cdf,
    coverage_estimate,
    detector_efficiency_report,
    latency_statistics,
)


class TestBetaCdf:
    def test_uniform_case(self):
        # Beta(1,1) is uniform: CDF(x) = x.
        for x in (0.1, 0.5, 0.9):
            assert _beta_cdf(x, 1, 1) == pytest.approx(x, abs=1e-9)

    def test_symmetry(self):
        # Beta(a,a) is symmetric about 1/2.
        assert _beta_cdf(0.5, 3, 3) == pytest.approx(0.5, abs=1e-9)

    def test_known_value(self):
        # Beta(2,1): CDF(x) = x^2.
        assert _beta_cdf(0.6, 2, 1) == pytest.approx(0.36, abs=1e-9)

    def test_endpoints(self):
        assert _beta_cdf(0.0, 2, 3) == 0.0
        assert _beta_cdf(1.0, 2, 3) == 1.0


class TestCoverageEstimate:
    def test_point_estimate(self):
        est = coverage_estimate(90, 100)
        assert est.point == pytest.approx(0.9)

    def test_interval_contains_point(self):
        est = coverage_estimate(90, 100)
        assert est.wilson_low <= est.point <= est.wilson_high
        assert est.exact_low <= est.point <= est.exact_high

    def test_interval_shrinks_with_n(self):
        small = coverage_estimate(9, 10)
        large = coverage_estimate(900, 1000)
        assert (large.wilson_high - large.wilson_low) < (
            small.wilson_high - small.wilson_low
        )

    def test_perfect_coverage_bounds(self):
        est = coverage_estimate(50, 50)
        assert est.point == 1.0
        assert est.exact_high == 1.0
        assert est.exact_low < 1.0  # cannot claim certainty from 50 runs

    def test_zero_coverage_bounds(self):
        est = coverage_estimate(0, 50)
        assert est.point == 0.0
        assert est.exact_low == 0.0
        assert est.exact_high > 0.0

    def test_no_activations(self):
        est = coverage_estimate(0, 0)
        assert est.wilson_low == 0.0 and est.wilson_high == 1.0

    def test_higher_confidence_wider(self):
        narrow = coverage_estimate(80, 100, confidence=0.90)
        wide = coverage_estimate(80, 100, confidence=0.99)
        assert (wide.wilson_high - wide.wilson_low) > (
            narrow.wilson_high - narrow.wilson_low
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_estimate(5, 3)
        with pytest.raises(ValueError):
            coverage_estimate(-1, 3)
        with pytest.raises(ValueError):
            coverage_estimate(1, 2, confidence=1.5)

    @given(
        n=st.integers(1, 500),
        frac=st.floats(0, 1),
    )
    @settings(deadline=None, max_examples=50)
    def test_intervals_are_valid_property(self, n, frac):
        k = min(int(round(n * frac)), n)
        est = coverage_estimate(k, n)
        assert 0.0 <= est.wilson_low <= est.wilson_high <= 1.0
        assert 0.0 <= est.exact_low <= est.exact_high <= 1.0
        # Exact interval is at least as wide as Wilson's.
        assert est.exact_low <= est.wilson_low + 0.02
        assert est.exact_high >= est.wilson_high - 0.02

    def test_str(self):
        assert "Wilson" in str(coverage_estimate(9, 10))


class TestLatencyStatistics:
    def test_basic(self):
        stats = latency_statistics([0, 1, 2, 3, 4])
        assert stats.count == 5
        assert stats.mean == 2.0
        assert stats.median == 2.0
        assert stats.maximum == 4.0

    def test_nones_skipped(self):
        stats = latency_statistics([1, None, 3])
        assert stats.count == 2
        assert stats.mean == 2.0

    def test_empty(self):
        stats = latency_statistics([])
        assert stats.count == 0
        assert stats.mean == 0.0


class TestEfficiencyReport:
    def test_from_validation_report(self):
        from repro.core.detector import Detector
        from repro.core.predicate import Comparison
        from repro.core.validate import ValidationCampaign
        from tests.injection.test_campaign import CounterTarget, config

        # Single-shot mode: the threshold detector is only valid at the
        # sampling point (the accumulator legitimately crosses 2.5 in
        # later occurrences, which continuous monitoring would flag).
        detector = Detector(Comparison("acc", ">", 2.5))
        campaign = ValidationCampaign(
            CounterTarget(), config(bits=(2,)), detector, mode="single"
        )
        validation = campaign.validate()
        report = detector_efficiency_report(validation)
        assert report.coverage.point == 1.0
        assert report.false_positive_rate == 0.0
        assert report.latency.count == report.coverage.detected
        assert "coverage" in str(report)

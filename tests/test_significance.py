"""Tests for the paired/corrected t-tests."""

import math

import numpy as np
import pytest

from repro.analysis.significance import (
    compare_fold_metrics,
    corrected_paired_t_test,
    paired_t_test,
    _t_sf,
)


class TestTDistribution:
    def test_t_zero_gives_p_one(self):
        assert _t_sf(0.0, 10) == pytest.approx(1.0, abs=1e-9)

    def test_known_quantiles(self):
        # t = 2.228 at df=10 is the 97.5th percentile: two-sided p = .05.
        assert _t_sf(2.228, 10) == pytest.approx(0.05, abs=2e-3)
        # t = 1.812 at df=10 -> two-sided p = .10.
        assert _t_sf(1.812, 10) == pytest.approx(0.10, abs=2e-3)

    def test_symmetric(self):
        assert _t_sf(1.7, 8) == pytest.approx(_t_sf(-1.7, 8))

    def test_monotone_in_t(self):
        assert _t_sf(3.0, 9) < _t_sf(1.0, 9)

    def test_df_validation(self):
        with pytest.raises(ValueError):
            _t_sf(1.0, 0)


class TestPairedT:
    def test_no_difference(self):
        a = [0.9, 0.91, 0.92, 0.88, 0.9]
        result = paired_t_test(a, a)
        assert result.mean_difference == 0.0
        assert not result.significant()

    def test_clear_difference(self):
        rng = np.random.default_rng(0)
        b = rng.normal(0.80, 0.01, 10)
        a = b + 0.1
        result = paired_t_test(a, b)
        assert result.mean_difference == pytest.approx(0.1)
        assert result.significant(0.01)

    def test_noise_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.9, 0.05, 10)
        b = rng.normal(0.9, 0.05, 10)
        result = paired_t_test(a, b)
        assert result.p_value > 0.01

    def test_constant_difference_zero_variance(self):
        # Exactly-representable values so the difference is truly
        # constant and the variance exactly zero.
        a = [2.0, 3.0, 4.0]
        b = [1.0, 2.0, 3.0]
        result = paired_t_test(a, b)
        assert math.isinf(result.t_statistic)
        assert result.p_value == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])


class TestCorrectedT:
    def test_correction_is_more_conservative(self):
        rng = np.random.default_rng(2)
        b = rng.normal(0.85, 0.02, 10)
        # A noisy improvement, so the difference has real variance.
        a = b + 0.02 + rng.normal(0.0, 0.01, 10)
        plain = paired_t_test(a, b)
        corrected = corrected_paired_t_test(a, b)
        assert abs(corrected.t_statistic) < abs(plain.t_statistic)
        assert corrected.p_value >= plain.p_value

    def test_default_fraction_is_k_fold(self):
        a = np.linspace(0.8, 0.9, 10)
        b = a - 0.05
        default = corrected_paired_t_test(a, b)
        explicit = corrected_paired_t_test(a, b, test_fraction=1.0 / 9.0)
        assert default.t_statistic == pytest.approx(explicit.t_statistic)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            corrected_paired_t_test([1.0, 2.0], [1.0, 2.0], test_fraction=0)


class TestCompareFoldMetrics:
    def test_compares_cv_results(self, separable_dataset):
        import numpy as np

        from repro.mining.crossval import cross_validate
        from repro.mining.oner import OneR
        from repro.mining.tree import C45DecisionTree

        tree_result = cross_validate(
            separable_dataset, C45DecisionTree, k=10,
            rng=np.random.default_rng(5),
        )
        oner_result = cross_validate(
            separable_dataset, OneR, k=10, rng=np.random.default_rng(5)
        )
        comparison = compare_fold_metrics(tree_result, oner_result, "auc")
        # The tree can express the conjunction concept; OneR cannot.
        assert comparison.mean_difference > 0

    def test_metric_selection(self, separable_dataset):
        import numpy as np

        from repro.mining.crossval import cross_validate
        from repro.mining.tree import C45DecisionTree

        result = cross_validate(
            separable_dataset, C45DecisionTree, k=5,
            rng=np.random.default_rng(0),
        )
        same = compare_fold_metrics(result, result, "tpr")
        assert same.mean_difference == 0.0

    def test_fold_count_mismatch(self, separable_dataset):
        import numpy as np

        from repro.mining.crossval import cross_validate
        from repro.mining.tree import C45DecisionTree

        five = cross_validate(
            separable_dataset, C45DecisionTree, k=5,
            rng=np.random.default_rng(0),
        )
        ten = cross_validate(
            separable_dataset, C45DecisionTree, k=10,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            compare_fold_metrics(five, ten)

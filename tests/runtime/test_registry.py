"""Registry semantics: versioning, lookup, persist/reload."""

import json

import pytest

from repro.core.detector import Detector
from repro.core.predicate import And, Comparison, Or
from repro.core.serialize import SerializationError
from repro.injection.instrument import Location, Probe
from repro.runtime.registry import (
    DetectorRegistry,
    RegistryError,
    RegistryWarning,
)

P1 = Comparison("v", ">", 5.0)
P2 = Or([Comparison("v", "<=", 1.0), Comparison("w", "==", 0.0)])
P3 = And([Comparison("u", "!=", 3.0), Comparison("v", ">", 0.0)])


def make_registry() -> DetectorRegistry:
    registry = DetectorRegistry()
    registry.register(Detector(P1, name="entry"))
    registry.register(Detector(P2, name="entry"))  # v2
    registry.register(
        Detector(P3, location=Probe("MG", Location.EXIT), name="exit")
    )
    return registry


class TestVersioning:
    def test_versions_auto_increment(self):
        registry = make_registry()
        assert registry.versions("entry") == [1, 2]
        assert registry.versions("exit") == [1]

    def test_lookup_defaults_to_latest(self):
        registry = make_registry()
        assert registry.lookup("entry").version == 2
        assert registry.lookup("entry").detector.predicate == P2

    def test_lookup_pinned_version(self):
        registry = make_registry()
        assert registry.lookup("entry", version=1).detector.predicate == P1

    def test_published_versions_are_immutable(self):
        registry = make_registry()
        with pytest.raises(RegistryError):
            registry.register(Detector(P1, name="entry"), version=2)

    def test_unknown_lookups_raise(self):
        registry = make_registry()
        with pytest.raises(RegistryError):
            registry.lookup("nope")
        with pytest.raises(RegistryError):
            registry.lookup("entry", version=9)

    def test_registration_is_compiled(self):
        entry = make_registry().lookup("entry")
        assert entry.compiled.mode == "compiled"
        assert entry.compiled.evaluate({"v": 0.5}) is True

    def test_unregister(self):
        registry = make_registry()
        registry.unregister("entry", version=2)
        assert registry.lookup("entry").version == 1
        registry.unregister("entry")
        assert "entry" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("entry")

    def test_latest_and_len(self):
        registry = make_registry()
        assert len(registry) == 3
        assert [e.name for e in registry.latest()] == ["entry", "exit"]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        registry = make_registry()
        path = registry.save(tmp_path / "registry.json")
        loaded = DetectorRegistry.load(path)
        assert loaded.names() == registry.names()
        assert loaded.versions("entry") == [1, 2]
        for entry in registry:
            twin = loaded.lookup(entry.name, entry.version)
            assert twin.detector.predicate == entry.detector.predicate
        # Locations survive.
        assert str(loaded.lookup("exit").detector.location) == "MG@exit"

    def test_reloaded_registry_serves(self, tmp_path):
        path = make_registry().save(tmp_path / "registry.json")
        loaded = DetectorRegistry.load(path)
        entry = loaded.lookup("entry")
        assert entry.compiled.mode == "compiled"
        state = {"v": 0.0, "w": 0.0}
        assert entry.compiled.evaluate(state) == P2.evaluate(state)

    def test_document_is_plain_json(self, tmp_path):
        path = make_registry().save(tmp_path / "registry.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.runtime.registry"
        assert payload["version"] == 1
        assert len(payload["detectors"]) == 3

    def test_malformed_documents_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(SerializationError):
            DetectorRegistry.load(bad)
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SerializationError):
            DetectorRegistry.load(bad)
        bad.write_text(
            json.dumps(
                {"format": "repro.runtime.registry", "version": 99,
                 "detectors": []}
            )
        )
        with pytest.raises(SerializationError):
            DetectorRegistry.load(bad)


UNSAT = And([Comparison("v", "<=", 1.0), Comparison("v", ">", 5.0)])


class TestLintGating:
    def test_reject_refuses_unsatisfiable(self):
        registry = DetectorRegistry(lint_policy="reject")
        with pytest.raises(RegistryError, match="refusing to publish"):
            registry.publish(Detector(UNSAT, name="bad"))
        assert "bad" not in registry

    def test_warn_publishes_with_warning(self):
        registry = DetectorRegistry()  # warn is the default
        with pytest.warns(RegistryWarning, match="bad"):
            registry.publish(Detector(UNSAT, name="bad"))
        assert registry.lookup("bad").version == 1

    def test_off_is_silent(self, recwarn):
        registry = DetectorRegistry(lint_policy="off")
        registry.publish(Detector(UNSAT, name="bad"))
        assert not [w for w in recwarn if issubclass(w.category, RegistryWarning)]

    def test_per_call_override(self):
        registry = DetectorRegistry(lint_policy="reject")
        registry.publish(Detector(UNSAT, name="bad"), lint_policy="off")
        assert "bad" in registry

    def test_duplicate_of_other_name_flagged(self):
        registry = DetectorRegistry(lint_policy="reject")
        registry.publish(Detector(P1, name="a"))
        with pytest.raises(RegistryError, match="equivalent"):
            registry.publish(Detector(Comparison("v", ">", 5.0), name="b"))

    def test_version_bump_of_same_name_allowed(self):
        registry = DetectorRegistry(lint_policy="reject")
        registry.publish(Detector(P1, name="a"))
        # Republishing an equivalent predicate under the SAME name is the
        # sanctioned supersede path and must not be rejected.
        registry.publish(Detector(Comparison("v", ">", 5.0), name="a"))
        assert registry.versions("a") == [1, 2]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            DetectorRegistry(lint_policy="loud")

    def test_saved_artefact_loads_despite_policy(self, tmp_path):
        registry = DetectorRegistry(lint_policy="off")
        registry.publish(Detector(UNSAT, name="bad"))
        path = registry.save(tmp_path / "registry.json")
        loaded = DetectorRegistry.load(path)
        assert "bad" in loaded


class TestRollback:
    """Hot-deploy rollback: re-pointing ``latest`` at a prior version."""

    def test_rollback_repoints_latest(self):
        registry = make_registry()  # entry has v1 and v2
        assert registry.lookup("entry").version == 2
        entry = registry.rollback("entry")
        assert entry.version == 1
        assert registry.lookup("entry").version == 1
        # The rolled-back version stays published; explicit lookups work.
        assert registry.lookup("entry", version=2).detector.predicate == P2

    def test_latest_helpers_follow_the_pointer(self):
        registry = make_registry()
        registry.rollback("entry")
        assert registry.latest_version("entry") == 1
        assert {e.name: e.version for e in registry.latest()} == {
            "entry": 1,
            "exit": 1,
        }

    def test_rollback_without_prior_version_fails(self):
        registry = make_registry()
        with pytest.raises(RegistryError, match="no prior version"):
            registry.rollback("exit")  # only v1 exists
        registry.rollback("entry")  # v2 -> v1
        with pytest.raises(RegistryError, match="no prior version"):
            registry.rollback("entry")  # already at the floor

    def test_rollback_unknown_name_fails(self):
        with pytest.raises(RegistryError, match="unknown detector"):
            make_registry().rollback("ghost")

    def test_repeated_rollback_walks_versions_in_order(self):
        registry = DetectorRegistry()
        for threshold in (1.0, 2.0, 3.0):
            registry.register(Detector(Comparison("v", ">", threshold), name="d"))
        assert registry.rollback("d").version == 2
        assert registry.rollback("d").version == 1

    def test_fresh_publish_supersedes_rollback(self):
        registry = make_registry()
        registry.rollback("entry")
        registry.register(Detector(P3, name="entry"), lint_policy="off")  # v3
        assert registry.lookup("entry").version == 3

    def test_action_recorded(self):
        registry = make_registry()
        registry.rollback("entry")
        assert registry.actions == [
            {
                "action": "rollback",
                "name": "entry",
                "from_version": 2,
                "to_version": 1,
            }
        ]

    def test_rollback_survives_persistence(self, tmp_path):
        registry = make_registry()
        registry.rollback("entry")
        loaded = DetectorRegistry.load(registry.save(tmp_path / "r.json"))
        assert loaded.lookup("entry").version == 1
        assert loaded.actions == registry.actions
        # ... and the pointer is still live state, not just a record.
        loaded.register(Detector(P3, name="entry"), lint_policy="off")
        assert loaded.lookup("entry").version == 3

    def test_snapshot_without_rollback_has_no_pointer_keys(self, tmp_path):
        registry = make_registry()
        payload = registry.to_dict()
        assert "latest" not in payload
        assert "actions" not in payload

    def test_unregister_of_pointed_version_clears_pointer(self):
        registry = make_registry()
        registry.rollback("entry")  # pointer -> v1
        registry.unregister("entry", version=1)
        assert registry.lookup("entry").version == 2

"""Compiler correctness: lowered evaluators == interpreted algebra."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.detector import Detector
from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)
from repro.runtime.compile import compile_predicate
from repro.runtime.pack import build_index, pack_states, state_value

NAN = float("nan")

P = Or(
    [
        And([Comparison("v", "<=", 5.0), Comparison("w", "==", 1.0)]),
        Comparison("v", ">", 9.0),
        Comparison("u", "!=", 2.0),
    ]
)

STATES = [
    {"v": 4.0, "w": 1.0, "u": 2.0},
    {"v": 6.0, "w": 1.0, "u": 2.0},
    {"v": 10.0},
    {},
    {"v": NAN, "w": NAN, "u": NAN},
    {"u": 3.0},
    {"v": 5.0, "w": 0.0, "u": 2.0},
]


class TestScalarClosure:
    def test_matches_interpreted(self):
        compiled = compile_predicate(P)
        assert compiled.mode == "compiled"
        for state in STATES:
            assert compiled.evaluate(state) == P.evaluate(state), state

    def test_missing_variable_false(self):
        compiled = compile_predicate(Comparison("x", "!=", 1.0))
        assert compiled.evaluate({}) is False

    def test_nan_false_for_every_operator(self):
        for op in ("<=", ">", "==", "!="):
            compiled = compile_predicate(Comparison("x", op, 1.0))
            assert compiled.evaluate({"x": NAN}) is False, op

    def test_constants(self):
        assert compile_predicate(TruePredicate()).evaluate({}) is True
        assert compile_predicate(FalsePredicate()).evaluate({}) is False

    def test_source_is_recorded(self):
        compiled = compile_predicate(P)
        assert "def _detector" in compiled.scalar_source


class TestBatchEvaluator:
    def test_matches_evaluate_rows(self):
        compiled = compile_predicate(P)
        index = build_index(P.variables())
        x = pack_states(STATES, index)
        assert np.array_equal(
            compiled.evaluate_rows(x, index), P.evaluate_rows(x, index)
        )

    def test_matches_dict_semantics(self):
        compiled = compile_predicate(P)
        index = build_index(P.variables())
        x = pack_states(STATES, index)
        assert compiled.evaluate_rows(x, index).tolist() == [
            P.evaluate(state) for state in STATES
        ]

    def test_unknown_variables_all_false(self):
        compiled = compile_predicate(Comparison("x", "<=", 1.0))
        assert not compiled.evaluate_rows(np.zeros((4, 1)), {}).any()


class TestFallback:
    def test_custom_atom_falls_back(self):
        class Weird(Predicate):
            def evaluate(self, state):
                return state.get("x") == "weird"

            def evaluate_rows(self, x, attribute_index):
                return np.zeros(len(np.atleast_2d(x)), dtype=bool)

            def variables(self):
                return frozenset(("x",))

            def simplify(self):
                return self

            def complexity(self):
                return 1

            def _source(self, state_name):
                return "False"

        compiled = compile_predicate(Weird())
        assert compiled.mode == "interpreted"
        assert "Weird" in compiled.fallback_reason
        assert compiled.evaluate({"x": "weird"}) is True

    def test_fallback_nested_inside_connective(self):
        from repro.baselines.invariants import _OrderingViolation

        predicate = And([Comparison("a", ">", 0.0), _OrderingViolation("a", "b")])
        compiled = compile_predicate(predicate)
        assert compiled.mode == "interpreted"
        assert compiled.evaluate({"a": 3.0, "b": 1.0}) is True
        assert compiled.evaluate({"a": 3.0}) is False


class TestDetectorHook:
    def test_check_uses_compiled_path(self):
        detector = Detector(P, name="hooked")
        compiled = detector.compile()
        assert compiled is detector.compiled
        assert compiled.is_compiled
        for state in STATES:
            fresh = Detector(P)
            assert detector.check(state) == fresh.check(state)
        assert detector.evaluations == len(STATES)

    def test_counters_still_track(self):
        detector = Detector(Comparison("v", ">", 1.0), name="count")
        detector.compile()
        detector.check({"v": 2.0})
        detector.check({"v": 0.0})
        assert (detector.evaluations, detector.detections) == (2, 1)


# ----------------------------------------------------------------------
# Property: compiled == interpreted on random predicates x random states
# ----------------------------------------------------------------------
values = st.one_of(
    st.floats(min_value=-10, max_value=10),
    st.just(NAN),
    st.booleans(),
)
variables = st.sampled_from(["a", "b", "c", "d"])
comparisons = st.builds(
    Comparison,
    variable=variables,
    op=st.sampled_from(["<=", ">", "==", "!="]),
    value=st.floats(min_value=-5, max_value=5, allow_nan=False),
)
predicates = st.recursive(
    st.one_of(
        comparisons,
        st.just(TruePredicate()),
        st.just(FalsePredicate()),
    ),
    lambda children: st.one_of(
        st.builds(lambda cs: And(cs), st.lists(children, max_size=4)),
        st.builds(lambda cs: Or(cs), st.lists(children, max_size=4)),
    ),
    max_leaves=12,
)
states = st.dictionaries(variables, values, max_size=4)


@settings(max_examples=150, deadline=None)
@given(predicate=predicates, state=states)
def test_compiled_equals_interpreted_property(predicate, state):
    compiled = compile_predicate(predicate)
    assert compiled.mode == "compiled"
    # Scalar closure vs AST walk.
    assert compiled.evaluate(state) == predicate.evaluate(state)
    # Batch evaluator vs AST walk over the packed single-row array.
    index = build_index(predicate.variables() | set(state))
    x = pack_states([state], index)
    want = bool(predicate.evaluate_rows(x, index)[0])
    assert bool(compiled.evaluate_rows(x, index)[0]) == want
    # Packed-row semantics agree with dict semantics.
    assert want == predicate.evaluate(state)


@settings(max_examples=100, deadline=None)
@given(state=states, variable=variables)
def test_state_value_matches_scalar_semantics(state, variable):
    """pack/state_value NaN convention == Comparison.evaluate."""
    value = state_value(state, variable)
    comparison = Comparison(variable, "<=", 0.0)
    if math.isnan(value):
        assert comparison.evaluate(state) is False
    else:
        assert comparison.evaluate(state) == (value <= 0.0)


def test_rendered_source_preserves_missing_nan_semantics():
    """to_source() output is eval-safe and matches evaluate()."""
    source = P.to_source("state")
    for state in STATES:
        assert eval(source, {}, {"state": state}) == P.evaluate(state), state


class TestSimplifyIntegration:
    def test_redundant_atoms_lowered_away(self):
        fat = And([Comparison("x", "<=", 5.0), Comparison("x", "<=", 9.0)])
        compiled = compile_predicate(fat)
        assert compiled.mode == "compiled"
        assert compiled.predicate == fat  # original kept for provenance
        assert compiled.lowered == Comparison("x", "<=", 5.0)
        for state in ({}, {"x": 4.0}, {"x": 7.0}, {"x": NAN}):
            assert compiled.evaluate(state) == fat.evaluate(state), state

    def test_simplify_false_lowers_verbatim(self):
        fat = And([Comparison("x", "<=", 5.0), Comparison("x", "<=", 9.0)])
        compiled = compile_predicate(fat, simplify=False)
        assert compiled.lowered == fat

    def test_lowered_defaults_to_predicate(self):
        compiled = compile_predicate(Comparison("x", ">", 0.0))
        assert compiled.lowered is compiled.predicate

    def test_lowered_variables_drive_batch_columns(self):
        dead = And([Comparison("x", "<=", 1.0), Comparison("x", ">", 5.0)])
        live = Comparison("y", ">", 0.0)
        compiled = compile_predicate(Or([dead, live]))
        assert compiled.lowered.variables() == frozenset(("y",))
        index = build_index(compiled.lowered.variables())
        x = pack_states([{"y": 1.0}, {"y": -1.0}], index)
        assert list(compiled.evaluate_rows(x, index)) == [True, False]

    def test_unsupported_simplified_form_falls_back_to_original(self):
        class Opaque(Predicate):
            def evaluate(self, state):
                return bool(state.get("q", 0) > 0)

            def evaluate_rows(self, x, attribute_index):
                raise NotImplementedError

            def variables(self):
                return frozenset(("q",))

            def simplify(self):
                return self

            def complexity(self):
                return 1

            def _source(self, state_name):
                return "False"

        compiled = compile_predicate(And([Opaque(), Comparison("x", ">", 0.0)]))
        assert compiled.mode == "interpreted"

"""Metrics layer: histogram quantiles, snapshots, report export."""

import json

import pytest

from repro.runtime.metrics import (
    DetectorStats,
    LatencyHistogram,
    RuntimeMetrics,
    calibrate_detector_cost,
)


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_single_sample_is_exact(self):
        histogram = LatencyHistogram()
        histogram.observe(0.004)
        snapshot = histogram.snapshot()
        assert snapshot["min"] == snapshot["max"] == 0.004
        assert snapshot["p50"] == snapshot["p99"] == 0.004

    def test_quantiles_are_monotone_and_bounded(self):
        histogram = LatencyHistogram()
        for i in range(1, 1001):
            histogram.observe(i * 1e-5)  # 10 us .. 10 ms
        p50, p95, p99 = (histogram.quantile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99
        assert histogram.minimum <= p50
        assert p99 <= histogram.maximum
        # Bucket resolution is ~18%: estimates land near the truth.
        assert p50 == pytest.approx(0.005, rel=0.25)
        assert p99 == pytest.approx(0.0099, rel=0.25)

    def test_mean_and_extremes(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.003, 0.002):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.minimum == 0.001
        assert histogram.maximum == 0.003

    def test_rejects_garbage_silently(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        histogram.observe(float("nan"))
        histogram.observe(float("inf"))
        assert histogram.count == 0

    def test_overflow_bucket(self):
        histogram = LatencyHistogram()
        histogram.observe(1000.0)  # beyond the last bound
        assert histogram.overflow == 1
        assert histogram.quantile(0.5) == 1000.0

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestDetectorStats:
    def test_record_batch_accumulates(self):
        stats = DetectorStats("d")
        stats.record_batch(100, 7, 0.010)
        stats.record_batch(50, 3, 0.005)
        snapshot = stats.snapshot()
        assert snapshot["evaluations"] == 150
        assert snapshot["detections"] == 10
        assert snapshot["batches"] == 2
        assert snapshot["detection_rate"] == pytest.approx(10 / 150)
        assert snapshot["per_state"] == pytest.approx(0.015 / 150)

    def test_faults_counted(self):
        stats = DetectorStats("d")
        stats.record_fault()
        assert stats.snapshot()["faults"] == 1


class TestRuntimeMetrics:
    def test_stats_for_is_idempotent(self):
        metrics = RuntimeMetrics()
        assert metrics.stats_for("a") is metrics.stats_for("a")
        assert "a" in metrics

    def test_report_is_json_exportable(self):
        metrics = RuntimeMetrics()
        metrics.stats_for("a").record_batch(10, 2, 0.001)
        metrics.stats_for("b").record_fault()
        report = metrics.report()
        text = json.dumps(report)  # plain dict, no custom types
        assert "p95" in text
        assert report["totals"] == {
            "evaluations": 10,
            "detections": 2,
            "faults": 1,
            "batches": 1,
            "seconds": pytest.approx(0.001),
        }

    def test_reset(self):
        metrics = RuntimeMetrics()
        metrics.stats_for("a")
        metrics.reset()
        assert "a" not in metrics


class TestMerge:
    """Cross-process aggregation: bucket-exact, commutative merges."""

    @staticmethod
    def _filled(samples) -> LatencyHistogram:
        histogram = LatencyHistogram()
        for value in samples:
            histogram.observe(value)
        return histogram

    def test_merge_equals_pooled_observation(self):
        left = self._filled(i * 1e-5 for i in range(1, 500))
        right = self._filled(i * 1e-4 for i in range(1, 200))
        pooled = self._filled(
            [i * 1e-5 for i in range(1, 500)]
            + [i * 1e-4 for i in range(1, 200)]
        )
        left.merge(right)
        assert left.counts == pooled.counts
        assert left.count == pooled.count
        assert left.overflow == pooled.overflow
        assert left.total == pytest.approx(pooled.total)
        assert left.minimum == pooled.minimum
        assert left.maximum == pooled.maximum
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == pooled.quantile(q)

    def test_merge_is_commutative(self):
        a1 = self._filled((0.001, 0.002))
        b1 = self._filled((0.5, 1000.0))  # includes overflow
        a2 = self._filled((0.001, 0.002))
        b2 = self._filled((0.5, 1000.0))
        a1.merge(b1)
        b2.merge(a2)
        assert a1.counts == b2.counts
        assert (a1.count, a1.overflow, a1.minimum, a1.maximum) == (
            b2.count, b2.overflow, b2.minimum, b2.maximum
        )

    def test_merge_with_empty_is_identity(self):
        filled = self._filled((0.001, 0.002, 0.003))
        before = filled.snapshot()
        filled.merge(LatencyHistogram())
        assert filled.snapshot() == before

    def test_merge_rejects_different_bounds(self):
        # Only two *populated* histograms with mismatched bounds are
        # irreconcilable; empty sides adopt or no-op (TestOneSidedMerge).
        left = self._filled((0.001,))
        right = LatencyHistogram(bounds=(0.1, 1.0))
        right.observe(0.2)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_pooled_p99_is_not_an_average_of_p99s(self):
        # The classic failure mode bucket-exact merging avoids: one
        # fast worker and one slow worker.  The pooled p99 must come
        # from the slow tail, not the average of the two p99s.
        fast = self._filled(1e-4 for _ in range(99))
        slow = self._filled(1e-1 for _ in range(99))
        naive_average = (fast.quantile(0.99) + slow.quantile(0.99)) / 2
        fast.merge(slow)
        assert fast.quantile(0.99) == pytest.approx(1e-1, rel=0.25)
        assert fast.quantile(0.99) > naive_average

    def test_histogram_roundtrip(self):
        original = self._filled((0.001, 0.5, 1000.0))
        restored = LatencyHistogram.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert restored.counts == original.counts
        assert restored.overflow == original.overflow
        assert restored.snapshot() == original.snapshot()

    def test_empty_histogram_roundtrip(self):
        restored = LatencyHistogram.from_dict(LatencyHistogram().to_dict())
        assert restored.count == 0
        restored.observe(0.002)  # minimum must still track correctly
        assert restored.minimum == 0.002

    def test_detector_stats_merge(self):
        a = DetectorStats("d")
        a.record_batch(100, 7, 0.010)
        a.record_fault()
        b = DetectorStats("d")
        b.record_batch(50, 3, 0.005)
        a.merge(b)
        assert (a.evaluations, a.detections, a.faults, a.batches) == (
            150, 10, 1, 2
        )
        assert a.latency.count == 2

    def test_runtime_metrics_merge_unions_names(self):
        ours = RuntimeMetrics()
        ours.stats_for("shared").record_batch(10, 1, 0.001)
        ours.stats_for("only_ours").record_batch(5, 0, 0.002)
        theirs = RuntimeMetrics()
        theirs.stats_for("shared").record_batch(20, 2, 0.003)
        theirs.stats_for("only_theirs").record_fault()
        ours.merge(theirs)
        report = ours.report()
        assert set(report["detectors"]) == {
            "shared", "only_ours", "only_theirs"
        }
        assert report["detectors"]["shared"]["evaluations"] == 30
        assert report["totals"]["faults"] == 1

    def test_runtime_metrics_roundtrip_then_merge(self):
        # The supervisor's actual path: workers serialise, the
        # supervisor restores and folds in any order.
        workers = []
        for shard in range(3):
            metrics = RuntimeMetrics()
            metrics.stats_for("d").record_batch(10 * (shard + 1), shard, 0.001)
            workers.append(json.loads(json.dumps(metrics.to_dict())))
        forward = RuntimeMetrics()
        for payload in workers:
            forward.merge(RuntimeMetrics.from_dict(payload))
        backward = RuntimeMetrics()
        for payload in reversed(workers):
            backward.merge(RuntimeMetrics.from_dict(payload))
        assert forward.report() == backward.report()
        assert forward.report()["totals"]["evaluations"] == 60
        assert forward.report()["detectors"]["d"]["detections"] == 3


class TestOneSidedMerge:
    """Per-detector counts must survive merging into a fresh aggregate,
    even when the populated side uses non-default bucket bounds."""

    @staticmethod
    def _custom(samples):
        histogram = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        for value in samples:
            histogram.observe(value)
        return histogram

    def test_empty_property(self):
        assert LatencyHistogram().empty
        filled = LatencyHistogram()
        filled.observe(0.002)
        assert not filled.empty

    def test_empty_self_adopts_other_bounds(self):
        aggregate = LatencyHistogram()  # default bounds
        worker = self._custom((0.002, 0.02, 0.2))
        aggregate.merge(worker)
        assert aggregate.count == 3
        assert aggregate.bounds == worker.bounds
        assert aggregate.counts == worker.counts
        assert aggregate.minimum == 0.002
        assert aggregate.maximum == 0.2

    def test_empty_other_is_noop_despite_bounds(self):
        filled = self._custom((0.002, 0.02))
        before = filled.snapshot()
        filled.merge(LatencyHistogram())  # default bounds, but empty
        assert filled.snapshot() == before
        assert filled.bounds == (0.001, 0.01, 0.1)

    def test_two_nonempty_different_bounds_still_rejected(self):
        filled = self._custom((0.002,))
        other = LatencyHistogram()
        other.observe(0.002)
        with pytest.raises(ValueError):
            filled.merge(other)

    def test_detector_stats_survive_one_sided_merge(self):
        # The supervisor path that used to zero worker counts: a fresh
        # aggregate folding in a worker with custom-bounds histograms.
        aggregate = DetectorStats("d")
        worker = DetectorStats("d", latency=self._custom(()))
        worker.record_batch(100, 7, 0.004)
        aggregate.merge(worker)
        assert aggregate.evaluations == 100
        assert aggregate.detections == 7
        assert aggregate.latency.count == 1
        assert aggregate.latency.bounds == (0.001, 0.01, 0.1)

    def test_one_sided_merge_is_commutative(self):
        worker = self._custom((0.002, 0.02, 0.2))
        a = LatencyHistogram()
        a.merge(worker)
        b = self._custom((0.002, 0.02, 0.2))
        b.merge(LatencyHistogram())
        assert a.snapshot() == b.snapshot()
        assert a.counts == b.counts


class TestCalibrateDetectorCost:
    @staticmethod
    def _compiled():
        from repro.core.predicate import Comparison
        from repro.runtime.compile import compile_predicate

        return compile_predicate(Comparison("v", ">", 5.0))

    @staticmethod
    def _states(n=64):
        return [{"v": float(i % 10), "w": 1.0} for i in range(n)]

    def test_measures_positive_cost(self):
        calibration = calibrate_detector_cost(
            self._compiled(), self._states(), repeats=5, warmup=1, name="hi"
        )
        assert calibration.per_event_s > 0.0
        assert calibration.batch_s == pytest.approx(
            calibration.per_event_s * calibration.events
        )
        assert calibration.spread_s >= 0.0
        assert (calibration.events, calibration.repeats, calibration.warmup) == (
            64, 5, 1
        )
        payload = calibration.to_dict()
        assert payload["name"] == "hi"
        assert json.dumps(payload)  # JSON-exportable

    def test_records_into_metrics(self):
        metrics = RuntimeMetrics()
        calibrate_detector_cost(
            self._compiled(), self._states(), repeats=3, warmup=0,
            name="hi", metrics=metrics,
        )
        stats = metrics.stats_for("hi")
        assert stats.batches == 3
        assert stats.evaluations == 3 * 64
        # 24 of the 64 states satisfy v > 5 (values 6..9 in each full
        # cycle of 10).
        assert stats.detections == 3 * 24
        assert stats.latency.count == 3

    def test_validates_arguments(self):
        compiled = self._compiled()
        with pytest.raises(ValueError, match="at least one state"):
            calibrate_detector_cost(compiled, [])
        with pytest.raises(ValueError, match="repeats"):
            calibrate_detector_cost(compiled, self._states(), repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            calibrate_detector_cost(compiled, self._states(), warmup=-1)

"""Metrics layer: histogram quantiles, snapshots, report export."""

import json

import pytest

from repro.runtime.metrics import DetectorStats, LatencyHistogram, RuntimeMetrics


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_single_sample_is_exact(self):
        histogram = LatencyHistogram()
        histogram.observe(0.004)
        snapshot = histogram.snapshot()
        assert snapshot["min"] == snapshot["max"] == 0.004
        assert snapshot["p50"] == snapshot["p99"] == 0.004

    def test_quantiles_are_monotone_and_bounded(self):
        histogram = LatencyHistogram()
        for i in range(1, 1001):
            histogram.observe(i * 1e-5)  # 10 us .. 10 ms
        p50, p95, p99 = (histogram.quantile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99
        assert histogram.minimum <= p50
        assert p99 <= histogram.maximum
        # Bucket resolution is ~18%: estimates land near the truth.
        assert p50 == pytest.approx(0.005, rel=0.25)
        assert p99 == pytest.approx(0.0099, rel=0.25)

    def test_mean_and_extremes(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.003, 0.002):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.minimum == 0.001
        assert histogram.maximum == 0.003

    def test_rejects_garbage_silently(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        histogram.observe(float("nan"))
        histogram.observe(float("inf"))
        assert histogram.count == 0

    def test_overflow_bucket(self):
        histogram = LatencyHistogram()
        histogram.observe(1000.0)  # beyond the last bound
        assert histogram.overflow == 1
        assert histogram.quantile(0.5) == 1000.0

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestDetectorStats:
    def test_record_batch_accumulates(self):
        stats = DetectorStats("d")
        stats.record_batch(100, 7, 0.010)
        stats.record_batch(50, 3, 0.005)
        snapshot = stats.snapshot()
        assert snapshot["evaluations"] == 150
        assert snapshot["detections"] == 10
        assert snapshot["batches"] == 2
        assert snapshot["detection_rate"] == pytest.approx(10 / 150)
        assert snapshot["per_state"] == pytest.approx(0.015 / 150)

    def test_faults_counted(self):
        stats = DetectorStats("d")
        stats.record_fault()
        assert stats.snapshot()["faults"] == 1


class TestRuntimeMetrics:
    def test_stats_for_is_idempotent(self):
        metrics = RuntimeMetrics()
        assert metrics.stats_for("a") is metrics.stats_for("a")
        assert "a" in metrics

    def test_report_is_json_exportable(self):
        metrics = RuntimeMetrics()
        metrics.stats_for("a").record_batch(10, 2, 0.001)
        metrics.stats_for("b").record_fault()
        report = metrics.report()
        text = json.dumps(report)  # plain dict, no custom types
        assert "p95" in text
        assert report["totals"] == {
            "evaluations": 10,
            "detections": 2,
            "faults": 1,
            "batches": 1,
            "seconds": pytest.approx(0.001),
        }

    def test_reset(self):
        metrics = RuntimeMetrics()
        metrics.stats_for("a")
        metrics.reset()
        assert "a" not in metrics

"""Engine semantics: micro-batching, enable/disable, error isolation."""

import numpy as np
import pytest

from repro.core.detector import Detector
from repro.core.predicate import Comparison, Or, Predicate
from repro.runtime.engine import StreamingEngine
from repro.runtime.registry import DetectorRegistry

HI = Comparison("v", ">", 5.0)
LO = Comparison("v", "<=", -5.0)
EDGES = Or([HI, LO])


def make_states(n=20):
    return [{"v": float(i - n // 2), "w": float(i)} for i in range(n)]


class RaisingPredicate(Predicate):
    """A predicate whose batch path always crashes."""

    def evaluate(self, state):
        raise RuntimeError("scalar boom")

    def evaluate_rows(self, x, attribute_index):
        raise RuntimeError("batch boom")

    def variables(self):
        return frozenset(("v",))

    def simplify(self):
        return self

    def complexity(self):
        return 1

    def _source(self, state_name):
        return "False"


class TestBatching:
    def test_stream_matches_per_state_check(self):
        states = make_states()
        engine = StreamingEngine(batch_size=7)
        engine.add(Detector(EDGES, name="edges"))
        flags = np.concatenate(
            [r.flags["edges"] for r in engine.evaluate_stream(states)]
        )
        expected = [Detector(EDGES).check(s) for s in states]
        assert flags.tolist() == expected

    def test_submit_flushes_at_batch_size(self):
        engine = StreamingEngine(batch_size=3)
        engine.add(Detector(HI, name="hi"))
        assert engine.submit({"v": 9.0}) is None
        assert engine.submit({"v": 1.0}) is None
        result = engine.submit({"v": 8.0})
        assert result is not None
        assert result.size == 3
        assert result.flags["hi"].tolist() == [True, False, True]
        assert engine.flush() is None  # nothing pending

    def test_flush_drains_partial_batch(self):
        engine = StreamingEngine(batch_size=100)
        engine.add(Detector(HI, name="hi"))
        engine.submit({"v": 9.0})
        result = engine.flush()
        assert result is not None and result.size == 1

    def test_detector_counters_updated(self):
        engine = StreamingEngine(batch_size=4)
        detector = Detector(HI, name="hi")
        engine.add(detector)
        list(engine.evaluate_stream(make_states(8)))
        assert detector.evaluations == 8
        assert detector.detections == sum(
            HI.evaluate(s) for s in make_states(8)
        )

    def test_any_flags_union(self):
        engine = StreamingEngine()
        engine.add(Detector(HI, name="hi"))
        engine.add(Detector(LO, name="lo"))
        result = engine.evaluate_batch(
            [{"v": 9.0}, {"v": 0.0}, {"v": -9.0}]
        )
        assert result.any_flags().tolist() == [True, False, True]
        assert result.detections() == {"hi": 1, "lo": 1}

    def test_from_registry_serves_latest(self):
        registry = DetectorRegistry()
        registry.register(Detector(LO, name="d"))
        registry.register(Detector(HI, name="d"))  # v2 wins
        engine = StreamingEngine.from_registry(registry)
        result = engine.evaluate_batch([{"v": 9.0}])
        assert result.flags["d"].tolist() == [True]


class TestEnableDisable:
    def test_disabled_detector_is_skipped(self):
        engine = StreamingEngine()
        engine.add(Detector(HI, name="hi"))
        engine.add(Detector(LO, name="lo"))
        engine.disable("lo")
        result = engine.evaluate_batch([{"v": -9.0}])
        assert set(result.flags) == {"hi"}
        assert engine.enabled_names() == ["hi"]
        engine.enable("lo")
        result = engine.evaluate_batch([{"v": -9.0}])
        assert result.flags["lo"].tolist() == [True]

    def test_unknown_name_raises(self):
        engine = StreamingEngine()
        with pytest.raises(KeyError):
            engine.disable("ghost")


class TestErrorIsolation:
    def test_crashing_detector_does_not_poison_batch(self):
        engine = StreamingEngine()
        engine.add(Detector(RaisingPredicate(), name="bad"))
        engine.add(Detector(HI, name="good"))
        result = engine.evaluate_batch([{"v": 9.0}, {"v": 0.0}])
        # The healthy detector still reports detections...
        assert result.flags["good"].tolist() == [True, False]
        # ...the crashing one degrades to "no detection" + a fault.
        assert result.flags["bad"].tolist() == [False, False]
        assert len(result.faults) == 1
        assert result.faults[0].detector == "bad"
        assert "batch boom" in result.faults[0].error
        report = engine.report()
        assert report["detectors"]["bad"]["faults"] == 1
        assert report["detectors"]["good"]["faults"] == 0

    def test_fault_quarantine_after_max_faults(self):
        engine = StreamingEngine(max_faults=2)
        engine.add(Detector(RaisingPredicate(), name="bad"))
        engine.evaluate_batch([{"v": 1.0}])
        assert engine.is_enabled("bad")
        engine.evaluate_batch([{"v": 1.0}])
        assert not engine.is_enabled("bad")  # quarantined
        # Re-enabling clears the fault count.
        engine.enable("bad")
        assert engine.is_enabled("bad")

    def test_wrong_shape_is_a_fault(self):
        class WrongShape(RaisingPredicate):
            def evaluate_rows(self, x, attribute_index):
                return np.zeros(1, dtype=bool)  # ignores batch size

        engine = StreamingEngine()
        engine.add(Detector(WrongShape(), name="short"))
        result = engine.evaluate_batch([{"v": 1.0}, {"v": 2.0}])
        assert len(result.faults) == 1
        assert result.flags["short"].tolist() == [False, False]


class TestMetricsWiring:
    def test_report_structure(self):
        engine = StreamingEngine(batch_size=5)
        engine.add(Detector(HI, name="hi"))
        list(engine.evaluate_stream(make_states(12)))
        report = engine.report()
        stats = report["detectors"]["hi"]
        assert stats["evaluations"] == 12
        assert stats["batches"] == 3
        latency = stats["latency"]
        assert latency["count"] == 3
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert report["totals"]["evaluations"] == 12
        assert report["serving"]["hi"]["mode"] == "compiled"

"""Cross-cutting property-based tests over randomly generated datasets.

These tie the layers together: for arbitrary (small) mixed-attribute
datasets, the ARFF round trip is lossless, every learner obeys the
classifier protocol, tree predicates agree with tree predictions, and
the campaign/dataset chain preserves counts.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.extraction import tree_to_predicate
from repro.mining.arff import dumps_arff, loads_arff
from repro.mining.crossval import cross_validate, stratified_folds
from repro.mining.dataset import Attribute, Dataset
from repro.mining.sampling import smote, undersample_majority
from repro.mining.tree import C45DecisionTree


@st.composite
def datasets(draw) -> Dataset:
    """Random small mixed dataset with two classes, both present."""
    n = draw(st.integers(12, 60))
    n_numeric = draw(st.integers(1, 3))
    n_nominal = draw(st.integers(0, 2))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    attributes = []
    columns = []
    for i in range(n_numeric):
        attributes.append(Attribute.numeric(f"num{i}"))
        scale = draw(st.sampled_from([1.0, 100.0, 1e6]))
        columns.append(rng.normal(0, scale, n))
    for i in range(n_nominal):
        k = draw(st.integers(2, 4))
        attributes.append(
            Attribute.nominal(f"nom{i}", tuple(f"v{j}" for j in range(k)))
        )
        columns.append(rng.integers(0, k, n).astype(float))
    x = np.column_stack(columns)
    # Missing values sprinkled into numeric columns.
    if draw(st.booleans()):
        mask = rng.random((n, n_numeric)) < 0.1
        x[:, :n_numeric][mask] = np.nan
    y = rng.integers(0, 2, n)
    y[0], y[1] = 0, 1  # both classes present
    return Dataset(
        attributes,
        Attribute.nominal("class", ("neg", "pos")),
        x,
        y,
        name="random",
    )


@given(dataset=datasets())
@settings(deadline=None, max_examples=40)
def test_arff_roundtrip_lossless(dataset):
    again = loads_arff(dumps_arff(dataset))
    assert again.attributes == dataset.attributes
    assert np.array_equal(again.y, dataset.y)
    both_nan = np.isnan(again.x) & np.isnan(dataset.x)
    assert np.array_equal(
        np.where(both_nan, 0.0, again.x), np.where(both_nan, 0.0, dataset.x)
    )


@given(dataset=datasets())
@settings(deadline=None, max_examples=30)
def test_tree_predicate_agrees_with_predictions(dataset):
    tree = C45DecisionTree(prune=False).fit(dataset)
    predicate = tree_to_predicate(tree.root, dataset.class_attribute.values)
    index = {a.name: i for i, a in enumerate(dataset.attributes)}
    # Restrict to fully observed rows: missing values route
    # fractionally in the tree but conservatively in the predicate.
    observed = ~np.isnan(dataset.x).any(axis=1)
    flags = predicate.evaluate_rows(dataset.x[observed], index)
    assert np.array_equal(flags, tree.predict(dataset.x[observed]) == 1)


@given(dataset=datasets(), k=st.integers(2, 5))
@settings(deadline=None, max_examples=30)
def test_stratified_folds_partition(dataset, k):
    if len(dataset) < k or min(np.bincount(dataset.y, minlength=2)) < 1:
        return
    folds = stratified_folds(dataset, k, np.random.default_rng(0))
    joined = np.sort(np.concatenate(folds))
    assert np.array_equal(joined, np.arange(len(dataset)))


@given(dataset=datasets())
@settings(deadline=None, max_examples=20)
def test_cv_confusion_counts_every_instance(dataset):
    counts = dataset.class_counts()
    if counts.min() < 3:
        return
    result = cross_validate(
        dataset, C45DecisionTree, k=3, rng=np.random.default_rng(1)
    )
    assert result.pooled_confusion().total == len(dataset)


@given(dataset=datasets(), level=st.sampled_from([100.0, 300.0]))
@settings(deadline=None, max_examples=20)
def test_smote_only_adds_positives(dataset, level):
    if dataset.class_counts()[1] < 2:
        return
    out = smote(dataset, level, 3, np.random.default_rng(2))
    assert out.class_counts()[0] == dataset.class_counts()[0]
    assert out.class_counts()[1] >= dataset.class_counts()[1]


@given(dataset=datasets(), level=st.floats(5.0, 100.0))
@settings(deadline=None, max_examples=20)
def test_undersampling_keeps_positives(dataset, level):
    out = undersample_majority(dataset, level, np.random.default_rng(3))
    assert out.class_counts()[1] == dataset.class_counts()[1]
    assert out.class_counts()[0] <= dataset.class_counts()[0]


@given(dataset=datasets())
@settings(deadline=None, max_examples=15)
def test_all_learners_respect_protocol(dataset):
    from repro.core.preprocess import LEARNERS, make_learner

    for name in LEARNERS:
        model = make_learner(name).fit(dataset)
        dist = model.distribution(dataset.x[:5])
        assert dist.shape == (5, 2)
        assert np.all(dist >= -1e-12)
        assert np.allclose(dist.sum(axis=1), 1.0)
        predictions = model.predict(dataset.x[:5])
        assert set(np.unique(predictions)) <= {0, 1}

"""End-to-end determinism: identical seeds give identical artefacts.

Reproducibility is the backbone of the whole study (golden runs must
be reproducible for failure labelling to mean anything, and recorded
table numbers must regenerate exactly), so determinism is asserted as
a property of every pipeline stage in one place.
"""

import numpy as np

from repro.core.methodology import Methodology, MethodologyConfig
from repro.core.refine import RefinementGrid
from repro.injection import Campaign, CampaignConfig, Location
from repro.targets import Mp3GainTarget


def fresh_campaign():
    target = Mp3GainTarget(n_tracks=4, min_samples=256, max_samples=512)
    config = CampaignConfig(
        module="RGain",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 1),
        injection_times=(1, 2),
        bits={"int32": (0, 16, 31), "float64": (0, 40, 55, 62, 63)},
    )
    return Campaign(target, config).run()


GRID = RefinementGrid(
    undersample_levels=(50.0,),
    oversample_levels=(200.0,),
    neighbour_counts=(3,),
)


class TestDeterminism:
    def test_campaign_records_identical(self):
        a, b = fresh_campaign(), fresh_campaign()
        assert len(a.records) == len(b.records)
        for ra, rb in zip(a.records, b.records):
            assert ra.flip == rb.flip
            assert ra.failed == rb.failed
            assert ra.deviated == rb.deviated
            assert ra.sample == rb.sample

    def test_dataset_identical(self):
        a = fresh_campaign().to_dataset("d")
        b = fresh_campaign().to_dataset("d")
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_methodology_outcome_identical(self):
        data = fresh_campaign().to_dataset("d")
        method = Methodology(MethodologyConfig(folds=5, seed=9))
        first = method.run(data, GRID)
        second = method.run(data, GRID)
        assert first.baseline.summary() == second.baseline.summary()
        assert first.refined.summary() == second.refined.summary()
        assert first.refined.plan == second.refined.plan
        assert str(first.refined.predicate) == str(second.refined.predicate)

    def test_grid_order_independent_trials(self):
        """Each plan's trial depends only on its grid index and seed,
        so the same plan at the same index scores identically across
        runs (the refine() per-plan RNG-stream design)."""
        from repro.core.refine import refine
        from repro.mining.tree import C45DecisionTree

        data = fresh_campaign().to_dataset("d")
        a = refine(data, C45DecisionTree, GRID, folds=5, seed=4)
        b = refine(data, C45DecisionTree, GRID, folds=5, seed=4)
        for trial_a, trial_b in zip(a.trials, b.trials):
            assert trial_a.plan == trial_b.plan
            assert trial_a.evaluation.summary() == trial_b.evaluation.summary()

    def test_seed_changes_outcome(self):
        data = fresh_campaign().to_dataset("d")
        a = Methodology(MethodologyConfig(folds=5, seed=1)).step3_generate(data)
        b = Methodology(MethodologyConfig(folds=5, seed=2)).step3_generate(data)
        # Different fold assignments: per-fold AUCs differ even if the
        # means land close.
        assert [f.auc for f in a.evaluation.folds] != [
            f.auc for f in b.evaluation.folds
        ]

"""Inline-topology semantics: the deterministic core of the serving tier.

The inline topology steps the *same* ring/router/worker code the
multi-process tier runs, in one process with no scheduler -- which is
what makes the differential hypothesis below airtight: for any worker
count, batch size, ring capacity and event stream, the sharded
topology's flags must be **bit-identical** to a single
:class:`StreamingEngine` evaluating the same stream.
"""

import json
import tempfile
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detector import Detector
from repro.core.predicate import And, Comparison, Or
from repro.runtime.engine import StreamingEngine
from repro.runtime.registry import DetectorRegistry
from repro.serving import (
    LoadProfile,
    ServeConfig,
    ServingTopology,
    SLOPolicy,
    publish_snapshot,
    synthesize_states,
)

P_HI = Comparison("v", ">", 5.0)
P_LO = Or([Comparison("v", "<=", 1.0), Comparison("w", "==", 0.0)])
P_MIX = And([Comparison("u", "!=", 3.0), Comparison("v", ">", 0.0)])


def make_registry() -> DetectorRegistry:
    registry = DetectorRegistry(lint_policy="off")
    registry.register(Detector(P_HI, name="hi"))
    registry.register(Detector(P_LO, name="lo"))
    registry.register(Detector(P_MIX, name="mix"))
    return registry


def inline_topology(tmp, registry=None, **config_kwargs):
    config_kwargs.setdefault("workers", 2)
    config_kwargs.setdefault("capacity", 64)
    config_kwargs.setdefault("batch_size", 8)
    registry = registry if registry is not None else make_registry()
    return ServingTopology.from_registry(
        registry,
        pathlib.Path(tmp) / "snapshot.json",
        ServeConfig(**config_kwargs),
        inline=True,
    )


def reference_masks(registry, states, names):
    """Flag masks from a single-process StreamingEngine stream."""
    engine = StreamingEngine.from_registry(registry, check=False)
    bit_of = {name: bit for bit, name in enumerate(names)}
    masks = []
    for result in engine.evaluate_stream(states, batch_size=16):
        batch_masks = np.zeros(result.size, dtype=np.int64)
        for name, flagged in result.flags.items():
            batch_masks |= flagged.astype(np.int64) << bit_of[name]
        masks.extend(int(m) for m in batch_masks)
    return masks


class TestDifferential:
    """The serving tier must never change what gets flagged."""

    @given(
        workers=st.integers(min_value=1, max_value=4),
        batch_size=st.integers(min_value=1, max_value=16),
        capacity=st.integers(min_value=4, max_value=64),
        events=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_sharded_flags_match_single_engine(
        self, workers, batch_size, capacity, events, seed
    ):
        registry = make_registry()
        states = list(
            synthesize_states(registry, LoadProfile(events=events, seed=seed))
        )
        with tempfile.TemporaryDirectory() as tmp:
            topology = inline_topology(
                tmp,
                workers=workers,
                batch_size=batch_size,
                capacity=capacity,
                shed_after_s=None,  # differential run: nothing may shed
            )
            topology.start()
            topology.submit_many(states)
            report = topology.stop()
        assert report.accounted and report.shed == 0
        expected = reference_masks(registry, states, report.names)
        got = report.flags_by_seq()
        assert len(got) == len(states)
        for seq, mask in enumerate(expected):
            assert got[seq] == mask, f"event {seq} diverged"

    def test_string_keyed_sharding_matches_too(self, tmp_path):
        registry = make_registry()
        states = [
            {"id": f"device-{i % 7}", "u": float(i % 5), "v": float(i % 11) - 3}
            for i in range(100)
        ]
        topology = inline_topology(
            tmp_path, workers=3, key_field="id", shed_after_s=None
        )
        topology.start()
        topology.submit_many(states)
        report = topology.stop()
        expected = reference_masks(registry, states, report.names)
        assert [report.flags_by_seq()[i] for i in range(100)] == expected


class TestDeploy:
    def test_torn_deploy_loses_and_duplicates_nothing(self, tmp_path):
        """Snapshot swapped mid-stream: every event evaluated exactly once,

        and every event submitted after the publish is evaluated by the
        new version (its result row carries the new deploy serial)."""
        registry = make_registry()
        states = list(
            synthesize_states(registry, LoadProfile(events=200, seed=3))
        )
        topology = inline_topology(tmp_path, workers=2, shed_after_s=None)
        topology.start()
        topology.submit_many(states[:100])
        registry.register(
            Detector(Comparison("v", ">", 0.5), name="hi"),
            lint_policy="off",
        )  # hi@v2
        serial = topology.publish(registry)
        topology.submit_many(states[100:])
        report = topology.stop()
        assert report.accounted and report.processed == 200
        seqs = sorted(int(s) for s in report.seqs)
        assert seqs == list(range(200))  # no loss, no duplicates
        by_seq = {int(s): int(ser) for s, ser in zip(report.seqs, report.serials)}
        assert all(by_seq[seq] == serial for seq in range(100, 200))
        # Post-publish flags follow the *new* predicate.
        expected = reference_masks(registry, states[100:], report.names)
        got = report.flags_by_seq()
        assert [got[100 + i] for i in range(100)] == expected

    def test_rollback_under_load(self, tmp_path):
        registry = make_registry()
        registry.register(
            Detector(Comparison("v", ">", -100.0), name="hi"),
            lint_policy="off",
        )  # hi@v2 flags nearly everything
        states = list(
            synthesize_states(registry, LoadProfile(events=120, seed=4))
        )
        topology = inline_topology(tmp_path, registry=registry, workers=2,
                                   shed_after_s=None)
        topology.start()
        topology.submit_many(states[:60])
        topology.rollback("hi")
        topology.submit_many(states[60:])
        report = topology.stop()
        assert report.accounted
        # After rollback the workers serve hi@v1 again.
        rolled = DetectorRegistry.load(topology.snapshot_path, check=False)
        assert rolled.lookup("hi").version == 1
        for summary in report.workers:
            assert summary["versions"]["hi"] == 1
        bit = report.names.index("hi")
        engine = StreamingEngine.from_registry(rolled, check=False)
        got = report.flags_by_seq()
        for offset, result in enumerate(
            engine.evaluate_stream(states[60:], batch_size=16)
        ):
            for i in range(result.size):
                seq = 60 + offset * 16 + i
                assert ((got[seq] >> bit) & 1) == int(result.flags["hi"][i])

    def test_deploy_needing_unknown_variable_is_refused(self, tmp_path):
        registry = make_registry()
        topology = inline_topology(tmp_path, workers=1, shed_after_s=None)
        topology.start()
        registry.register(
            Detector(Comparison("zz_new", ">", 0.0), name="hi"),
            lint_policy="off",
        )  # hi@v2 reads outside the topology's ring schema
        topology.publish(registry)
        topology.submit({"v": 10.0})
        report = topology.stop()
        summary = report.workers[0]
        assert summary["versions"]["hi"] == 1  # old version kept serving
        assert any("zz_new" in reason for reason in summary["deploy_skipped"])
        bit = report.names.index("hi")
        assert (report.masks[0] >> bit) & 1  # v1 still flags v > 5


class TestAccounting:
    def test_shedding_is_counted_never_silent(self, tmp_path):
        # One worker with a modeled downstream cost and a tiny ring:
        # the router's bounded wait expires and the overflow is shed.
        topology = inline_topology(
            tmp_path,
            workers=1,
            capacity=4,
            batch_size=4,
            shed_after_s=0.0,  # shed immediately on a full ring
            worker_cost_s=0.0,
        )
        topology.start()
        # Bypass the drain hook to fill the ring: submit without the
        # inline pump by stuffing the ring directly via the router.
        topology.router.drain_hook = None
        for i in range(32):
            topology.submit({"v": float(i)})
        topology.router.flush()
        topology.router.drain_hook = topology._pump
        report = topology.stop()
        assert report.shed > 0
        assert report.processed + report.shed == report.submitted == 32
        assert sum(report.shed_by_shard) == report.shed
        # Shed events are absent from results, not flagged as anything.
        assert len(report.seqs) == report.processed

    def test_slo_shed_violation_surfaces(self, tmp_path):
        registry = make_registry()
        topology = ServingTopology.from_registry(
            registry,
            tmp_path / "snapshot.json",
            ServeConfig(workers=1, capacity=4, batch_size=4,
                        shed_after_s=0.0),
            inline=True,
            slo=SLOPolicy(max_shed_ratio=0.0),
        )
        topology.start()
        topology.router.drain_hook = None
        for i in range(32):
            topology.submit({"v": float(i)})
        topology.router.flush()
        topology.router.drain_hook = topology._pump
        report = topology.stop()
        assert report.slo is not None and not report.slo.ok
        assert any(v.clause == "shed ratio" for v in report.slo.violations)

    def test_metrics_merge_across_workers(self, tmp_path):
        topology = inline_topology(tmp_path, workers=4, shed_after_s=None)
        topology.start()
        registry = make_registry()
        states = list(
            synthesize_states(registry, LoadProfile(events=200, seed=5))
        )
        topology.submit_many(states)
        report = topology.stop()
        merged = report.metrics.report()
        # Every evaluation by every worker lands in the aggregate:
        # 3 detectors x 200 events.
        assert merged["totals"]["evaluations"] == 3 * 200
        per_worker = [
            s["metrics"]["stats"] for s in report.workers if "metrics" in s
        ]
        batches = sum(
            spec["batches"] for stats in per_worker for spec in stats
        )
        assert merged["totals"]["batches"] == batches
        # Detections in the merged metrics equal detections in the masks.
        for name, count in report.detections().items():
            assert merged["detectors"][name]["detections"] == count


class TestReport:
    def test_report_to_dict_is_json(self, tmp_path):
        topology = inline_topology(tmp_path, workers=2, shed_after_s=None)
        topology.start()
        topology.submit({"v": 10.0, "u": 1.0, "w": 1.0})
        report = topology.stop()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["accounted"] is True
        assert payload["submitted"] == 1
        assert set(payload["detections"]) == {"hi", "lo", "mix"}

    def test_stop_is_idempotent(self, tmp_path):
        topology = inline_topology(tmp_path, workers=1, shed_after_s=None)
        topology.start()
        topology.submit({"v": 1.0})
        assert topology.stop() is topology.stop()

    def test_too_many_detectors_refused(self, tmp_path):
        registry = DetectorRegistry(lint_policy="off")
        for i in range(64):
            registry.register(
                Detector(Comparison("v", ">", float(i)), name=f"d{i:03d}")
            )
        path = tmp_path / "snapshot.json"
        publish_snapshot(registry, path)
        with pytest.raises(ValueError, match="at most 63"):
            ServingTopology(path, ServeConfig(workers=1))


class TestLoadgen:
    def test_stream_is_deterministic(self):
        registry = make_registry()
        profile = LoadProfile(events=50, seed=9)
        first = list(synthesize_states(registry, profile))
        second = list(synthesize_states(registry, profile))
        assert first == second

    def test_stream_exercises_both_branches(self):
        registry = make_registry()
        states = list(
            synthesize_states(registry, LoadProfile(events=400, seed=0))
        )
        engine = StreamingEngine.from_registry(registry, check=False)
        result = engine.evaluate_batch(states)
        for name, flagged in result.flags.items():
            assert 0 < int(flagged.sum()) < len(states), name

    def test_missing_fraction_drops_variables(self):
        registry = make_registry()
        states = list(
            synthesize_states(
                registry,
                LoadProfile(events=200, seed=1, missing_fraction=0.5),
            )
        )
        assert any(len(s) < 3 for s in states)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LoadProfile(events=-1)
        with pytest.raises(ValueError):
            LoadProfile(hot_fraction=1.5)

"""Multi-process serving: real workers, real shared memory, real deploys.

These run the production topology shape (forked evaluator processes)
end to end.  They are kept small -- correctness of the evaluation
plane is established by the inline differential tests, which execute
the identical worker code; what only a real process tree can show is
lifecycle: attach/detach, stop/join, summary hand-back, deploys
observed across a process boundary, and spans journaled from workers.
"""

import json
import pathlib

from repro import observability as obs
from repro.core.detector import Detector
from repro.core.predicate import Comparison
from repro.observability.journal import TraceJournal
from repro.observability.names import (
    SERVE_DEPLOY,
    SERVE_FLUSH,
    SERVE_PUBLISH,
    SERVE_WORKER,
    SERVE_WORKER_BATCH,
)
from repro.runtime.engine import StreamingEngine
from repro.runtime.registry import DetectorRegistry
from repro.serving import (
    LoadProfile,
    ServeConfig,
    ServingTopology,
    synthesize_states,
)


def make_registry() -> DetectorRegistry:
    registry = DetectorRegistry(lint_policy="off")
    registry.register(Detector(Comparison("v", ">", 5.0), name="hi"))
    registry.register(Detector(Comparison("w", "<=", 0.0), name="lo"))
    return registry


def test_end_to_end_matches_single_engine(tmp_path):
    registry = make_registry()
    states = list(synthesize_states(registry, LoadProfile(events=300, seed=7)))
    topology = ServingTopology.from_registry(
        registry,
        tmp_path / "snapshot.json",
        ServeConfig(workers=2, capacity=64, batch_size=16, shed_after_s=None),
    )
    topology.start()
    topology.submit_many(states)
    report = topology.stop()
    assert report.accounted and report.processed == 300 and report.shed == 0
    engine = StreamingEngine.from_registry(registry, check=False)
    result = engine.evaluate_batch(states)
    got = report.flags_by_seq()
    for i in range(300):
        expected = sum(
            int(result.flags[name][i]) << bit
            for bit, name in enumerate(report.names)
        )
        assert got[i] == expected
    # Both workers actually served, and their summaries merged.
    assert sorted(w["shard"] for w in report.workers) == [0, 1]
    assert all(w["processed"] > 0 for w in report.workers)
    assert report.metrics.report()["totals"]["evaluations"] == 2 * 300


def test_hot_deploy_under_load_with_spans(tmp_path):
    """The acceptance demo: deploy + rollback under live load, traced."""
    trace_path = tmp_path / "trace.jsonl"
    registry = make_registry()
    states = list(synthesize_states(registry, LoadProfile(events=300, seed=8)))
    with obs.tracing_to(trace_path):
        topology = ServingTopology.from_registry(
            registry,
            tmp_path / "snapshot.json",
            ServeConfig(workers=2, capacity=64, batch_size=16,
                        shed_after_s=None),
        )
        topology.start()
        topology.submit_many(states[:100])
        registry.register(
            Detector(Comparison("v", ">", 0.0), name="hi"),
            lint_policy="off",
        )  # hi@v2
        serial_v2 = topology.publish(registry)
        topology.submit_many(states[100:200])
        # Settle before the next deploy: an in-flight event is only
        # guaranteed *at least* the serial live when it was submitted,
        # so draining here pins the middle segment to serial_v2.
        topology.drain()
        serial_v1 = topology.rollback("hi")
        topology.submit_many(states[200:])
        report = topology.stop()
    assert report.accounted and report.processed == 300
    by_seq = {int(s): int(ser) for s, ser in zip(report.seqs, report.serials)}
    assert all(by_seq[seq] == serial_v2 for seq in range(100, 200))
    assert all(by_seq[seq] == serial_v1 for seq in range(200, 300))
    for summary in report.workers:
        # A worker that came up after the first publish folds it into
        # its initial load, so it sees one hot deploy, not two; either
        # way it must end rolled back on the final serial.
        assert 1 <= summary["deploys"] <= 2
        assert summary["versions"]["hi"] == 1  # rolled back
        assert summary["serial"] == serial_v1
    # Spans cover the whole swap: supervisor-side publishes and
    # worker-side deploy/batch/lifecycle spans from both processes.
    spans, _, _ = TraceJournal(trace_path).load()
    names = [span.name for span in spans]
    assert names.count(SERVE_PUBLISH) == 2
    assert SERVE_FLUSH in names
    deploy_spans = [s for s in spans if s.name == SERVE_DEPLOY]
    assert {s.attributes["serial"] for s in deploy_spans} <= {
        serial_v2, serial_v1
    }
    # Every shard swapped to the rollback serial under load, traced.
    assert {
        s.attributes["shard"]
        for s in deploy_spans
        if s.attributes["serial"] == serial_v1
    } == {0, 1}
    worker_pids = {s.pid for s in spans if s.name == SERVE_WORKER_BATCH}
    assert len(worker_pids) == 2  # batches traced from both workers
    assert {s.pid for s in spans if s.name == SERVE_WORKER} == worker_pids


def test_externally_published_snapshot_is_picked_up(tmp_path):
    """Deploys don't need the supervisor: the stat poll finds them."""
    snapshot = tmp_path / "snapshot.json"
    registry = make_registry()
    topology = ServingTopology.from_registry(
        registry,
        snapshot,
        ServeConfig(workers=1, capacity=64, batch_size=8,
                    shed_after_s=None, deploy_poll_s=0.0),
    )  # deploy_poll_s=0: stat the snapshot every step (deterministic)
    topology.start()
    topology.submit_many({"v": float(i)} for i in range(50))
    topology.drain()  # worker is definitely up and serving serial 1
    # An external deploy pipeline rewrites the snapshot file directly;
    # no epoch bump, only mtime/inode change.
    registry.register(
        Detector(Comparison("v", ">", -1.0), name="hi"), lint_policy="off"
    )
    from repro.serving.supervisor import publish_snapshot

    publish_snapshot(registry, snapshot)
    topology.submit_many({"v": float(i)} for i in range(400))
    report = topology.stop()
    assert report.accounted
    assert report.workers[0]["deploys"] == 1
    assert report.workers[0]["versions"]["hi"] == 2
    assert report.workers[0]["serial"] == 2
    # Every post-publish event was evaluated by the external deploy.
    by_seq = {int(s): int(ser) for s, ser in zip(report.seqs, report.serials)}
    assert all(by_seq[seq] == 2 for seq in range(50, 450))


def test_worker_summary_written_and_cleaned(tmp_path):
    topology = ServingTopology.from_registry(
        make_registry(),
        tmp_path / "snapshot.json",
        ServeConfig(workers=1, capacity=32, batch_size=8, shed_after_s=None),
    )
    topology.start()
    summary_dir = pathlib.Path(topology._summary_dir.name)
    topology.submit({"v": 9.0, "w": 1.0})
    report = topology.stop()
    payload = report.workers[0]
    assert payload["processed"] == 1
    assert json.dumps(payload)  # plain JSON through the file hand-back
    assert not summary_dir.exists()  # temp dir cleaned on stop

"""ServeConfig validation/roundtrip and SLO evaluation."""

import json

import pytest

from repro.runtime.metrics import RuntimeMetrics
from repro.serving.config import ServeConfig
from repro.serving.slo import SLOPolicy, evaluate_slo


class TestServeConfig:
    def test_defaults_are_bounded(self):
        config = ServeConfig()
        assert config.bounded
        assert config.shed_after_s > 0

    def test_unbounded_is_explicit(self):
        assert not ServeConfig(shed_after_s=None).bounded

    @pytest.mark.parametrize(
        "field, value",
        [
            ("workers", 0),
            ("capacity", 0),
            ("batch_size", 0),
            ("shed_after_s", -1.0),
            ("poll_interval_s", 0.0),
            ("worker_cost_s", -0.1),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ServeConfig(**{field: value})

    def test_roundtrip(self):
        config = ServeConfig(workers=4, capacity=256, key_field="id")
        payload = json.loads(json.dumps(config.to_dict()))
        assert payload["format"] == "repro.serving.config"
        assert ServeConfig.from_dict(payload) == config

    def test_from_dict_rejects_other_formats(self):
        with pytest.raises(ValueError):
            ServeConfig.from_dict({"format": "something-else"})


def metrics_with(name: str, batches: int, seconds: float, faults: int = 0):
    metrics = RuntimeMetrics()
    stats = metrics.stats_for(name)
    for _ in range(batches):
        stats.record_batch(10, 1, seconds)
    for _ in range(faults):
        stats.record_fault()
    return metrics


class TestSLO:
    def test_within_budget(self):
        report = evaluate_slo(
            metrics_with("d", 100, 0.001),
            SLOPolicy(p99_s=0.01),
            submitted=1000,
            shed=0,
        )
        assert report.ok
        assert report.violations == []
        assert "d" in report.detectors

    def test_latency_violation_names_the_detector(self):
        report = evaluate_slo(
            metrics_with("slow", 100, 0.5),
            SLOPolicy(p99_s=0.01, max_fault_ratio=None),
        )
        assert not report.ok
        assert report.violations[0].subject == "slow"
        assert "p99" in report.violations[0].clause
        assert report.violations[0].measured > 0.01

    def test_fault_ratio_violation(self):
        report = evaluate_slo(
            metrics_with("flaky", 50, 0.001, faults=50),
            SLOPolicy(max_fault_ratio=0.1),
        )
        assert [v.clause for v in report.violations] == ["fault ratio"]
        assert report.violations[0].measured == pytest.approx(0.5)

    def test_shed_ratio_is_topology_wide(self):
        report = evaluate_slo(
            metrics_with("d", 10, 0.001),
            SLOPolicy(max_shed_ratio=0.01),
            submitted=1000,
            shed=100,
        )
        assert [v.subject for v in report.violations] == ["topology"]
        assert report.shed_ratio == pytest.approx(0.1)

    def test_zero_shed_budget_allows_zero_shed(self):
        report = evaluate_slo(
            metrics_with("d", 10, 0.001),
            SLOPolicy(max_shed_ratio=0.0),
            submitted=1000,
            shed=0,
        )
        assert report.ok

    def test_orchestration_bookkeeping_excluded(self):
        metrics = metrics_with("orchestration.pool", 10, 99.0)
        report = evaluate_slo(metrics, SLOPolicy(p99_s=0.001))
        assert report.ok
        assert report.detectors == {}

    def test_report_is_json_exportable(self):
        report = evaluate_slo(
            metrics_with("d", 10, 0.5),
            SLOPolicy(p50_s=0.001, max_fault_ratio=None),
            submitted=10,
            shed=1,
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is False
        assert payload["violations"][0]["clause"] == "latency p50"
        assert payload["shed_ratio"] == pytest.approx(0.1)

"""SharedRing protocol: cursors, wraparound, zero-copy views, flags.

Ring views are *borrowed*: the shared-memory mapping cannot unmap
while a view is alive, so every test copies what it needs out of the
peek and drops the views before touching cursors or closing -- the
same discipline the router/worker hot paths follow.
"""

import numpy as np
import pytest

from repro.serving.ring import RingSpec, SharedRing


def make_batch(start: int, n: int, width: int):
    rows = np.arange(start, start + n * width, dtype=np.float64)
    rows = rows.reshape(n, width) if width else np.zeros((n, 0))
    meta = np.arange(start, start + n, dtype=np.int64).reshape(n, 1)
    return rows, meta


def peek_copy(ring, max_n):
    """Copy out of a peek so no borrowed view outlives the call."""
    rows, meta = ring.peek(max_n)
    out = (rows.copy(), meta.copy())
    del rows, meta
    return out


class TestLifecycle:
    def test_create_validates(self):
        with pytest.raises(ValueError):
            SharedRing.create(0, 4)
        with pytest.raises(ValueError):
            SharedRing.create(8, -1)
        with pytest.raises(ValueError):
            SharedRing.create(8, 4, meta=0)

    def test_attach_shares_state(self):
        with SharedRing.create(8, 2) as ring:
            rows, meta = make_batch(0, 3, 2)
            ring.push(rows, meta)
            twin = SharedRing.attach(ring.spec)
            assert twin.pending == 3
            got_rows, got_meta = peek_copy(twin, 8)
            np.testing.assert_array_equal(got_rows, rows)
            np.testing.assert_array_equal(got_meta, meta)
            twin.advance(2)
            assert ring.pending == 1  # cursors live in shared memory
            twin.close()

    def test_close_is_idempotent_and_owner_unlinks(self):
        ring = SharedRing.create(4, 1)
        spec = ring.spec
        ring.close()
        ring.close()
        with pytest.raises(FileNotFoundError):
            SharedRing.attach(spec)

    def test_spec_is_picklable(self):
        import pickle

        spec = RingSpec("x", 8, 2, 1)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestCursors:
    def test_push_peek_advance_roundtrip(self):
        with SharedRing.create(8, 3) as ring:
            assert (ring.pending, ring.free) == (0, 8)
            rows, meta = make_batch(0, 5, 3)
            assert ring.push(rows, meta) == 5
            assert (ring.pending, ring.free) == (5, 3)
            got_rows, got_meta = peek_copy(ring, 2)
            assert len(got_meta) == 2
            np.testing.assert_array_equal(got_rows, rows[:2])
            ring.advance(2)
            assert (ring.pending, ring.free) == (3, 5)

    def test_push_is_bounded_by_free(self):
        with SharedRing.create(4, 1) as ring:
            rows, meta = make_batch(0, 6, 1)
            assert ring.push(rows, meta) == 4  # partial push
            assert ring.push(rows[4:], meta[4:]) == 0  # full ring
            _, got = peek_copy(ring, 4)
            np.testing.assert_array_equal(got[:, 0], [0, 1, 2, 3])
            ring.advance(1)
            assert ring.push(rows[4:], meta[4:]) == 1

    def test_cursors_are_monotonic_across_wraparound(self):
        with SharedRing.create(4, 1) as ring:
            total = 0
            for _ in range(10):
                rows, meta = make_batch(total, 3, 1)
                pushed = ring.push(rows, meta)
                seen = 0
                while seen < pushed:
                    _, got = peek_copy(ring, 4)
                    n = len(got)
                    np.testing.assert_array_equal(
                        got[:, 0], np.arange(total + seen, total + seen + n)
                    )
                    ring.advance(n)
                    seen += n
                total += pushed
            assert ring.written == ring.read == total == 30

    def test_wrapped_batch_is_split_not_lost(self):
        with SharedRing.create(4, 2) as ring:
            rows, meta = make_batch(0, 3, 2)
            ring.push(rows, meta)
            ring.advance(3)
            # Read cursor at 3: the next push of 3 wraps 3->4 and 0->2.
            rows, meta = make_batch(10, 3, 2)
            assert ring.push(rows, meta) == 3
            _, first = peek_copy(ring, 8)
            assert len(first) == 1  # contiguous tail segment only
            assert first[0, 0] == 10
            ring.advance(1)
            _, second = peek_copy(ring, 8)
            np.testing.assert_array_equal(second[:, 0], [11, 12])
            ring.advance(2)

    def test_peek_is_zero_copy(self):
        with SharedRing.create(8, 2) as ring:
            rows, meta = make_batch(0, 2, 2)
            ring.push(rows, meta)
            view, meta_view = ring.peek(2)
            try:
                assert view.base is not None  # a view, not a copy
                # Writing through the ring is visible in the view:
                # proof the evaluator reads ring memory directly.
                ring._rows[0, 0] = 99.0
                assert view[0, 0] == 99.0
            finally:
                del view, meta_view

    def test_advance_validates(self):
        with SharedRing.create(4, 1) as ring:
            with pytest.raises(ValueError):
                ring.advance(1)
            with pytest.raises(ValueError):
                ring.advance(-1)


class TestWidthZero:
    """Result rings carry metadata only."""

    def test_push_counts_by_meta(self):
        with SharedRing.create(4, 0, meta=3) as ring:
            meta = np.arange(9, dtype=np.int64).reshape(3, 3)
            assert ring.push(None, meta) == 3
            _, got = peek_copy(ring, 4)
            np.testing.assert_array_equal(got, meta)


class TestControlFlags:
    def test_stop_flag(self):
        with SharedRing.create(4, 1) as ring:
            assert not ring.stopped
            twin = SharedRing.attach(ring.spec)
            ring.request_stop()
            assert twin.stopped
            twin.close()

    def test_epoch_is_shared_and_monotonic(self):
        with SharedRing.create(4, 1) as ring:
            twin = SharedRing.attach(ring.spec)
            assert twin.epoch == 0
            assert ring.bump_epoch() == 1
            assert ring.bump_epoch() == 2
            assert twin.epoch == 2
            twin.close()

"""Router semantics: stable sharding, micro-batching, counted shedding."""

import numpy as np
import pytest

from repro.runtime.pack import build_index
from repro.serving.config import ServeConfig
from repro.serving.ring import SharedRing
from repro.serving.router import ShardRouter, shard_of


class TestShardOf:
    def test_integers_shard_by_value(self):
        assert [shard_of(i, 4) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert shard_of(np.int64(7), 4) == 3

    def test_strings_are_stable(self):
        # CRC32 is seedless: the mapping must never change between
        # runs (a new interpreter would re-salt builtin hash()).
        assert shard_of("sensor-a", 4) == shard_of("sensor-a", 4)
        mapping = {key: shard_of(key, 16) for key in ("a", "b", "c", "d")}
        assert mapping == {
            key: shard_of(key, 16) for key in ("a", "b", "c", "d")
        }

    def test_spreads_keys(self):
        shards = {shard_of(f"key-{i}", 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_validates(self):
        with pytest.raises(ValueError):
            shard_of(1, 0)


def make_router(shards=2, capacity=32, batch_size=4, **kwargs):
    config = ServeConfig(
        workers=shards, capacity=capacity, batch_size=batch_size, **kwargs
    )
    rings = [
        SharedRing.create(capacity, 2, 1) for _ in range(shards)
    ]
    index = build_index(["u", "v"])
    return ShardRouter(rings, index, config), rings


def drain(ring):
    total = []
    while True:
        rows, meta = ring.peek(ring.capacity)
        if not len(meta):
            return total
        total.extend(int(s) for s in meta[:, 0])
        n = len(meta)
        del rows, meta
        ring.advance(n)


class TestRouting:
    def test_batches_flush_at_batch_size(self):
        router, rings = make_router(shards=1, batch_size=4)
        try:
            for i in range(3):
                router.submit({"v": float(i)})
            assert rings[0].pending == 0  # below the batch threshold
            router.submit({"v": 3.0})
            assert rings[0].pending == 4
            router.submit({"v": 4.0})
            router.flush()
            assert rings[0].pending == 5
            assert drain(rings[0]) == [0, 1, 2, 3, 4]
        finally:
            for ring in rings:
                ring.close()

    def test_default_key_round_robins_sequences(self):
        router, rings = make_router(shards=2, batch_size=2)
        try:
            for i in range(8):
                router.submit({"v": float(i)})
            router.flush()
            assert drain(rings[0]) == [0, 2, 4, 6]
            assert drain(rings[1]) == [1, 3, 5, 7]
        finally:
            for ring in rings:
                ring.close()

    def test_key_field_groups_events(self):
        router, rings = make_router(shards=2, batch_size=1, key_field="id")
        try:
            for i in range(6):
                router.submit({"id": "same-device", "v": float(i)})
            router.flush()
            shard = shard_of("same-device", 2)
            assert drain(rings[shard]) == [0, 1, 2, 3, 4, 5]
            assert drain(rings[1 - shard]) == []
        finally:
            for ring in rings:
                ring.close()

    def test_packed_rows_follow_index(self):
        router, rings = make_router(shards=1, batch_size=1)
        try:
            router.submit({"u": 1.5, "v": 2.5})
            router.submit({"v": 7.0})  # u missing -> NaN
            view, meta_view = rings[0].peek(4)
            rows = view.copy()
            del view, meta_view  # borrowed views must not outlive close
            iu, iv = router.index["u"], router.index["v"]
            assert rows[0, iu] == 1.5 and rows[0, iv] == 2.5
            assert np.isnan(rows[1, iu]) and rows[1, iv] == 7.0
        finally:
            for ring in rings:
                ring.close()


class TestBackpressure:
    def test_full_ring_sheds_after_budget(self):
        # No consumer: a full ring must shed the remainder, counted.
        router, rings = make_router(
            shards=1, capacity=8, batch_size=4,
            shed_after_s=0.01, poll_interval_s=0.001,
        )
        try:
            for i in range(16):
                router.submit({"v": float(i)})
            assert router.submitted == 16
            assert router.pushed[0] == 8
            assert router.shed[0] == 8
            assert router.total_shed == 8
            # Invariant the supervisor asserts: nothing silently lost.
            assert router.pushed[0] + router.total_shed == router.submitted
        finally:
            for ring in rings:
                ring.close()

    def test_drain_hook_avoids_shedding(self):
        config = ServeConfig(
            workers=1, capacity=4, batch_size=4,
            shed_after_s=0.05, poll_interval_s=0.001,
        )
        ring = SharedRing.create(4, 2, 1)
        consumed = []

        def hook():
            consumed.extend(drain(ring))

        router = ShardRouter([ring], build_index(["u", "v"]), config,
                             drain_hook=hook)
        try:
            for i in range(32):
                router.submit({"v": float(i)})
            router.flush()
            consumed.extend(drain(ring))
            assert router.total_shed == 0
            assert consumed == list(range(32))
        finally:
            ring.close()

"""Unit and property tests for C4.5 decision tree induction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.dataset import Attribute, Dataset
from repro.mining.tree import C45DecisionTree, render_tree, tree_to_rules
from repro.mining.tree.induction import _entropy, _entropy_rows, _threshold_between
from repro.mining.tree.node import DecisionNode, LeafNode
from tests.conftest import make_mixed, make_separable


class TestEntropy:
    def test_pure_is_zero(self):
        assert _entropy(np.array([10.0, 0.0])) == 0.0

    def test_uniform_binary_is_one(self):
        assert _entropy(np.array([5.0, 5.0])) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert _entropy(np.array([0.0, 0.0])) == 0.0

    def test_rows_matches_scalar(self):
        counts = np.array([[3.0, 1.0], [5.0, 5.0], [0.0, 4.0]])
        rows = _entropy_rows(counts)
        for i in range(3):
            assert rows[i] == pytest.approx(_entropy(counts[i]))

    @given(
        a=st.floats(0, 1000, allow_nan=False),
        b=st.floats(0, 1000, allow_nan=False),
    )
    def test_entropy_bounds_binary(self, a, b):
        assert 0.0 <= _entropy(np.array([a, b])) <= 1.0 + 1e-9


class TestThresholdBetween:
    def test_normal_midpoint(self):
        assert _threshold_between(1.0, 2.0) == 1.5

    def test_adjacent_floats_fall_back_to_lo(self):
        lo = 1.0
        hi = math.nextafter(lo, math.inf)
        t = _threshold_between(lo, hi)
        assert lo <= t < hi

    def test_huge_magnitudes_no_overflow(self):
        t = _threshold_between(1e308, 1.7e308)
        assert math.isfinite(t)
        assert 1e308 <= t < 1.7e308

    @given(
        lo=st.floats(-1e300, 1e300, allow_nan=False),
        delta=st.floats(1e-12, 1e300, allow_nan=False),
    )
    def test_threshold_strictly_separates(self, lo, delta):
        hi = lo + delta
        if hi == lo or not math.isfinite(hi):
            return
        t = _threshold_between(lo, hi)
        assert lo <= t < hi


class TestFitting:
    def test_learns_separable_concept(self):
        ds = make_separable()
        tree = C45DecisionTree().fit(ds)
        assert (tree.predict(ds.x) == ds.y).mean() == 1.0
        # Two axis-aligned cuts suffice: tree should stay small.
        assert tree.node_count <= 9

    def test_empty_dataset_rejected(self, separable_dataset):
        empty = separable_dataset.subset(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            C45DecisionTree().fit(empty)

    def test_pure_dataset_gives_single_leaf(self, separable_dataset):
        pure = separable_dataset.subset(separable_dataset.y == 0)
        tree = C45DecisionTree().fit(pure)
        assert isinstance(tree.root, LeafNode)
        assert tree.node_count == 1

    def test_nominal_attributes(self):
        ds = make_mixed()
        tree = C45DecisionTree().fit(ds)
        assert (tree.predict(ds.x) == ds.y).mean() >= 0.97

    def test_constant_attributes_yield_leaf(self):
        ds = Dataset(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            np.ones((20, 1)),
            np.array([0, 1] * 10),
        )
        tree = C45DecisionTree().fit(ds)
        assert isinstance(tree.root, LeafNode)

    def test_max_depth_cap(self):
        ds = make_separable(noise=0.05)
        tree = C45DecisionTree(max_depth=1, prune=False).fit(ds)
        assert tree.depth <= 1

    def test_min_leaf_weight_respected(self):
        ds = make_separable()
        tree = C45DecisionTree(min_leaf_weight=50).fit(ds)

        def check(node):
            if isinstance(node, LeafNode):
                return
            for weight, child in zip(node.branch_weights, node.children):
                # Only branches that received instances are constrained.
                if weight > 0:
                    assert weight >= 50 or isinstance(child, LeafNode)
                check(child)

        check(tree.root)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            C45DecisionTree(min_leaf_weight=0)
        with pytest.raises(ValueError):
            C45DecisionTree(confidence_factor=0.0)
        with pytest.raises(ValueError):
            C45DecisionTree(max_depth=-1)

    def test_predict_before_fit_raises(self):
        from repro.mining.base import NotFittedError

        with pytest.raises(NotFittedError):
            C45DecisionTree().predict(np.zeros((1, 2)))

    def test_instance_weights_shift_decision(self):
        # All-equal instances with conflicting labels: prediction
        # follows the heavier class.
        x = np.zeros((10, 1))
        y = np.array([0] * 5 + [1] * 5)
        w = np.array([1.0] * 5 + [3.0] * 5)
        ds = Dataset(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            x,
            y,
            weights=w,
        )
        tree = C45DecisionTree().fit(ds)
        assert tree.predict_one(np.array([0.0])) == 1

    def test_extreme_magnitudes_do_not_crash(self):
        rng = np.random.default_rng(5)
        x = np.concatenate([rng.normal(0, 1, 50), [1e308, -1e308, 1e-300]])
        y = np.array([0] * 50 + [1, 1, 0])
        ds = Dataset(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            x.reshape(-1, 1),
            y,
        )
        tree = C45DecisionTree().fit(ds)
        assert tree.node_count >= 1


class TestMissingValues:
    def test_missing_values_in_training(self):
        ds = make_separable(n=200)
        x = ds.x.copy()
        x[::7, 0] = np.nan
        tree = C45DecisionTree().fit(ds.replace(x=x))
        accuracy = (tree.predict(x) == ds.y).mean()
        assert accuracy >= 0.9

    def test_missing_value_prediction_blends(self):
        ds = make_separable()
        tree = C45DecisionTree().fit(ds)
        dist = tree.distribution(np.array([[np.nan, np.nan]]))[0]
        assert dist.sum() == pytest.approx(1.0)
        # Blended distribution should reflect the majority class.
        assert dist[0] > dist[1]

    def test_all_missing_column_never_split(self):
        ds = make_separable(n=100)
        x = np.column_stack([ds.x, np.full(len(ds), np.nan)])
        ds2 = Dataset(
            list(ds.attributes) + [Attribute.numeric("allnan")],
            ds.class_attribute,
            x,
            ds.y,
        )
        tree = C45DecisionTree().fit(ds2)

        def attrs(node):
            if isinstance(node, LeafNode):
                return set()
            out = {node.attribute.name}
            for child in node.children:
                out |= attrs(child)
            return out

        assert "allnan" not in attrs(tree.root)


class TestDistribution:
    def test_rows_sum_to_one(self, separable_dataset):
        tree = C45DecisionTree().fit(separable_dataset)
        dist = tree.distribution(separable_dataset.x[:25])
        assert np.allclose(dist.sum(axis=1), 1.0)

    def test_predict_is_argmax(self, separable_dataset):
        tree = C45DecisionTree().fit(separable_dataset)
        dist = tree.distribution(separable_dataset.x[:25])
        assert np.array_equal(
            tree.predict(separable_dataset.x[:25]), np.argmax(dist, axis=1)
        )


class TestExport:
    def test_render_contains_attributes(self, separable_dataset):
        tree = C45DecisionTree().fit(separable_dataset)
        text = render_tree(tree.root, separable_dataset.class_attribute.values)
        assert "v1" in text
        assert "fail" in text

    def test_rules_cover_every_leaf(self, separable_dataset):
        tree = C45DecisionTree().fit(separable_dataset)
        rules = tree_to_rules(tree.root, separable_dataset.class_attribute.values)
        assert len(rules) == tree.leaf_count

    def test_rules_partition_instance_space(self, separable_dataset):
        """Exactly one rule fires for any fully-observed instance."""
        tree = C45DecisionTree().fit(separable_dataset)
        rules = tree_to_rules(tree.root, separable_dataset.class_attribute.values)
        for row in separable_dataset.x[:50]:
            fired = 0
            for rule in rules:
                ok = all(
                    (row[c.attribute_index] <= c.value)
                    if c.op == "<="
                    else (row[c.attribute_index] > c.value)
                    for c in rule.conditions
                )
                fired += ok
            assert fired == 1


class TestNodeInvariants:
    def test_node_validation(self):
        attr = Attribute.numeric("v")
        with pytest.raises(ValueError):
            DecisionNode(
                class_weights=np.array([1.0, 1.0]),
                attribute=attr,
                attribute_index=0,
                threshold=None,  # numeric requires threshold
                children=[LeafNode(np.array([1.0, 0.0]))] * 2,
                branch_weights=np.array([1.0, 1.0]),
            )

    def test_counts(self, separable_dataset):
        tree = C45DecisionTree().fit(separable_dataset)
        assert tree.node_count == tree.root.node_count()
        assert tree.leaf_count <= tree.node_count
        assert tree.depth >= 1


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 10_000), noise=st.floats(0, 0.3))
def test_fit_never_crashes_and_beats_majority(seed, noise):
    """Property: on noisy separable data the tree at least matches the
    majority-class baseline on its own training data."""
    ds = make_separable(n=120, seed=seed, noise=noise)
    tree = C45DecisionTree().fit(ds)
    accuracy = (tree.predict(ds.x) == ds.y).mean()
    majority = ds.class_counts().max() / len(ds)
    assert accuracy >= majority - 1e-9

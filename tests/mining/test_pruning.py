"""Tests for pessimistic-error pruning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mining.tree import C45DecisionTree
from repro.mining.tree.node import LeafNode
from repro.mining.tree.pruning import (
    _normal_quantile,
    added_errors,
    pessimistic_errors,
    prune_tree,
)
from tests.conftest import make_separable


class TestNormalQuantile:
    def test_median(self):
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_known_values(self):
        assert _normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert _normal_quantile(0.75) == pytest.approx(0.674490, abs=1e-5)
        assert _normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-5)

    def test_symmetry(self):
        for p in (0.6, 0.9, 0.99, 0.999):
            assert _normal_quantile(p) == pytest.approx(
                -_normal_quantile(1 - p), abs=1e-7
            )

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            _normal_quantile(0.0)
        with pytest.raises(ValueError):
            _normal_quantile(1.0)


class TestAddedErrors:
    def test_zero_errors_formula(self):
        # e=0: N * (1 - CF^(1/N))
        n, cf = 10.0, 0.25
        assert added_errors(n, 0.0, cf) == pytest.approx(
            n * (1 - cf ** (1 / n))
        )

    def test_monotone_in_confidence(self):
        # Smaller CF = more pessimism = more added errors.
        assert added_errors(20, 3, 0.1) > added_errors(20, 3, 0.5)

    def test_all_errors_adds_nothing(self):
        assert added_errors(5, 5, 0.25) == 0.0

    def test_zero_weight_node(self):
        assert added_errors(0, 0, 0.25) == 0.0

    @given(
        n=st.floats(1, 1000),
        frac=st.floats(0, 1),
        cf=st.floats(0.01, 0.99),
    )
    def test_added_errors_nonnegative_and_bounded(self, n, frac, cf):
        e = n * frac
        extra = added_errors(n, e, cf)
        assert extra >= -1e-9
        assert e + extra <= n + 1e-6

    def test_pessimistic_errors_is_sum(self):
        assert pessimistic_errors(30, 4, 0.25) == pytest.approx(
            4 + added_errors(30, 4, 0.25)
        )


class TestPruning:
    def test_pruned_not_larger(self):
        ds = make_separable(n=300, noise=0.15)
        grown = C45DecisionTree(prune=False).fit(ds)
        pruned = C45DecisionTree(prune=True).fit(ds)
        assert pruned.node_count <= grown.node_count

    def test_noise_gets_pruned(self):
        # With heavy label noise the grown tree overfits; pruning must
        # remove a meaningful share of the nodes.
        ds = make_separable(n=400, noise=0.25)
        grown = C45DecisionTree(prune=False).fit(ds)
        pruned = C45DecisionTree(prune=True, confidence_factor=0.25).fit(ds)
        assert pruned.node_count < grown.node_count

    def test_more_confidence_less_pruning(self):
        ds = make_separable(n=400, noise=0.2)
        aggressive = C45DecisionTree(confidence_factor=0.05).fit(ds)
        lenient = C45DecisionTree(confidence_factor=0.9).fit(ds)
        assert aggressive.node_count <= lenient.node_count

    def test_prune_leaf_is_identity(self):
        leaf = LeafNode(np.array([3.0, 1.0]))
        assert prune_tree(leaf, 0.25) is leaf

    def test_pruning_preserves_root_distribution(self):
        ds = make_separable(n=300, noise=0.2)
        grown = C45DecisionTree(prune=False).fit(ds)
        total = grown.root.class_weights.copy()
        pruned = prune_tree(grown.root, 0.25)
        assert np.allclose(pruned.class_weights, total)

"""Unit tests for the dataset model."""

import math

import numpy as np
import pytest

from repro.mining.dataset import Attribute, Dataset, DatasetError


class TestAttribute:
    def test_numeric_constructor(self):
        a = Attribute.numeric("speed")
        assert a.is_numeric and not a.is_nominal
        assert a.values == ()

    def test_nominal_constructor(self):
        a = Attribute.nominal("flag", ("off", "on"))
        assert a.is_nominal
        assert a.index_of("on") == 1
        assert a.value_of(0) == "off"

    def test_nominal_requires_values(self):
        with pytest.raises(DatasetError):
            Attribute("flag", "nominal")

    def test_numeric_rejects_values(self):
        with pytest.raises(DatasetError):
            Attribute("speed", "numeric", ("a",))

    def test_duplicate_values_rejected(self):
        with pytest.raises(DatasetError):
            Attribute.nominal("flag", ("on", "on"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(DatasetError):
            Attribute("x", "ordinal")

    def test_index_of_unknown_value(self):
        a = Attribute.nominal("flag", ("off", "on"))
        with pytest.raises(DatasetError):
            a.index_of("maybe")

    def test_index_of_on_numeric_raises(self):
        with pytest.raises(DatasetError):
            Attribute.numeric("x").index_of("1")


class TestDatasetConstruction:
    def test_basic_shape(self, separable_dataset):
        assert len(separable_dataset) == 400
        assert separable_dataset.n_attributes == 2
        assert separable_dataset.n_classes == 2

    def test_class_attribute_must_be_nominal(self):
        with pytest.raises(DatasetError):
            Dataset(
                [Attribute.numeric("v")],
                Attribute.numeric("class"),
                np.zeros((1, 1)),
                np.zeros(1, int),
            )

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(
                [Attribute.numeric("v"), Attribute.numeric("v")],
                Attribute.nominal("class", ("a", "b")),
                np.zeros((1, 2)),
                np.zeros(1, int),
            )

    def test_class_name_collision_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(
                [Attribute.numeric("class")],
                Attribute.nominal("class", ("a", "b")),
                np.zeros((1, 1)),
                np.zeros(1, int),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(
                [Attribute.numeric("v")],
                Attribute.nominal("class", ("a", "b")),
                np.zeros((2, 2)),
                np.zeros(2, int),
            )

    def test_class_index_out_of_range(self):
        with pytest.raises(DatasetError):
            Dataset(
                [Attribute.numeric("v")],
                Attribute.nominal("class", ("a", "b")),
                np.zeros((1, 1)),
                np.array([5]),
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(
                [Attribute.numeric("v")],
                Attribute.nominal("class", ("a", "b")),
                np.zeros((1, 1)),
                np.zeros(1, int),
                weights=np.array([-1.0]),
            )

    def test_nominal_column_range_checked(self):
        with pytest.raises(DatasetError):
            Dataset(
                [Attribute.nominal("f", ("x", "y"))],
                Attribute.nominal("class", ("a", "b")),
                np.array([[7.0]]),
                np.zeros(1, int),
            )

    def test_default_weights_are_ones(self, separable_dataset):
        assert separable_dataset.total_weight == len(separable_dataset)


class TestFromRecords:
    def test_roundtrip_with_strings_and_missing(self):
        ds = Dataset.from_records(
            [Attribute.numeric("v"), Attribute.nominal("f", ("off", "on"))],
            Attribute.nominal("class", ("a", "b")),
            [[1.5, "on"], [None, "off"], [2.0, None]],
            ["a", "b", "a"],
        )
        assert len(ds) == 3
        assert ds.x[0, 1] == 1.0
        assert math.isnan(ds.x[1, 0])
        assert ds.decode_row(1) == [None, "off"]
        assert ds.decode_label(1) == "b"

    def test_record_length_checked(self):
        with pytest.raises(DatasetError):
            Dataset.from_records(
                [Attribute.numeric("v")],
                Attribute.nominal("class", ("a", "b")),
                [[1.0, 2.0]],
                ["a"],
            )

    def test_labels_by_index(self):
        ds = Dataset.from_records(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            [[0.0]],
            [1],
        )
        assert ds.decode_label(0) == "b"


class TestDatasetOperations:
    def test_class_counts_and_distribution(self, separable_dataset):
        counts = separable_dataset.class_counts()
        assert counts.sum() == len(separable_dataset)
        dist = separable_dataset.class_distribution()
        assert pytest.approx(dist.sum()) == 1.0

    def test_majority_class(self, imbalanced_dataset):
        assert imbalanced_dataset.majority_class() == 0

    def test_subset_by_mask(self, separable_dataset):
        mask = separable_dataset.y == 1
        sub = separable_dataset.subset(mask)
        assert len(sub) == mask.sum()
        assert (sub.y == 1).all()

    def test_concat(self, separable_dataset):
        doubled = separable_dataset.concat(separable_dataset)
        assert len(doubled) == 2 * len(separable_dataset)

    def test_concat_schema_mismatch(self, separable_dataset, mixed_dataset):
        with pytest.raises(DatasetError):
            separable_dataset.concat(mixed_dataset)

    def test_shuffled_preserves_multiset(self, separable_dataset, rng):
        shuffled = separable_dataset.shuffled(rng)
        assert sorted(shuffled.y) == sorted(separable_dataset.y)
        assert np.allclose(
            np.sort(shuffled.x[:, 0]), np.sort(separable_dataset.x[:, 0])
        )

    def test_column_lookup(self, separable_dataset):
        col = separable_dataset.column("v2")
        assert np.array_equal(col, separable_dataset.x[:, 1])
        with pytest.raises(DatasetError):
            separable_dataset.column("missing")

    def test_copy_is_independent(self, separable_dataset):
        copy = separable_dataset.copy()
        copy.x[0, 0] = 999.0
        assert separable_dataset.x[0, 0] != 999.0

    def test_with_weights(self, separable_dataset):
        w = np.full(len(separable_dataset), 2.0)
        weighted = separable_dataset.with_weights(w)
        assert weighted.total_weight == 2 * len(separable_dataset)
        assert weighted.class_weights().sum() == weighted.total_weight

    def test_empty_majority_raises(self, separable_dataset):
        empty = separable_dataset.subset(np.zeros(0, dtype=np.int64))
        with pytest.raises(DatasetError):
            empty.majority_class()


class TestDescribe:
    def test_numeric_statistics(self, separable_dataset):
        summary = {e["name"]: e for e in separable_dataset.describe()}
        v1 = summary["v1"]
        assert v1["kind"] == "numeric"
        assert v1["min"] <= v1["mean"] <= v1["max"]
        assert v1["missing"] == 0.0

    def test_nominal_counts(self, mixed_dataset):
        summary = {e["name"]: e for e in mixed_dataset.describe()}
        flag = summary["flag"]
        assert set(flag["counts"]) == {"off", "on"}
        assert sum(flag["counts"].values()) == len(mixed_dataset)

    def test_missing_fraction(self, separable_dataset):
        x = separable_dataset.x.copy()
        x[:40, 0] = np.nan
        summary = separable_dataset.replace(x=x).describe()
        assert summary[0]["missing"] == pytest.approx(0.1)

    def test_empty_dataset(self, separable_dataset):
        empty = separable_dataset.subset(np.zeros(0, dtype=np.int64))
        summary = empty.describe()
        assert len(summary) == 2

"""Equivalence properties of the vectorised mining data plane.

The presorted induction engine, the batch routing path, the kNN batch
queries and the reuse caches all carry the same hard contract: **bit
identity** with the naive reference implementations they replace.
These properties drive randomly generated datasets -- missing values,
infinities, duplicated (quantised) values, fractional instance
weights -- through both paths and compare raw bytes, plus a
fixed-seed regression pinning the Step 4 refinement ranking.
"""

import pickle

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.preprocess import PreprocessingPlan
from repro.core.refine import RefinementGrid, refine
from repro.mining.cache import clear_reuse_caches, reuse_caches_disabled
from repro.mining.crossval import stratified_folds
from repro.mining.dataset import Attribute, Dataset
from repro.mining.knn import NearestNeighbours
from repro.mining.sampling import smote
from repro.mining.tree import C45DecisionTree


@st.composite
def datasets(draw) -> Dataset:
    """Random small mixed dataset exercising the data plane's edges.

    Numeric columns mix continuous, quantised (heavy duplicate values)
    and constant flavours; cells may be NaN or +/-inf; instance
    weights may be fractional (as missing-value routing produces).
    """
    n = draw(st.integers(12, 70))
    n_numeric = draw(st.integers(1, 4))
    n_nominal = draw(st.integers(0, 2))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    attributes = []
    columns = []
    for i in range(n_numeric):
        attributes.append(Attribute.numeric(f"num{i}"))
        flavour = draw(st.sampled_from(["continuous", "quantised", "constant"]))
        if flavour == "continuous":
            column = rng.normal(0, draw(st.sampled_from([1.0, 1e6])), n)
        elif flavour == "quantised":
            column = rng.integers(0, 6, n).astype(float)
        else:
            column = np.full(n, 3.25)
        columns.append(column)
    for i in range(n_nominal):
        k = draw(st.integers(2, 4))
        attributes.append(
            Attribute.nominal(f"nom{i}", tuple(f"v{j}" for j in range(k)))
        )
        columns.append(rng.integers(0, k, n).astype(float))
    x = np.column_stack(columns)
    if draw(st.booleans()):
        x[:, :n_numeric][rng.random((n, n_numeric)) < 0.15] = np.nan
    if draw(st.booleans()):
        x[:, :n_numeric][rng.random((n, n_numeric)) < 0.05] = np.inf
        x[:, :n_numeric][rng.random((n, n_numeric)) < 0.05] = -np.inf
    y = rng.integers(0, draw(st.integers(2, 3)), n)
    y[0], y[1] = 0, 1
    weights = None
    if draw(st.booleans()):
        weights = rng.uniform(0.25, 2.0, n)
    return Dataset(
        attributes,
        Attribute.nominal("class", ("c0", "c1", "c2")),
        x,
        y,
        weights=weights,
        name="random",
    )


@given(dataset=datasets(), prune=st.booleans(), mlw=st.sampled_from([1.0, 2.0, 4.0]))
@settings(deadline=None, max_examples=60)
def test_presorted_fit_bit_identical(dataset, prune, mlw):
    naive = C45DecisionTree(engine="naive", prune=prune, min_leaf_weight=mlw)
    fast = C45DecisionTree(engine="presort", prune=prune, min_leaf_weight=mlw)
    naive.fit(dataset)
    fast.fit(dataset)
    assert pickle.dumps(naive.root) == pickle.dumps(fast.root)


@given(dataset=datasets())
@settings(deadline=None, max_examples=40)
def test_batch_distribution_matches_per_row_descent(dataset):
    tree = C45DecisionTree(engine="presort").fit(dataset)
    queries = np.vstack([dataset.x, np.full((2, dataset.x.shape[1]), np.nan)])
    batch = tree.distribution(queries)
    tree.engine = "naive"
    per_row = tree.distribution(queries)
    assert batch.tobytes() == per_row.tobytes()


@given(dataset=datasets())
@settings(deadline=None, max_examples=25)
def test_distances_many_matches_per_row(dataset):
    index = NearestNeighbours(dataset)
    matrix = index.distances_many(dataset.x)
    for i in range(len(dataset)):
        assert matrix[i].tobytes() == index.distances(dataset.x[i]).tobytes()


@given(dataset=datasets(), k=st.integers(1, 15))
@settings(deadline=None, max_examples=25)
def test_neighbour_table_is_prefix_of_per_row_queries(dataset, k):
    index = NearestNeighbours(dataset)
    table = index.neighbour_table(15)
    for i in range(len(dataset)):
        reference = index.neighbours(dataset.x[i], k, exclude=i)
        assert np.array_equal(table[i][:k], reference)


@given(dataset=datasets(), level=st.sampled_from([80.0, 300.0]), k=st.integers(1, 7))
@settings(deadline=None, max_examples=25)
def test_smote_bit_identical_with_and_without_caches(dataset, level, k):
    if int(np.count_nonzero(dataset.y == 1)) < 2:
        return
    clear_reuse_caches()
    with reuse_caches_disabled():
        reference = smote(dataset, level, k, np.random.default_rng(11))
    cached = smote(dataset, level, k, np.random.default_rng(11))
    again = smote(dataset, level, k, np.random.default_rng(11))  # cache hit
    for candidate in (cached, again):
        assert candidate.x.tobytes() == reference.x.tobytes()
        assert candidate.y.tobytes() == reference.y.tobytes()
        assert candidate.weights.tobytes() == reference.weights.tobytes()


@given(dataset=datasets(), k=st.integers(2, 4))
@settings(deadline=None, max_examples=25)
def test_fold_partition_cache_replays_partition_and_rng_state(dataset, k):
    if len(dataset) < 2 * k:
        return
    clear_reuse_caches()
    with reuse_caches_disabled():
        rng = np.random.default_rng(5)
        reference = stratified_folds(dataset, k, rng)
        tail_reference = rng.random(4)
    rng = np.random.default_rng(5)
    miss = stratified_folds(dataset, k, rng)  # populates the cache
    tail_miss = rng.random(4)
    rng = np.random.default_rng(5)
    hit = stratified_folds(dataset, k, rng)  # replays it
    tail_hit = rng.random(4)
    for candidate, tail in ((miss, tail_miss), (hit, tail_hit)):
        assert len(candidate) == len(reference)
        for fold, expected in zip(candidate, reference):
            assert np.array_equal(fold, expected)
        # The generator must leave a cache hit exactly where the
        # computation would have left it.
        assert tail.tobytes() == tail_reference.tobytes()


def _mini_refine(engine: str):
    """A seconds-scale Step 4 sweep with a process-local factory."""
    rng = np.random.default_rng(3)
    n = 160
    x = np.column_stack(
        [
            rng.integers(0, 12, n).astype(float),
            rng.normal(size=n),
            rng.integers(0, 3, n).astype(float),
        ]
    )
    x[:, :2][rng.random((n, 2)) < 0.05] = np.nan
    y = (x[:, 0] * 0.3 + np.nan_to_num(x[:, 1]) > 2.5).astype(np.int64)
    y[:4] = 1
    dataset = Dataset(
        [
            Attribute.numeric("a"),
            Attribute.numeric("b"),
            Attribute.nominal("m", ("p", "q", "r")),
        ],
        Attribute.nominal("class", ("neg", "pos")),
        x,
        y,
    )
    grid = RefinementGrid(
        undersample_levels=(30.0, 80.0),
        oversample_levels=(150.0,),
        neighbour_counts=(1, 3),
        base_plan=PreprocessingPlan(),
    )
    factory = lambda: C45DecisionTree(engine=engine)  # noqa: E731
    clear_reuse_caches()
    return refine(dataset, factory, grid, folds=3, seed=9)


def test_refine_fixed_seed_ranking_matches_seed_path():
    """The full data plane reproduces the seed path's sweep exactly."""
    with reuse_caches_disabled():
        reference = _mini_refine("naive")
    optimized = _mini_refine("presort")
    ref_rank = [
        (t.plan.sampling, t.plan.level, t.plan.neighbours, t.key)
        for t in reference.ranked()
    ]
    opt_rank = [
        (t.plan.sampling, t.plan.level, t.plan.neighbours, t.key)
        for t in optimized.ranked()
    ]
    assert ref_rank == opt_rank
    assert [t.evaluation.mean_auc for t in reference.trials] == [
        t.evaluation.mean_auc for t in optimized.trials
    ]
    assert optimized.best.plan == reference.best.plan

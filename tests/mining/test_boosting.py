"""Tests for AdaBoost.M1."""

import numpy as np
import pytest

from repro.mining.boosting import AdaBoostM1
from repro.mining.tree import C45DecisionTree
from tests.conftest import make_mixed, make_separable


class TestAdaBoost:
    def test_fits_separable(self):
        ds = make_separable()
        model = AdaBoostM1(n_rounds=10, max_depth=1).fit(ds)
        accuracy = (model.predict(ds.x) == ds.y).mean()
        assert accuracy >= 0.97

    def test_beats_single_stump_on_xor_like_data(self):
        """Depth-1 stumps cannot represent the conjunction concept;
        boosting them can."""
        ds = make_separable(n=600)
        stump = C45DecisionTree(max_depth=1, prune=False).fit(ds)
        stump_acc = (stump.predict(ds.x) == ds.y).mean()
        boosted = AdaBoostM1(n_rounds=25, max_depth=1).fit(ds)
        boosted_acc = (boosted.predict(ds.x) == ds.y).mean()
        assert boosted_acc > stump_acc

    def test_early_stop_on_perfect_learner(self):
        ds = make_separable()
        model = AdaBoostM1(n_rounds=30, max_depth=6).fit(ds)
        # A deep tree is perfect on this data: one round suffices.
        assert model.n_models == 1
        assert model.alphas == [1.0]

    def test_distribution_rows_sum_to_one(self):
        ds = make_mixed()
        model = AdaBoostM1(n_rounds=8).fit(ds)
        dist = model.distribution(ds.x[:20])
        assert np.allclose(dist.sum(axis=1), 1.0)

    def test_handles_weighted_dataset(self):
        ds = make_separable()
        weighted = ds.with_weights(np.linspace(0.5, 2.0, len(ds)))
        model = AdaBoostM1(n_rounds=5).fit(weighted)
        assert model.n_models >= 1

    def test_param_validation(self):
        with pytest.raises(ValueError):
            AdaBoostM1(n_rounds=0)
        with pytest.raises(ValueError):
            AdaBoostM1(max_depth=0)

    def test_empty_dataset_rejected(self):
        ds = make_separable().subset(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            AdaBoostM1().fit(ds)

    def test_registered_as_learner(self):
        from repro.core.preprocess import make_learner

        assert isinstance(make_learner("adaboost"), AdaBoostM1)

"""Tests for the non-tree learners: Naive Bayes, logistic, k-NN, rules."""

import numpy as np
import pytest

from repro.mining.base import NotFittedError
from repro.mining.bayes import NaiveBayes
from repro.mining.knn import KNNClassifier, NearestNeighbours
from repro.mining.logistic import LogisticRegression
from repro.mining.rules import Prism, SequentialCoveringRules
from repro.mining.transforms import SignedLogTransform

ALL_LEARNERS = [
    NaiveBayes,
    LogisticRegression,
    KNNClassifier,
    Prism,
    SequentialCoveringRules,
]


@pytest.mark.parametrize("factory", ALL_LEARNERS)
class TestLearnerProtocol:
    def test_fit_returns_self(self, factory, separable_dataset):
        model = factory()
        assert model.fit(separable_dataset) is model

    def test_distribution_shape_and_sum(self, factory, separable_dataset):
        model = factory().fit(separable_dataset)
        dist = model.distribution(separable_dataset.x[:20])
        assert dist.shape == (20, 2)
        assert np.allclose(dist.sum(axis=1), 1.0)

    def test_decent_training_accuracy(self, factory, separable_dataset):
        model = factory().fit(separable_dataset)
        accuracy = (model.predict(separable_dataset.x) == separable_dataset.y).mean()
        assert accuracy >= 0.9

    def test_not_fitted_raises(self, factory):
        with pytest.raises((NotFittedError, RuntimeError)):
            factory().predict(np.zeros((1, 2)))

    def test_empty_dataset_rejected(self, factory, separable_dataset):
        empty = separable_dataset.subset(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            factory().fit(empty)

    def test_handles_nominal_attributes(self, factory, mixed_dataset):
        model = factory().fit(mixed_dataset)
        accuracy = (model.predict(mixed_dataset.x) == mixed_dataset.y).mean()
        assert accuracy >= 0.8

    def test_predict_one(self, factory, separable_dataset):
        model = factory().fit(separable_dataset)
        assert model.predict_one(separable_dataset.x[0]) in (0, 1)


class TestNaiveBayes:
    def test_priors_reflect_imbalance(self, imbalanced_dataset):
        model = NaiveBayes().fit(imbalanced_dataset)
        # Prior for the majority class must dominate.
        assert model._log_prior[0] > model._log_prior[1]

    def test_missing_values_skipped(self, separable_dataset):
        model = NaiveBayes().fit(separable_dataset)
        row = np.array([[np.nan, np.nan]])
        dist = model.distribution(row)[0]
        # With nothing observed the posterior equals the prior.
        prior = np.exp(model._log_prior)
        assert np.allclose(dist, prior / prior.sum())

    def test_log_mapping_helps_extreme_magnitudes(self):
        """Bit-flip-like magnitudes break raw Gaussian NB; g(x) fixes it."""
        rng = np.random.default_rng(0)
        from repro.mining.dataset import Attribute, Dataset

        n = 300
        benign = rng.normal(10.0, 2.0, n)
        corrupt = np.exp(rng.uniform(np.log(1e4), np.log(1e9), n // 5))
        x = np.concatenate([benign, corrupt]).reshape(-1, 1)
        y = np.array([0] * n + [1] * (n // 5))
        ds = Dataset(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            x,
            y,
        )
        raw = NaiveBayes().fit(ds)
        raw_acc = (raw.predict(ds.x) == ds.y).mean()
        logged = SignedLogTransform().fit(ds).apply(ds)
        log_model = NaiveBayes().fit(logged)
        log_acc = (log_model.predict(logged.x) == logged.y).mean()
        assert log_acc >= raw_acc

    def test_laplace_validation(self):
        with pytest.raises(ValueError):
            NaiveBayes(laplace=-1)


class TestLogistic:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1)
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)

    def test_missing_values_imputed(self, separable_dataset):
        model = LogisticRegression().fit(separable_dataset)
        dist = model.distribution(np.array([[np.nan, 0.0]]))
        assert np.isfinite(dist).all()


class TestNearestNeighbours:
    def test_self_is_nearest(self, separable_dataset):
        index = NearestNeighbours(separable_dataset)
        neighbours = index.neighbours(separable_dataset.x[5], k=1)
        assert neighbours[0] == 5

    def test_exclude(self, separable_dataset):
        index = NearestNeighbours(separable_dataset)
        neighbours = index.neighbours(separable_dataset.x[5], k=1, exclude=5)
        assert neighbours[0] != 5

    def test_k_capped_at_population(self, separable_dataset):
        small = separable_dataset.subset(np.arange(3))
        index = NearestNeighbours(small)
        assert len(index.neighbours(small.x[0], k=10)) == 3

    def test_k_validation(self, separable_dataset):
        index = NearestNeighbours(separable_dataset)
        with pytest.raises(ValueError):
            index.neighbours(separable_dataset.x[0], k=0)

    def test_mixed_attribute_distance(self, mixed_dataset):
        index = NearestNeighbours(mixed_dataset)
        d = index.distances(mixed_dataset.x[0])
        assert d[0] == pytest.approx(0.0)
        assert np.all(d >= 0)

    def test_missing_values_max_distance(self, separable_dataset):
        index = NearestNeighbours(separable_dataset)
        row = separable_dataset.x[0].copy()
        row[0] = np.nan
        d = index.distances(row)
        assert d[0] >= 1.0  # missing column contributes distance 1


class TestRuleLearners:
    def test_ruleset_renders(self, separable_dataset):
        model = SequentialCoveringRules().fit(separable_dataset)
        text = str(model.ruleset)
        assert "IF" in text and "ELSE" in text

    def test_condition_count_positive(self, separable_dataset):
        model = SequentialCoveringRules().fit(separable_dataset)
        assert model.condition_count >= 1

    def test_prism_perfect_rules_on_separable(self, separable_dataset):
        model = Prism().fit(separable_dataset)
        accuracy = (model.predict(separable_dataset.x) == separable_dataset.y).mean()
        assert accuracy == 1.0

    def test_rules_handle_imbalance(self, imbalanced_dataset):
        model = SequentialCoveringRules().fit(imbalanced_dataset)
        predicted = model.predict(imbalanced_dataset.x)
        tp = ((predicted == 1) & (imbalanced_dataset.y == 1)).sum()
        assert tp / imbalanced_dataset.class_counts()[1] >= 0.8

    def test_single_class_dataset(self, separable_dataset):
        only_neg = separable_dataset.subset(separable_dataset.y == 0)
        model = SequentialCoveringRules().fit(only_neg)
        assert (model.predict(only_neg.x) == 0).all()

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SequentialCoveringRules(min_coverage=0)
        with pytest.raises(ValueError):
            SequentialCoveringRules(min_precision=1.5)
        with pytest.raises(ValueError):
            Prism(min_coverage=0)

"""Tests for the OneR baseline learner."""

import numpy as np
import pytest

from repro.mining.dataset import Attribute, Dataset
from repro.mining.oner import OneR
from tests.conftest import make_mixed, make_separable


def single_signal(n=200, seed=0):
    """One informative numeric attribute plus one noise attribute."""
    rng = np.random.default_rng(seed)
    signal = rng.normal(0, 1, n)
    noise = rng.normal(0, 1, n)
    y = (signal > 0.5).astype(int)
    return Dataset(
        [Attribute.numeric("noise"), Attribute.numeric("signal")],
        Attribute.nominal("class", ("a", "b")),
        np.column_stack([noise, signal]),
        y,
    )


class TestOneR:
    def test_picks_the_informative_attribute(self):
        ds = single_signal()
        model = OneR().fit(ds)
        assert model.chosen_attribute == 1
        accuracy = (model.predict(ds.x) == ds.y).mean()
        assert accuracy >= 0.95

    def test_cannot_express_conjunctions(self):
        """The separable concept needs two attributes; OneR cannot get
        it perfectly -- that is its role as a floor."""
        ds = make_separable(n=500)
        model = OneR().fit(ds)
        accuracy = (model.predict(ds.x) == ds.y).mean()
        majority = ds.class_counts().max() / len(ds)
        assert majority - 1e-9 <= accuracy < 1.0

    def test_nominal_attribute_rule(self):
        ds = make_mixed(n=300)
        model = OneR().fit(ds)
        accuracy = (model.predict(ds.x) == ds.y).mean()
        assert accuracy >= ds.class_counts().max() / len(ds) - 1e-9

    def test_distribution_is_hard(self):
        ds = single_signal()
        model = OneR().fit(ds)
        dist = model.distribution(ds.x[:10])
        assert set(np.unique(dist)) <= {0.0, 1.0}
        assert np.allclose(dist.sum(axis=1), 1.0)

    def test_min_bucket_validation(self):
        with pytest.raises(ValueError):
            OneR(min_bucket_weight=0)

    def test_empty_dataset(self):
        ds = make_separable().subset(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            OneR().fit(ds)

    def test_missing_values_get_default(self):
        ds = single_signal()
        model = OneR().fit(ds)
        row = np.array([[np.nan, np.nan]])
        assert model.predict(row)[0] == ds.majority_class()

    def test_constant_column_handled(self):
        ds = Dataset(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            np.ones((20, 1)),
            np.array([0, 1] * 10),
        )
        model = OneR().fit(ds)
        assert model.predict(np.array([[1.0]]))[0] in (0, 1)

    def test_registered_as_learner(self):
        from repro.core.preprocess import make_learner

        assert isinstance(make_learner("oner"), OneR)

"""Tests for the bagging ensemble."""

import numpy as np
import pytest

from repro.mining.bagging import Bagging
from repro.mining.tree import C45DecisionTree
from tests.conftest import make_imbalanced, make_separable


class TestBagging:
    def test_fits_and_predicts(self):
        ds = make_separable()
        model = Bagging(n_models=7).fit(ds)
        accuracy = (model.predict(ds.x) == ds.y).mean()
        assert accuracy >= 0.97
        assert len(model.models) == 7

    def test_distribution_properties(self):
        ds = make_separable()
        model = Bagging(n_models=5).fit(ds)
        dist = model.distribution(ds.x[:10])
        assert np.allclose(dist.sum(axis=1), 1.0)
        assert np.all(dist >= 0)

    def test_deterministic_given_seed(self):
        ds = make_imbalanced()
        a = Bagging(n_models=5, seed=3).fit(ds).distribution(ds.x[:20])
        b = Bagging(n_models=5, seed=3).fit(ds).distribution(ds.x[:20])
        assert np.array_equal(a, b)

    def test_seed_changes_ensemble(self):
        ds = make_imbalanced()
        a = Bagging(n_models=5, seed=1).fit(ds)
        b = Bagging(n_models=5, seed=2).fit(ds)
        assert not np.array_equal(
            a.distribution(ds.x), b.distribution(ds.x)
        )

    def test_smooths_variance_vs_single_tree(self):
        """Bagged probabilities are softer than a single unpruned tree's
        (the members disagree near the boundary)."""
        ds = make_separable(n=300, noise=0.15)
        single = C45DecisionTree(prune=False).fit(ds)
        bagged = Bagging(n_models=15).fit(ds)
        single_hard = np.isin(single.distribution(ds.x), (0.0, 1.0)).mean()
        bagged_hard = np.isin(bagged.distribution(ds.x), (0.0, 1.0)).mean()
        assert bagged_hard < single_hard

    def test_rare_class_kept_in_bootstraps(self):
        ds = make_imbalanced(n=120, positive_fraction=0.04)
        model = Bagging(n_models=8).fit(ds)
        # Every member must know both classes (the degenerate-bootstrap
        # repair) so the ensemble can flag positives at all.
        predicted = model.predict(ds.x)
        assert (predicted == 1).any()

    def test_mean_member_size(self):
        ds = make_separable()
        model = Bagging(n_models=4).fit(ds)
        assert model.mean_member_size >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Bagging(n_models=0)
        ds = make_separable().subset(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            Bagging().fit(ds)

    def test_registered_as_learner(self):
        from repro.core.preprocess import make_learner

        assert isinstance(make_learner("bagging"), Bagging)

"""Unit and property tests for the ARFF reader/writer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.arff import ArffError, dumps_arff, loads_arff
from repro.mining.dataset import Attribute, Dataset


class TestRoundTrip:
    def test_numeric_roundtrip(self, separable_dataset):
        again = loads_arff(dumps_arff(separable_dataset))
        assert np.allclose(again.x, separable_dataset.x)
        assert np.array_equal(again.y, separable_dataset.y)
        assert again.name == separable_dataset.name
        assert again.attributes == separable_dataset.attributes

    def test_mixed_roundtrip(self, mixed_dataset):
        again = loads_arff(dumps_arff(mixed_dataset))
        assert np.allclose(again.x, mixed_dataset.x)
        assert again.class_attribute == mixed_dataset.class_attribute

    def test_missing_values_roundtrip(self):
        ds = Dataset.from_records(
            [Attribute.numeric("v"), Attribute.nominal("f", ("x", "y"))],
            Attribute.nominal("class", ("a", "b")),
            [[1.0, "x"], [None, None]],
            ["a", "b"],
        )
        again = loads_arff(dumps_arff(ds))
        assert math.isnan(again.x[1, 0])
        assert math.isnan(again.x[1, 1])

    def test_weights_roundtrip(self):
        ds = Dataset.from_records(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            [[1.0], [2.0]],
            ["a", "b"],
            weights=[1.0, 2.5],
        )
        again = loads_arff(dumps_arff(ds, include_weights=True))
        assert np.array_equal(again.weights, [1.0, 2.5])

    def test_quoted_names_roundtrip(self):
        ds = Dataset.from_records(
            [Attribute.numeric("my var"), Attribute.nominal("f", ("a b", "c,d"))],
            Attribute.nominal("the class", ("no fail", "fail!{}")),
            [[1.0, "a b"], [2.0, "c,d"]],
            ["no fail", "fail!{}"],
            name="relation with spaces",
        )
        again = loads_arff(dumps_arff(ds))
        assert again.attributes[0].name == "my var"
        assert again.attributes[1].values == ("a b", "c,d")
        assert again.class_attribute.values == ("no fail", "fail!{}")
        assert again.name == "relation with spaces"

    @given(
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=1,
            max_size=30,
        ),
        labels_seed=st.integers(0, 1000),
    )
    @settings(deadline=None, max_examples=25)
    def test_float_precision_preserved(self, values, labels_seed):
        rng = np.random.default_rng(labels_seed)
        y = rng.integers(0, 2, len(values))
        ds = Dataset(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            np.asarray(values).reshape(-1, 1),
            y,
        )
        again = loads_arff(dumps_arff(ds))
        assert np.array_equal(again.x, ds.x)


class TestParsing:
    def test_parses_weka_style_file(self):
        text = """% a comment
@relation weather

@attribute temperature real
@attribute windy {TRUE, FALSE}
@attribute play {yes, no}

@data
85.0, FALSE, no
% another comment
?, TRUE, yes
"""
        ds = loads_arff(text)
        assert ds.name == "weather"
        assert len(ds) == 2
        assert ds.attributes[0].is_numeric
        assert ds.attributes[1].values == ("TRUE", "FALSE")
        assert math.isnan(ds.x[1, 0])
        assert ds.decode_label(1) == "yes"

    def test_integer_kind_accepted(self):
        ds = loads_arff(
            "@relation r\n@attribute v integer\n"
            "@attribute class {a,b}\n@data\n1,a\n"
        )
        assert ds.attributes[0].is_numeric

    def test_case_insensitive_headers(self):
        ds = loads_arff(
            "@RELATION r\n@ATTRIBUTE v NUMERIC\n"
            "@ATTRIBUTE class {a,b}\n@DATA\n1,a\n"
        )
        assert len(ds) == 1

    def test_percent_inside_quotes_kept(self):
        ds = loads_arff(
            "@relation r\n@attribute f {'100%','50%'}\n"
            "@attribute class {a,b}\n@data\n'100%',a\n"
        )
        assert ds.decode_row(0) == ["100%"]


class TestErrors:
    def test_no_data_section(self):
        with pytest.raises(ArffError):
            loads_arff("@relation r\n@attribute v numeric\n@attribute c {a,b}\n")

    def test_wrong_cell_count(self):
        with pytest.raises(ArffError):
            loads_arff(
                "@relation r\n@attribute v numeric\n"
                "@attribute class {a,b}\n@data\n1,2,a\n"
            )

    def test_missing_class_rejected(self):
        with pytest.raises(ArffError):
            loads_arff(
                "@relation r\n@attribute v numeric\n"
                "@attribute class {a,b}\n@data\n1,?\n"
            )

    def test_numeric_class_rejected(self):
        with pytest.raises(ArffError):
            loads_arff(
                "@relation r\n@attribute v {a,b}\n"
                "@attribute class numeric\n@data\na,1\n"
            )

    def test_bad_numeric_value(self):
        with pytest.raises(ArffError):
            loads_arff(
                "@relation r\n@attribute v numeric\n"
                "@attribute class {a,b}\n@data\nhello,a\n"
            )

    def test_unknown_nominal_value(self):
        with pytest.raises(ArffError):
            loads_arff(
                "@relation r\n@attribute v {x,y}\n"
                "@attribute class {a,b}\n@data\nz,a\n"
            )

    def test_unterminated_quote(self):
        with pytest.raises(ArffError):
            loads_arff(
                "@relation r\n@attribute v {x,y}\n"
                "@attribute class {a,b}\n@data\n'x,a\n"
            )

    def test_unsupported_attribute_type(self):
        with pytest.raises(ArffError):
            loads_arff("@relation r\n@attribute v date\n@attribute c {a,b}\n@data\n")

    def test_single_attribute_rejected(self):
        with pytest.raises(ArffError):
            loads_arff("@relation r\n@attribute c {a,b}\n@data\na\n")

"""Tests for Fayyad-Irani MDL discretisation."""

import numpy as np
import pytest

from repro.mining.dataset import Attribute, Dataset
from repro.mining.discretize import MdlDiscretiser, mdl_cut_points
from tests.conftest import make_mixed, make_separable


def one_column(values, labels):
    return Dataset(
        [Attribute.numeric("v")],
        Attribute.nominal("class", ("a", "b")),
        np.asarray(values, float).reshape(-1, 1),
        np.asarray(labels, int),
    )


class TestCutPoints:
    def test_clean_boundary_found(self):
        values = np.concatenate([np.linspace(0, 1, 40), np.linspace(5, 6, 40)])
        labels = np.array([0] * 40 + [1] * 40)
        cuts = mdl_cut_points(values, labels, 2)
        assert len(cuts) == 1
        assert 1.0 < cuts[0] < 5.0

    def test_pure_labels_no_cut(self):
        values = np.linspace(0, 1, 50)
        labels = np.zeros(50, int)
        assert mdl_cut_points(values, labels, 2) == []

    def test_random_labels_rejected_by_mdl(self):
        rng = np.random.default_rng(0)
        values = rng.random(60)
        labels = rng.integers(0, 2, 60)
        # Random labels: MDL should accept at most a cut or two.
        assert len(mdl_cut_points(values, labels, 2)) <= 2

    def test_multiple_boundaries(self):
        values = np.concatenate(
            [np.linspace(0, 1, 30), np.linspace(2, 3, 30), np.linspace(4, 5, 30)]
        )
        labels = np.array([0] * 30 + [1] * 30 + [0] * 30)
        cuts = mdl_cut_points(values, labels, 2)
        assert len(cuts) == 2

    def test_missing_values_ignored(self):
        values = np.array([0.0, 0.1, np.nan, 5.0, 5.1] * 10)
        labels = np.array([0, 0, 0, 1, 1] * 10)
        cuts = mdl_cut_points(values, labels, 2)
        assert len(cuts) == 1

    def test_cuts_sorted(self):
        ds = make_separable(n=300)
        cuts = mdl_cut_points(ds.x[:, 0], ds.y, 2)
        assert cuts == sorted(cuts)


class TestDiscretiser:
    def test_schema_converted(self):
        ds = make_separable()
        out = MdlDiscretiser().fit(ds).apply(ds)
        for attribute in out.attributes:
            assert attribute.is_nominal
        assert out.class_attribute == ds.class_attribute
        assert len(out) == len(ds)

    def test_nominal_attributes_untouched(self):
        ds = make_mixed()
        disc = MdlDiscretiser().fit(ds)
        out = disc.apply(ds)
        assert out.attributes[1] == ds.attributes[1]
        assert np.array_equal(out.x[:, 1], ds.x[:, 1])

    def test_uninformative_column_single_bin(self):
        rng = np.random.default_rng(1)
        ds = Dataset(
            [Attribute.numeric("noise")],
            Attribute.nominal("class", ("a", "b")),
            rng.random((80, 1)),
            rng.integers(0, 2, 80),
        )
        disc = MdlDiscretiser().fit(ds)
        assert disc.cut_points["noise"] == []
        out = disc.apply(ds)
        assert out.attributes[0].values == ("all",)
        assert set(out.x[:, 0]) == {0.0}

    def test_bins_preserve_class_signal(self):
        """A tree on the discretised data still learns the concept."""
        from repro.mining.tree import C45DecisionTree

        ds = make_separable(n=400)
        disc = MdlDiscretiser().fit(ds)
        binned = disc.apply(ds)
        tree = C45DecisionTree().fit(binned)
        accuracy = (tree.predict(binned.x) == binned.y).mean()
        assert accuracy >= 0.95

    def test_statistics_frozen_at_fit(self):
        ds = make_separable(n=200)
        disc = MdlDiscretiser().fit(ds)
        test = one_column([0.0, 100.0], [0, 1])
        # Apply uses fit-time cuts; out-of-range values land in the
        # outer bins rather than creating new ones.
        out = disc.apply(
            Dataset(ds.attributes, ds.class_attribute,
                    np.array([[0.0, 0.0], [99.0, -99.0]]), np.array([0, 1]))
        )
        n_bins_0 = len(disc.cut_points["v1"]) + 1
        assert out.x[1, 0] == n_bins_0 - 1

    def test_missing_values_stay_missing(self):
        ds = make_separable(n=100)
        x = ds.x.copy()
        x[0, 0] = np.nan
        disc = MdlDiscretiser().fit(ds)
        out = disc.apply(ds.replace(x=x))
        assert np.isnan(out.x[0, 0])

    def test_apply_before_fit(self):
        ds = make_separable()
        with pytest.raises(RuntimeError):
            MdlDiscretiser().apply(ds)
        with pytest.raises(RuntimeError):
            MdlDiscretiser().cut_points

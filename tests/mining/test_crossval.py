"""Tests for stratified k-fold cross-validation."""

import numpy as np
import pytest

from repro.mining.crossval import cross_validate, stratified_folds
from repro.mining.tree import C45DecisionTree
from tests.conftest import make_imbalanced


class TestStratifiedFolds:
    def test_partition_is_exact(self, separable_dataset, rng):
        folds = stratified_folds(separable_dataset, 10, rng)
        all_indices = np.concatenate(folds)
        assert len(all_indices) == len(separable_dataset)
        assert len(np.unique(all_indices)) == len(separable_dataset)

    def test_stratification(self, imbalanced_dataset, rng):
        k = 5
        folds = stratified_folds(imbalanced_dataset, k, rng)
        n_pos = imbalanced_dataset.class_counts()[1]
        per_fold = [int((imbalanced_dataset.y[f] == 1).sum()) for f in folds]
        # Counts differ by at most 1 across folds.
        assert max(per_fold) - min(per_fold) <= 1
        assert sum(per_fold) == n_pos

    def test_rare_class_spread(self, rng):
        ds = make_imbalanced(n=100, positive_fraction=0.05)
        folds = stratified_folds(ds, 5, rng)
        hit = sum(1 for f in folds if (ds.y[f] == 1).any())
        assert hit == 5  # 5 positives, one per fold

    def test_k_bounds(self, separable_dataset, rng):
        with pytest.raises(ValueError):
            stratified_folds(separable_dataset, 1, rng)
        tiny = separable_dataset.subset(np.arange(3))
        with pytest.raises(ValueError):
            stratified_folds(tiny, 5, rng)

    def test_deterministic_given_rng(self, separable_dataset):
        a = stratified_folds(separable_dataset, 5, np.random.default_rng(1))
        b = stratified_folds(separable_dataset, 5, np.random.default_rng(1))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestCrossValidate:
    def test_result_structure(self, separable_dataset):
        result = cross_validate(separable_dataset, C45DecisionTree, k=10)
        assert len(result.folds) == 10
        summary = result.summary()
        assert set(summary) == {"fpr", "tpr", "auc", "comp", "var"}
        assert 0 <= summary["auc"] <= 1

    def test_separable_data_scores_high(self, separable_dataset):
        result = cross_validate(separable_dataset, C45DecisionTree, k=10)
        assert result.mean_auc > 0.9
        assert result.mean_fpr < 0.05

    def test_variance_is_population_variance(self, separable_dataset):
        result = cross_validate(separable_dataset, C45DecisionTree, k=5)
        aucs = [f.auc for f in result.folds]
        assert result.auc_variance == pytest.approx(np.var(aucs))

    def test_complexity_defaults_to_node_count(self, separable_dataset):
        result = cross_validate(separable_dataset, C45DecisionTree, k=5)
        assert result.mean_complexity >= 1

    def test_preprocess_applied_to_training_only(self, imbalanced_dataset):
        """The confusion matrices must count exactly the original
        instances: resampling inflates training folds only."""
        from repro.mining.sampling import oversample_minority

        def preprocess(train, rng):
            return oversample_minority(train, 500, rng)

        result = cross_validate(
            imbalanced_dataset, C45DecisionTree, k=5, preprocess=preprocess
        )
        pooled = result.pooled_confusion()
        assert pooled.total == pytest.approx(len(imbalanced_dataset))

    def test_custom_complexity_callable(self, separable_dataset):
        result = cross_validate(
            separable_dataset,
            C45DecisionTree,
            k=5,
            complexity=lambda model: 42.0,
        )
        assert result.mean_complexity == 42.0

    def test_pooled_confusion_counts_everything(self, separable_dataset):
        result = cross_validate(separable_dataset, C45DecisionTree, k=10)
        assert result.pooled_confusion().total == pytest.approx(
            len(separable_dataset)
        )

    def test_deterministic_given_seed(self, separable_dataset):
        a = cross_validate(
            separable_dataset, C45DecisionTree, k=5,
            rng=np.random.default_rng(3),
        )
        b = cross_validate(
            separable_dataset, C45DecisionTree, k=5,
            rng=np.random.default_rng(3),
        )
        assert a.summary() == b.summary()

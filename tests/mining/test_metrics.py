"""Unit and property tests for Section IV metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mining.metrics import (
    ConfusionMatrix,
    MetricsError,
    breiman_cost_vector,
    expected_misclassification_cost,
    max_cost_vector,
    roc_distance_to_perfect,
    ting_instance_weights,
    trapezoid_auc,
    uniform_cost_matrix,
)

LABELS = ("nofail", "fail")


def cm(tp, fn, fp, tn) -> ConfusionMatrix:
    # Row = actual (nofail=0, fail=1), column = predicted.
    return ConfusionMatrix(np.array([[tn, fp], [fn, tp]], float), LABELS, positive=1)


class TestConfusionMatrixCells:
    def test_table1_cells(self):
        m = cm(tp=10, fn=2, fp=3, tn=85)
        assert (m.tp, m.fn, m.fp, m.tn) == (10, 2, 3, 85)
        assert m.n_pos == 12
        assert m.n_neg == 88
        assert m.total == 100

    def test_from_predictions(self):
        actual = np.array([1, 1, 0, 0, 1])
        predicted = np.array([1, 0, 0, 1, 1])
        m = ConfusionMatrix.from_predictions(actual, predicted, LABELS)
        assert m.tp == 2 and m.fn == 1 and m.fp == 1 and m.tn == 1

    def test_from_predictions_weighted(self):
        actual = np.array([1, 0])
        predicted = np.array([1, 1])
        m = ConfusionMatrix.from_predictions(
            actual, predicted, LABELS, weights=np.array([2.0, 3.0])
        )
        assert m.tp == 2.0 and m.fp == 3.0

    def test_length_mismatch(self):
        with pytest.raises(MetricsError):
            ConfusionMatrix.from_predictions(
                np.array([1]), np.array([1, 0]), LABELS
            )

    def test_addition(self):
        total = cm(1, 2, 3, 4) + cm(10, 20, 30, 40)
        assert total.tp == 11 and total.tn == 44

    def test_addition_label_mismatch(self):
        other = ConfusionMatrix(np.zeros((2, 2)), ("x", "y"), positive=1)
        with pytest.raises(MetricsError):
            cm(1, 1, 1, 1) + other

    def test_negative_cells_rejected(self):
        with pytest.raises(MetricsError):
            ConfusionMatrix(np.array([[1.0, -1.0], [0.0, 1.0]]), LABELS)

    def test_non_square_rejected(self):
        with pytest.raises(MetricsError):
            ConfusionMatrix(np.zeros((2, 3)), LABELS)


class TestRates:
    def test_known_values(self):
        m = cm(tp=90, fn=10, fp=5, tn=95)
        assert m.true_positive_rate() == pytest.approx(0.90)
        assert m.false_positive_rate() == pytest.approx(0.05)
        assert m.true_negative_rate() == pytest.approx(0.95)
        assert m.precision() == pytest.approx(90 / 95)
        assert m.recall() == m.true_positive_rate()
        assert m.accuracy() == pytest.approx(185 / 200)
        assert m.geometric_mean() == pytest.approx(math.sqrt(0.90 * 0.95))
        assert m.auc() == pytest.approx((0.90 - 0.05 + 1) / 2)

    def test_f1_harmonic_mean(self):
        m = cm(tp=90, fn=10, fp=5, tn=95)
        p, r = m.precision(), m.recall()
        assert m.f1() == pytest.approx(2 * p * r / (p + r))

    def test_zero_denominators(self):
        empty = cm(0, 0, 0, 0)
        assert empty.true_positive_rate() == 0.0
        assert empty.false_positive_rate() == 0.0
        assert empty.f1() == 0.0
        assert empty.accuracy() == 0.0

    def test_perfect_detector(self):
        m = cm(tp=12, fn=0, fp=0, tn=88)
        assert m.auc() == 1.0
        assert m.distance_to_perfect() == 0.0

    def test_as_dict_keys(self):
        d = cm(1, 1, 1, 1).as_dict()
        for key in ("tpr", "fpr", "auc", "f1", "gmean", "distance_to_perfect"):
            assert key in d

    def test_str_contains_labels(self):
        text = str(cm(1, 2, 3, 4))
        assert "nofail" in text and "fail" in text


class TestAucGeometry:
    @given(
        tpr=st.floats(0, 1, allow_nan=False),
        fpr=st.floats(0, 1, allow_nan=False),
    )
    def test_trapezoid_auc_bounds(self, tpr, fpr):
        auc = trapezoid_auc(tpr, fpr)
        assert 0.0 <= auc <= 1.0

    @given(
        tpr=st.floats(0, 1, allow_nan=False),
        fpr=st.floats(0, 1, allow_nan=False),
    )
    def test_distance_bounds(self, tpr, fpr):
        assert 0.0 <= roc_distance_to_perfect(tpr, fpr) <= math.sqrt(2) + 1e-12

    def test_random_classifier_auc_half(self):
        assert trapezoid_auc(0.5, 0.5) == 0.5


class TestCosts:
    def test_uniform_cost_matrix_equals_errors(self):
        m = cm(tp=10, fn=2, fp=3, tn=85)
        cost = expected_misclassification_cost(m.matrix, uniform_cost_matrix(2))
        assert cost == pytest.approx(m.fn + m.fp)

    def test_cost_matrix_diagonal_checked(self):
        bad = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(MetricsError):
            expected_misclassification_cost(np.zeros((2, 2)), bad)

    def test_negative_costs_rejected(self):
        bad = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(MetricsError):
            expected_misclassification_cost(np.zeros((2, 2)), bad)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricsError):
            expected_misclassification_cost(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_breiman_and_max_vectors(self):
        c = np.array([[0.0, 5.0, 1.0], [2.0, 0.0, 2.0], [1.0, 1.0, 0.0]])
        assert np.array_equal(breiman_cost_vector(c), [6.0, 4.0, 2.0])
        assert np.array_equal(max_cost_vector(c), [5.0, 2.0, 1.0])


class TestTingWeights:
    def test_weighted_total_preserved(self):
        y = np.array([0] * 90 + [1] * 10)
        w = ting_instance_weights(y, np.array([1.0, 9.0]))
        assert w.sum() == pytest.approx(len(y))

    def test_costly_class_weighs_more(self):
        y = np.array([0] * 90 + [1] * 10)
        w = ting_instance_weights(y, np.array([1.0, 9.0]))
        assert w[y == 1][0] > w[y == 0][0]

    def test_formula(self):
        # w(j) = V(j) * N / sum_i V(i) N_i
        y = np.array([0, 0, 1])
        v = np.array([1.0, 4.0])
        w = ting_instance_weights(y, v)
        denom = 1.0 * 2 + 4.0 * 1
        assert w[0] == pytest.approx(1.0 * 3 / denom)
        assert w[2] == pytest.approx(4.0 * 3 / denom)

    def test_zero_total_cost_rejected(self):
        with pytest.raises(MetricsError):
            ting_instance_weights(np.array([0, 1]), np.array([0.0, 0.0]))

    def test_negative_cost_rejected(self):
        with pytest.raises(MetricsError):
            ting_instance_weights(np.array([0]), np.array([-1.0]))

    @given(
        n0=st.integers(1, 50),
        n1=st.integers(1, 50),
        v0=st.floats(0.1, 10),
        v1=st.floats(0.1, 10),
    )
    def test_total_preserved_property(self, n0, n1, v0, v1):
        y = np.array([0] * n0 + [1] * n1)
        w = ting_instance_weights(y, np.array([v0, v1]))
        assert w.sum() == pytest.approx(len(y))

"""Unit and property tests for the imbalance treatments."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.sampling import (
    SamplingError,
    apply_sampling,
    oversample_minority,
    smote,
    undersample_majority,
)
from tests.conftest import make_imbalanced, make_mixed


class TestUndersampling:
    def test_keeps_all_minority(self, imbalanced_dataset, rng):
        before = imbalanced_dataset.class_counts()
        out = undersample_majority(imbalanced_dataset, 20, rng)
        after = out.class_counts()
        assert after[1] == before[1]

    def test_majority_reduced_to_level(self, imbalanced_dataset, rng):
        before = imbalanced_dataset.class_counts()
        out = undersample_majority(imbalanced_dataset, 20, rng)
        assert out.class_counts()[0] == pytest.approx(before[0] * 0.2, abs=1)

    def test_level_100_keeps_everything(self, imbalanced_dataset, rng):
        out = undersample_majority(imbalanced_dataset, 100, rng)
        assert np.array_equal(
            out.class_counts(), imbalanced_dataset.class_counts()
        )

    def test_without_replacement(self, imbalanced_dataset, rng):
        out = undersample_majority(imbalanced_dataset, 50, rng)
        neg_rows = out.x[out.y == 0]
        unique = np.unique(neg_rows, axis=0)
        assert len(unique) == len(neg_rows)

    def test_invalid_levels(self, imbalanced_dataset, rng):
        for level in (0, -5, 101):
            with pytest.raises(SamplingError):
                undersample_majority(imbalanced_dataset, level, rng)

    @given(level=st.floats(1, 100))
    @settings(deadline=None, max_examples=20)
    def test_size_never_grows(self, level):
        ds = make_imbalanced()
        out = undersample_majority(ds, level, np.random.default_rng(0))
        assert len(out) <= len(ds)


class TestOversampling:
    def test_adds_expected_count(self, imbalanced_dataset, rng):
        before = imbalanced_dataset.class_counts()
        out = oversample_minority(imbalanced_dataset, 300, rng)
        assert out.class_counts()[1] == before[1] * 4  # +300%

    def test_replicates_existing_rows(self, imbalanced_dataset, rng):
        out = oversample_minority(imbalanced_dataset, 200, rng)
        original = {tuple(r) for r in imbalanced_dataset.x[imbalanced_dataset.y == 1]}
        for row in out.x[out.y == 1]:
            assert tuple(row) in original

    def test_majority_untouched(self, imbalanced_dataset, rng):
        before = imbalanced_dataset.class_counts()
        out = oversample_minority(imbalanced_dataset, 500, rng)
        assert out.class_counts()[0] == before[0]

    def test_no_minority_rejected(self, imbalanced_dataset, rng):
        only_neg = imbalanced_dataset.subset(imbalanced_dataset.y == 0)
        with pytest.raises(SamplingError):
            oversample_minority(only_neg, 100, rng)

    def test_invalid_level(self, imbalanced_dataset, rng):
        with pytest.raises(SamplingError):
            oversample_minority(imbalanced_dataset, 0, rng)


class TestSmote:
    def test_synthesises_new_points(self, imbalanced_dataset, rng):
        out = smote(imbalanced_dataset, 300, 5, rng)
        original = {tuple(r) for r in imbalanced_dataset.x[imbalanced_dataset.y == 1]}
        synthetic = [
            row for row in out.x[out.y == 1] if tuple(row) not in original
        ]
        assert len(synthetic) > 0

    def test_synthetic_on_segment(self, imbalanced_dataset, rng):
        """Synthetic minority points lie within the minority bounding box
        (they are convex combinations of minority pairs)."""
        minority = imbalanced_dataset.x[imbalanced_dataset.y == 1]
        lo, hi = minority.min(axis=0), minority.max(axis=0)
        out = smote(imbalanced_dataset, 500, 3, rng)
        for row in out.x[out.y == 1]:
            assert np.all(row >= lo - 1e-9) and np.all(row <= hi + 1e-9)

    def test_expected_growth(self, imbalanced_dataset, rng):
        before = imbalanced_dataset.class_counts()[1]
        out = smote(imbalanced_dataset, 300, 5, rng)
        # r=3 per seed exactly (integer level).
        assert out.class_counts()[1] == before * 4

    def test_nominal_values_copied_not_interpolated(self, rng):
        ds = make_mixed(n=200)
        out = smote(ds, 300, 3, rng)
        flag_col = out.x[:, 1]
        assert set(np.unique(flag_col[~np.isnan(flag_col)])) <= {0.0, 1.0}

    def test_single_seed_falls_back_to_replication(self, imbalanced_dataset, rng):
        positives = np.flatnonzero(imbalanced_dataset.y == 1)[:1]
        negatives = np.flatnonzero(imbalanced_dataset.y == 0)
        ds = imbalanced_dataset.subset(np.concatenate([negatives, positives]))
        out = smote(ds, 300, 5, rng)
        assert out.class_counts()[1] == 4

    def test_invalid_params(self, imbalanced_dataset, rng):
        with pytest.raises(SamplingError):
            smote(imbalanced_dataset, 0, 5, rng)
        with pytest.raises(SamplingError):
            smote(imbalanced_dataset, 100, 0, rng)

    @given(level=st.sampled_from([100.0, 250.0, 400.0]), k=st.integers(1, 8))
    @settings(deadline=None, max_examples=10)
    def test_labels_preserved_property(self, level, k):
        ds = make_imbalanced(n=200)
        out = smote(ds, level, k, np.random.default_rng(1))
        # Negative instances pass through untouched.
        assert out.class_counts()[0] == ds.class_counts()[0]


class TestApplySampling:
    def test_none_is_identity(self, imbalanced_dataset, rng):
        out = apply_sampling(imbalanced_dataset, None, None, None, rng)
        assert out is imbalanced_dataset

    def test_dispatch(self, imbalanced_dataset, rng):
        for kind in ("undersample", "oversample", "smote"):
            out = apply_sampling(imbalanced_dataset, kind, 50, 3, rng)
            assert len(out) > 0

    def test_missing_level_rejected(self, imbalanced_dataset, rng):
        with pytest.raises(SamplingError):
            apply_sampling(imbalanced_dataset, "oversample", None, None, rng)

    def test_smote_requires_k(self, imbalanced_dataset, rng):
        with pytest.raises(SamplingError):
            apply_sampling(imbalanced_dataset, "smote", 100, None, rng)

    def test_unknown_kind_rejected(self, imbalanced_dataset, rng):
        with pytest.raises(SamplingError):
            apply_sampling(imbalanced_dataset, "bogus", 100, None, rng)

    def test_deterministic_given_rng(self, imbalanced_dataset):
        a = apply_sampling(
            imbalanced_dataset, "smote", 200, 3, np.random.default_rng(9)
        )
        b = apply_sampling(
            imbalanced_dataset, "smote", 200, 3, np.random.default_rng(9)
        )
        assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)

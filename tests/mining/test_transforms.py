"""Tests for attribute transformations."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mining.transforms import (
    SignedLogTransform,
    StandardiseTransform,
    signed_log,
)


class TestSignedLog:
    def test_positive_values(self):
        assert signed_log(np.array([0.0]))[0] == 0.0
        assert signed_log(np.array([math.e - 1]))[0] == pytest.approx(1.0)

    def test_negative_branch(self):
        # g(x) = -log(|x| + 1) for x < 0
        assert signed_log(np.array([-(math.e - 1)]))[0] == pytest.approx(-1.0)

    def test_odd_function(self):
        x = np.array([0.5, 3.0, 1e10])
        assert np.allclose(signed_log(-x), -signed_log(x))

    def test_nan_passthrough(self):
        assert math.isnan(signed_log(np.array([np.nan]))[0])

    def test_infinity_clamped_finite(self):
        out = signed_log(np.array([np.inf, -np.inf]))
        assert np.isfinite(out).all()
        assert out[0] > 0 > out[1]

    @given(st.floats(allow_nan=False, width=64))
    def test_monotone_property(self, x):
        y = x + abs(x) * 0.5 + 1.0
        if not math.isfinite(y):
            return
        assert signed_log(np.array([x]))[0] <= signed_log(np.array([y]))[0]

    @given(st.floats(min_value=-1e300, max_value=1e300, allow_nan=False))
    def test_sign_preserved(self, x):
        out = signed_log(np.array([x]))[0]
        assert math.copysign(1, out) == math.copysign(1, x) or out == 0


class TestSignedLogTransform:
    def test_only_numeric_columns_touched(self, mixed_dataset):
        out = SignedLogTransform().fit(mixed_dataset).apply(mixed_dataset)
        assert np.array_equal(out.x[:, 1], mixed_dataset.x[:, 1])  # nominal
        assert not np.array_equal(out.x[:, 0], mixed_dataset.x[:, 0])

    def test_original_untouched(self, separable_dataset):
        before = separable_dataset.x.copy()
        SignedLogTransform().fit(separable_dataset).apply(separable_dataset)
        assert np.array_equal(separable_dataset.x, before)


class TestStandardise:
    def test_zero_mean_unit_std(self, separable_dataset):
        transform = StandardiseTransform().fit(separable_dataset)
        out = transform.apply(separable_dataset)
        assert abs(out.x[:, 0].mean()) < 1e-9
        assert out.x[:, 0].std() == pytest.approx(1.0)

    def test_statistics_frozen_at_fit(self, separable_dataset):
        transform = StandardiseTransform().fit(separable_dataset)
        test = separable_dataset.subset(np.arange(10))
        out = transform.apply(test)
        expected = (test.x[:, 0] - separable_dataset.x[:, 0].mean()) / (
            separable_dataset.x[:, 0].std()
        )
        assert np.allclose(out.x[:, 0], expected)

    def test_constant_column_maps_to_zero(self):
        from repro.mining.dataset import Attribute, Dataset

        ds = Dataset(
            [Attribute.numeric("v")],
            Attribute.nominal("class", ("a", "b")),
            np.full((5, 1), 7.0),
            np.zeros(5, int),
        )
        out = StandardiseTransform().fit(ds).apply(ds)
        assert np.allclose(out.x, 0.0)

    def test_apply_before_fit_raises(self, separable_dataset):
        with pytest.raises(RuntimeError):
            StandardiseTransform().apply(separable_dataset)

    def test_nominal_untouched(self, mixed_dataset):
        out = StandardiseTransform().fit(mixed_dataset).apply(mixed_dataset)
        assert np.array_equal(out.x[:, 1], mixed_dataset.x[:, 1])

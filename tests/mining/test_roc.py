"""Tests for ROC curve construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.bayes import NaiveBayes
from repro.mining.roc import roc_auc, roc_curve
from tests.conftest import make_separable


class TestRocCurve:
    def test_perfect_ranking(self):
        actual = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        curve = roc_curve(actual, scores)
        assert curve.auc == pytest.approx(1.0)

    def test_worst_ranking(self):
        actual = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(actual, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        actual = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert roc_auc(actual, scores) == pytest.approx(0.5, abs=0.05)

    def test_endpoints(self):
        actual = np.array([0, 1])
        scores = np.array([0.3, 0.7])
        curve = roc_curve(actual, scores)
        assert curve.fpr[0] == 0.0 and curve.tpr[0] == 0.0
        assert curve.fpr[-1] == 1.0 and curve.tpr[-1] == 1.0
        assert curve.thresholds[0] == np.inf

    def test_monotone(self):
        rng = np.random.default_rng(1)
        actual = rng.integers(0, 2, 300)
        scores = rng.random(300)
        curve = roc_curve(actual, scores)
        assert np.all(np.diff(curve.fpr) >= -1e-12)
        assert np.all(np.diff(curve.tpr) >= -1e-12)

    def test_ties_collapsed(self):
        actual = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        curve = roc_curve(actual, scores)
        # One distinct score: exactly (0,0) and (1,1).
        assert len(curve.fpr) == 2
        assert roc_auc(actual, scores) == pytest.approx(0.5)

    def test_weights_respected(self):
        actual = np.array([1, 0])
        scores = np.array([0.9, 0.1])
        heavy_negative = roc_curve(actual, scores, weights=np.array([1.0, 9.0]))
        assert heavy_negative.auc == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 1]), np.array([0.5]))

    def test_point_closest_to_perfect(self):
        actual = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, threshold = roc_curve(actual, scores).point_closest_to_perfect()
        assert (fpr, tpr) == (0.0, 1.0)
        assert 0.2 <= threshold <= 0.9

    @given(seed=st.integers(0, 1000), n=st.integers(10, 200))
    @settings(deadline=None, max_examples=25)
    def test_auc_equals_rank_statistic(self, seed, n):
        """Property: trapezoid AUC equals the Mann-Whitney U statistic."""
        rng = np.random.default_rng(seed)
        actual = rng.integers(0, 2, n)
        if actual.min() == actual.max():
            return
        scores = rng.random(n)
        auc = roc_auc(actual, scores)
        pos = scores[actual == 1]
        neg = scores[actual == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        expected = (wins + 0.5 * ties) / (len(pos) * len(neg))
        assert auc == pytest.approx(expected, abs=1e-9)

    def test_classifier_scores(self):
        ds = make_separable()
        model = NaiveBayes().fit(ds)
        scores = model.distribution(ds.x)[:, 1]
        assert roc_auc(ds.y, scores) > 0.9

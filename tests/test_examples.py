"""Smoke tests that the shipped examples run end to end.

Only the quickstart runs in full (its dataset is cached at smoke
scale); the others are compile-checked so a syntax or import
regression in any example fails the suite without minutes of runtime.
"""

import pathlib
import py_compile
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "refined" in out
    assert "def archive_state_detector" in out


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in EXAMPLES.glob("*.py")),
)
def test_examples_compile(script):
    py_compile.compile(str(EXAMPLES / script), doraise=True)

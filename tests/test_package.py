"""Package-level API tests: lazy exports and layer imports."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_eager_exports(self):
        assert repro.Attribute is not None
        assert repro.Dataset is not None
        assert repro.C45DecisionTree is not None
        assert repro.ConfusionMatrix is not None

    def test_lazy_methodology(self):
        from repro.core.methodology import Methodology

        assert repro.Methodology is Methodology
        assert repro.MethodologyOutcome is not None

    def test_lazy_detector_and_predicate(self):
        from repro.core.detector import Detector
        from repro.core.predicate import Predicate

        assert repro.Detector is Detector
        assert repro.Predicate is Predicate

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.NotAThing


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.mining",
            "repro.mining.tree",
            "repro.mining.rules",
            "repro.injection",
            "repro.targets",
            "repro.targets.sevenzip",
            "repro.targets.flightgear",
            "repro.targets.mp3gain",
            "repro.baselines",
            "repro.analysis",
            "repro.experiments",
        ],
    )
    def test_importable_with_all(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__doc__") and mod.__doc__
        if hasattr(mod, "__all__"):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{module}.{name} missing"

    def test_learner_registry_complete(self):
        from repro.core.preprocess import LEARNERS, make_learner

        assert set(LEARNERS) == {
            "c45", "rules", "prism", "naive-bayes", "logistic", "knn",
            "adaboost", "bagging", "oner",
        }
        symbolic = {name for name, (_, sym) in LEARNERS.items() if sym}
        assert symbolic == {"c45", "rules", "prism"}
        for name in LEARNERS:
            assert make_learner(name) is not make_learner(name)  # fresh

    def test_experiment_registry_complete(self):
        from repro.experiments.cli import EXPERIMENTS
        from repro.experiments.report import DEFAULT_ORDER

        # Every report entry is a registered experiment.
        assert set(DEFAULT_ORDER) <= set(EXPERIMENTS)
        # The paper's artefacts are all present.
        for name in ("table1", "table2", "table3", "table4",
                     "figure1", "figure2", "validation"):
            assert name in EXPERIMENTS

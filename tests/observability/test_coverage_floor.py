"""The CI coverage-floor gate, tested against synthetic reports.

pytest-cov only runs in CI (it is a dev extra, not a runtime
dependency), so the gate's logic is verified here against hand-built
coverage.py JSON documents.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[2] / "tools")
)
from check_coverage_floor import aggregate, main  # noqa: E402


def _report(files):
    return {
        "files": {
            name: {
                "summary": {
                    "covered_lines": covered,
                    "num_statements": statements,
                }
            }
            for name, (covered, statements) in files.items()
        }
    }


REPORT = _report(
    {
        "src/repro/observability/tracer.py": (90, 100),
        "src/repro/observability/journal.py": (95, 100),
        "src/repro/mining/cache.py": (10, 100),  # outside the prefix
    }
)


class TestAggregate:
    def test_only_prefix_files_counted(self):
        percent, statements, matched = aggregate(
            REPORT, "src/repro/observability/"
        )
        assert percent == 92.5
        assert statements == 200
        assert matched == [
            "src/repro/observability/journal.py",
            "src/repro/observability/tracer.py",
        ]

    def test_prefix_matches_path_components_not_substrings(self):
        report = _report({"src/repro/observability2/x.py": (1, 1)})
        _, _, matched = aggregate(report, "src/repro/observability/")
        assert matched == []

    def test_windows_separators_normalised(self):
        report = _report({"src\\repro\\observability\\tracer.py": (1, 2)})
        percent, _, matched = aggregate(report, "src/repro/observability/")
        assert matched and percent == 50.0

    def test_invalid_report_raises(self):
        with pytest.raises(ValueError, match="coverage.py"):
            aggregate({"totals": {}}, "src/")


class TestMain:
    def _write(self, tmp_path, report):
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps(report))
        return str(path)

    def test_passes_at_or_above_floor(self, tmp_path, capsys):
        path = self._write(tmp_path, REPORT)
        assert main([path, "--floor", "92.5"]) == 0
        assert "92.5%" in capsys.readouterr().out

    def test_fails_below_floor(self, tmp_path, capsys):
        path = self._write(tmp_path, REPORT)
        assert main([path, "--floor", "95"]) == 1
        assert "below the ratcheted floor" in capsys.readouterr().err

    def test_no_matching_files_is_an_error(self, tmp_path, capsys):
        path = self._write(tmp_path, REPORT)
        assert main([path, "--prefix", "src/repro/nonexistent/"]) == 2
        assert "no measured files" in capsys.readouterr().err

    def test_missing_report_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json")]) == 2

    def test_malformed_json_is_an_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main([str(path)]) == 2

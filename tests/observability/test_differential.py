"""Differential suite: tracing changes nothing; engines agree.

Three contracts, each phrased as an equality between two independent
computation paths:

* the streaming engine's micro-batched verdicts equal a one-shot
  compiled batch evaluation of the same predicate over the same
  states, for every batch size (hypothesis-driven);
* the ``presort`` and ``naive`` induction engines produce bit-identical
  refinement rankings *while a tracer is actively recording*;
* a fully traced ``Methodology.run`` serializes identically to an
  untraced one -- the tracer reads clocks, never results.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import observability as obs
from repro.core.detector import Detector
from repro.core.methodology import Methodology, MethodologyConfig
from repro.core.predicate import And, Comparison, Or
from repro.core.refine import RefinementGrid, refine
from repro.core.preprocess import model_complexity
from repro.mining.tree.induction import C45DecisionTree
from repro.runtime.compile import compile_predicate
from repro.runtime.engine import StreamingEngine
from repro.runtime.pack import build_index, pack_states

from tests.conftest import make_imbalanced

VARIABLES = ("u", "v", "w")

comparisons = st.builds(
    Comparison,
    st.sampled_from(VARIABLES),
    st.sampled_from(("<=", ">", "==", "!=")),
    st.floats(-5.0, 5.0, allow_nan=False),
)
predicates = st.one_of(
    comparisons,
    st.builds(And, st.lists(comparisons, min_size=1, max_size=3)),
    st.builds(
        Or,
        st.lists(
            st.one_of(
                comparisons,
                st.builds(And, st.lists(comparisons, min_size=1, max_size=2)),
            ),
            min_size=1,
            max_size=3,
        ),
    ),
)
values = st.one_of(
    st.floats(-6.0, 6.0),
    st.just(float("nan")),
)
states = st.lists(
    st.dictionaries(st.sampled_from(VARIABLES), values, max_size=3),
    min_size=1,
    max_size=25,
)


class TestEngineMatchesOneShotBatch:
    @given(predicate=predicates, states=states, batch_size=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_micro_batched_equals_one_shot(self, predicate, states, batch_size):
        engine = StreamingEngine(batch_size=batch_size)
        name = engine.add(Detector(predicate, name="d"))
        streamed = [
            batch.flags[name]
            for batch in engine.evaluate_stream(states, batch_size)
        ]
        micro = np.concatenate(streamed)

        compiled = compile_predicate(predicate)
        index = build_index(predicate.variables())
        one_shot = np.asarray(
            compiled.evaluate_rows(pack_states(states, index), index),
            dtype=bool,
        )
        assert np.array_equal(micro, one_shot)

    @given(predicate=predicates, states=states, batch_size=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_submit_flush_path_agrees(self, predicate, states, batch_size):
        engine = StreamingEngine(batch_size=batch_size)
        name = engine.add(Detector(predicate, name="d"))
        chunks = []
        for state in states:
            result = engine.submit(state)
            if result is not None:
                chunks.append(result.flags[name])
        tail = engine.flush()
        if tail is not None:
            chunks.append(tail.flags[name])
        compiled = compile_predicate(predicate)
        index = build_index(predicate.variables())
        expected = np.asarray(
            compiled.evaluate_rows(pack_states(states, index), index),
            dtype=bool,
        )
        assert np.array_equal(np.concatenate(chunks), expected)


def _small_grid() -> RefinementGrid:
    return RefinementGrid(
        undersample_levels=(25.0, 60.0),
        oversample_levels=(200.0,),
        neighbour_counts=(3,),
    )


def _ranking(result):
    return [
        (trial.plan.describe(), trial.key) for trial in result.ranked()
    ]


class TestEnginesAgreeUnderTracing:
    def test_presort_and_naive_rankings_identical_while_traced(self):
        dataset = make_imbalanced(n=150)
        grid = _small_grid()
        with obs.tracing() as tracer:
            presort = refine(
                dataset,
                lambda: C45DecisionTree(engine="presort"),
                grid,
                folds=3,
                seed=11,
                complexity=model_complexity,
            )
            naive = refine(
                dataset,
                lambda: C45DecisionTree(engine="naive"),
                grid,
                folds=3,
                seed=11,
                complexity=model_complexity,
            )
        assert _ranking(presort) == _ranking(naive)
        assert presort.best.plan == naive.best.plan
        # The tracer really was recording both sweeps.
        engines = {
            record.attributes.get("engine")
            for record in tracer.spans
            if record.name == "c45.fit"
        }
        assert engines == {"presort", "naive"}


def _outcome_signature(outcome):
    """Every result-bearing field of a MethodologyOutcome, serialized."""
    return {
        "baseline": outcome.baseline.summary(),
        "refined": outcome.refined.summary(),
        "predicate": outcome.refined.predicate.to_source("state"),
        "plan": dataclasses.asdict(outcome.refined.plan),
        "ranking": [
            (t.plan.describe(), t.key) for t in outcome.refinement.ranked()
        ],
    }


class TestTracedEqualsUntraced:
    def test_methodology_run_bit_identical(self, tmp_path):
        dataset = make_imbalanced(n=150)
        grid = _small_grid()
        config = MethodologyConfig(folds=3, seed=5)

        untraced = Methodology(config).run(dataset, grid)
        with obs.tracing_to(tmp_path / "trace.jsonl"):
            traced = Methodology(config).run(dataset, grid)

        assert _outcome_signature(untraced) == _outcome_signature(traced)
        # And the trace itself is non-trivial: phases + trials landed.
        spans = obs.load_trace(tmp_path / "trace.jsonl")
        names = {record.name for record in spans}
        assert {"methodology.run", "phase.baseline", "phase.refine",
                "refine.trial", "crossval.fold", "c45.fit"} <= names

"""Acceptance: a traced, parallel `repro orchestrate` is unchanged.

The tentpole contract, end to end: running an orchestrated dataset
with tracing on, at ``jobs=4``, is bit-identical to the untraced run;
the recorded trace's ``phase.*`` totals cover the root span's wall
clock to within 10%; and the Chrome export of that trace validates.
"""

import numpy as np
import pytest

from repro import observability as obs
from repro.orchestration.orchestrate import run_dataset


def _result_fields(report):
    """The result-bearing fields (timings and metrics legitimately vary)."""
    payload = report.to_dict()
    campaign = dict(payload["campaign"])
    campaign.pop("jobs", None)
    return {
        "campaign": campaign,
        "baseline": payload["baseline"],
        "refined": payload["refined"],
        "best_plan": payload["best_plan"],
    }


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "orchestrate.jsonl"
    with obs.tracing_to(path):
        report = run_dataset("MG-B1", scale="smoke", jobs=4)
    return report, obs.load_trace(path)


class TestTracedOrchestrate:
    def test_bit_identical_to_untraced(self, traced_run):
        traced_report, _ = traced_run
        untraced = run_dataset("MG-B1", scale="smoke", jobs=4)
        assert _result_fields(untraced) == _result_fields(traced_report)

    def test_workers_contributed_spans(self, traced_run):
        _, spans = traced_run
        pids = {record.pid for record in spans}
        assert len(pids) >= 2  # main + at least one pool worker
        worker_tasks = [r for r in spans if r.name == "orchestration.task"]
        assert worker_tasks
        assert {r.name for r in spans} >= {
            "orchestrate.run", "phase.campaign", "phase.baseline",
            "phase.refine", "campaign.shard", "refine.trial",
        }

    def test_phase_totals_within_ten_percent_of_wall_clock(self, traced_run):
        _, spans = traced_run
        summary = obs.summarize(spans)
        assert summary.root == "orchestrate.run"
        assert summary.wall_s > 0
        assert abs(summary.phase_coverage - 1.0) <= 0.10, summary.phases

    def test_chrome_export_validates(self, traced_run, tmp_path):
        _, spans = traced_run
        payload = obs.chrome_trace(spans)
        assert obs.validate_chrome_trace(payload) == len(spans) + len(
            {record.pid for record in spans}
        )
        assert obs.write_chrome_trace(spans, tmp_path / "t.json") > 0

    def test_merge_is_deterministic(self, traced_run):
        """Re-sorting the merged spans is a fixed point."""
        _, spans = traced_run
        again = obs.sort_spans(list(reversed(spans)))
        assert again == spans

    def test_span_tree_is_well_formed(self, traced_run):
        _, spans = traced_run
        by_process = {}
        for record in spans:
            by_process.setdefault(record.pid, {})[record.span_id] = record
        for pid, records in by_process.items():
            for record in records.values():
                if record.parent_id is None:
                    continue
                parent = records.get(record.parent_id)
                assert parent is not None, (pid, record)
                # A child lies within its parent's window (1ms slack for
                # the wall-anchor rounding between clocks reads).
                assert record.start_ns >= parent.start_ns - 1_000_000
                assert (
                    record.start_ns + record.duration_ns
                    <= parent.start_ns + parent.duration_ns + 1_000_000
                )

    def test_report_sane(self, traced_run):
        report, _ = traced_run
        assert report.jobs == 4
        assert report.campaign["runs"] > 0
        assert np.isfinite(report.baseline["auc"])

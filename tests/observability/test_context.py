"""Process-safe activation: tracing_to, TraceSpec, ensure_worker.

The worker-side paths normally execute inside pool processes (where
the traced-orchestrate acceptance test exercises them end to end);
here they run in-process so their behaviour -- fork-inherited tracer
dropped, shard tracer installed idempotently -- is asserted directly.
"""

import os

from repro import observability as obs
from repro.observability.journal import TraceJournal


class TestExportSpec:
    def test_none_by_default(self):
        assert obs.export_spec() is None

    def test_none_for_in_memory_tracing(self):
        with obs.tracing():
            assert obs.export_spec() is None

    def test_advertised_by_tracing_to(self, tmp_path):
        with obs.tracing_to(tmp_path / "t.jsonl") as tracer:
            spec = obs.export_spec()
            assert spec == tracer.worker_spec
            assert spec.directory == str(tmp_path / "t.jsonl.workers")

    def test_workers_false_disables_worker_tracing(self, tmp_path):
        with obs.tracing_to(tmp_path / "t.jsonl", workers=False):
            assert obs.export_spec() is None


class TestEnsureWorker:
    def test_no_spec_no_tracer_is_noop(self):
        obs.ensure_worker(None)
        assert obs.get_tracer() is obs.NULL_TRACER

    def test_no_spec_keeps_own_process_tracer(self):
        with obs.tracing() as tracer:
            obs.ensure_worker(None)
            assert obs.get_tracer() is tracer

    def test_no_spec_drops_fork_inherited_tracer(self):
        # Simulate fork inheritance: a recording tracer whose pid is
        # not this process's.
        tracer = obs.Tracer()
        tracer.pid = os.getpid() + 1
        previous = obs.set_tracer(tracer)
        try:
            obs.ensure_worker(None)
            assert obs.get_tracer() is obs.NULL_TRACER
        finally:
            obs.set_tracer(previous if previous is not obs.NULL_TRACER else None)

    def test_spec_installs_shard_tracer_idempotently(self, tmp_path):
        spec = obs.TraceSpec(str(tmp_path))
        previous = obs.get_tracer()
        try:
            obs.ensure_worker(spec)
            installed = obs.get_tracer()
            assert installed is not obs.NULL_TRACER
            obs.ensure_worker(spec)  # second call: same tracer
            assert obs.get_tracer() is installed
        finally:
            obs.set_tracer(previous if previous is not obs.NULL_TRACER else None)
        shard = TraceJournal(tmp_path / f"worker-{os.getpid()}.jsonl")
        spans, metas, _ = shard.load()
        # Exactly one lifecycle marker and one worker meta despite the
        # double ensure.
        assert [record.name for record in spans] == ["worker.start"]
        assert [m["role"] for m in metas.values()] == ["worker"]

    def test_spec_replaces_fork_inherited_tracer(self, tmp_path):
        inherited = obs.Tracer()
        inherited.pid = os.getpid() + 1
        previous = obs.set_tracer(inherited)
        try:
            obs.ensure_worker(obs.TraceSpec(str(tmp_path)))
            assert obs.get_tracer() is not inherited
            assert obs.get_tracer().pid == os.getpid()
        finally:
            obs.set_tracer(previous if previous is not obs.NULL_TRACER else None)

    def test_spec_is_picklable(self, tmp_path):
        import pickle

        spec = obs.TraceSpec(str(tmp_path))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestTracingTo:
    def test_spans_journal_as_they_complete(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.tracing_to(path):
            with obs.span("first"):
                pass
            # Already durable before the block exits.
            assert [s.name for s in TraceJournal(path).load()[0]] == ["first"]

    def test_tracer_level_counters_flushed_on_exit(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.tracing_to(path):
            obs.count("loose", 4)
        _, _, counters = TraceJournal(path).load()
        assert counters == {"loose": 4}

    def test_previous_tracer_restored(self, tmp_path):
        with obs.tracing() as outer:
            with obs.tracing_to(tmp_path / "t.jsonl"):
                assert obs.get_tracer() is not outer
            assert obs.get_tracer() is outer
        assert obs.get_tracer() is obs.NULL_TRACER

    def test_worker_directory_merged_and_removed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.tracing_to(path) as tracer:
            workers = tracer.worker_spec.directory
            # Simulate one worker shard written during the block.
            shard = TraceJournal(
                os.path.join(workers, "worker-9999.jsonl")
            )
            shard.append_meta(role="worker", pid=9999)
            shard.append_span(
                obs.SpanRecord(
                    name="orchestration.task",
                    span_id=1,
                    parent_id=None,
                    pid=9999,
                    tid=1,
                    start_ns=0,
                    duration_ns=1,
                    attributes={},
                    counters={},
                )
            )
        assert not os.path.exists(workers)
        spans, metas, _ = TraceJournal(path).load()
        assert {record.pid for record in spans} == {9999}
        assert {m["role"] for m in metas.values()} == {"main", "worker"}

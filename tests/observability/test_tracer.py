"""Tracer core: nesting, attributes, counters, and the no-op default."""

import threading

from repro import observability as obs
from repro.observability.tracer import _NULL_SPAN, _sanitize


class TestNullDefault:
    def test_default_tracer_is_the_shared_noop(self):
        assert obs.get_tracer() is obs.NULL_TRACER
        assert not obs.enabled()

    def test_noop_span_is_one_shared_object(self):
        first = obs.span("anything", attr=1)
        second = obs.span("else")
        assert first is second is _NULL_SPAN

    def test_noop_span_accepts_full_api(self):
        with obs.span("x", a=1) as span:
            span.set("k", 2)
            span.count("n", 3)
        obs.count("loose")  # out-of-span count is also a no-op


class TestRecording:
    def test_span_records_name_attributes_counters(self):
        with obs.tracing() as tracer:
            with obs.span("work", kind="test") as span:
                span.set("extra", 7)
                span.count("items", 2)
                span.count("items", 3)
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.attributes == {"kind": "test", "extra": 7}
        assert record.counters == {"items": 5}
        assert record.duration_ns >= 0
        assert record.parent_id is None

    def test_nesting_links_parent_and_children_complete_first(self):
        with obs.tracing() as tracer:
            with obs.span("outer") as outer:
                with obs.span("inner"):
                    pass
        inner, outer_rec = tracer.spans
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer_rec.parent_id is None
        assert inner.duration_ns <= outer_rec.duration_ns
        assert (inner.pid, inner.span_id) != (outer_rec.pid, outer_rec.span_id)

    def test_out_of_span_count_lands_on_tracer(self):
        with obs.tracing() as tracer:
            obs.count("orphan", 2)
            with obs.span("s"):
                obs.count("inside")
        assert tracer.counters == {"orphan": 2}
        assert tracer.spans[0].counters == {"inside": 1}

    def test_tracer_restored_after_block(self):
        with obs.tracing():
            assert obs.enabled()
        assert obs.get_tracer() is obs.NULL_TRACER

    def test_sink_streams_records(self):
        seen = []
        tracer = obs.Tracer(sink=seen.append)
        with obs.tracing(tracer):
            with obs.span("a"):
                pass
        assert [r.name for r in seen] == ["a"]
        assert tracer.spans == []  # streamed, not buffered

    def test_threads_get_independent_stacks(self):
        ready = threading.Barrier(2)
        parents = {}

        def worker(label):
            with obs.span(f"thread.{label}") as span:
                ready.wait(timeout=5)
                parents[label] = span.parent_id

        with obs.tracing() as tracer:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Neither thread saw the other's span as its parent.
        assert parents == {0: None, 1: None}
        assert len({r.tid for r in tracer.spans}) == 2

    def test_out_of_order_exit_tolerated(self):
        with obs.tracing() as tracer:
            outer = obs.span("outer")
            inner = obs.span("inner")
            outer.__enter__()
            inner.__enter__()
            # Close the outer first (a generator finalised late does
            # this); the stack recovers instead of corrupting parents.
            outer.__exit__(None, None, None)
            with obs.span("after"):
                pass
        names = [r.name for r in tracer.spans]
        assert names == ["outer", "after"]
        assert tracer.spans[-1].parent_id is None


class TestSpanRecord:
    def test_dict_round_trip(self):
        with obs.tracing() as tracer:
            with obs.span("r", a="x") as span:
                span.count("c", 2)
        record = tracer.spans[0]
        assert obs.SpanRecord.from_dict(record.to_dict()) == record

    def test_non_finite_attributes_sanitized(self):
        assert _sanitize(float("nan")) == "nan"
        assert _sanitize(float("inf")) == "inf"
        assert _sanitize(1.5) == 1.5
        assert _sanitize(None) is None
        assert _sanitize(True) is True
        assert _sanitize(object()).startswith("<object")

    def test_attribute_values_sanitized_on_set(self):
        with obs.tracing() as tracer:
            with obs.span("s", bad=float("inf")) as span:
                span.set("worse", float("nan"))
        assert tracer.spans[0].attributes == {"bad": "inf", "worse": "nan"}

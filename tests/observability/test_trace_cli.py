"""``repro trace`` subcommands: record, summarize, export."""

import json

import pytest

from repro import observability as obs
from repro.cli import main


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One serial smoke recording shared by the read-only subcommands."""
    path = tmp_path_factory.mktemp("cli") / "trace.jsonl"
    code = main(["trace", "record", "MG-B1", "--out", str(path)])
    assert code == 0
    return path


class TestRecord:
    def test_prints_summary_and_writes_journal(self, recorded, capsys):
        # The fixture already ran the command; check its artefact.
        spans = obs.load_trace(recorded)
        assert spans
        assert {record.name for record in spans} >= {
            "orchestrate.run", "phase.campaign", "phase.refine"
        }

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(
            ["trace", "record", "MG-B1", "--out", str(path), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["dataset"] == "MG-B1"
        assert payload["summary"]["root"] == "orchestrate.run"
        assert payload["summary"]["phases"].keys() == {
            "campaign", "baseline", "refine"
        }


class TestSummarize:
    def test_text(self, recorded, capsys):
        assert main(["trace", "summarize", str(recorded)]) == 0
        out = capsys.readouterr().out
        assert "root orchestrate.run" in out
        assert "% of wall" in out

    def test_json(self, recorded, capsys):
        assert main(
            ["trace", "summarize", str(recorded), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.9 <= payload["phase_coverage"] <= 1.1
        assert payload["names"]["crossval"]["count"] >= 1


class TestExport:
    def test_default_output_path(self, recorded, capsys):
        assert main(["trace", "export", str(recorded)]) == 0
        out_path = f"{recorded}.chrome.json"
        payload = json.loads(open(out_path, encoding="utf-8").read())
        assert obs.validate_chrome_trace(payload) > 0

    def test_explicit_output_path(self, recorded, tmp_path, capsys):
        out = tmp_path / "export.json"
        assert main(["trace", "export", str(recorded), "-o", str(out)]) == 0
        obs.validate_chrome_trace(json.loads(out.read_text()))

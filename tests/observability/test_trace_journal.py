"""Trace journal durability: torn tails, resume, last-wins, merge.

The corruption cases mirror the orchestration checkpoint journal's
contract (tests/orchestration/test_journal.py): a reader must survive
a journal whose writer was killed mid-line, and resuming must keep
every record that was durably written.
"""

import json

from hypothesis import given, settings, strategies as st

from repro import observability as obs
from repro.observability.journal import TraceJournal


def _record(name="s", span_id=1, parent=None, pid=100, start=1_000, dur=10,
            attrs=None, counters=None):
    return obs.SpanRecord(
        name=name,
        span_id=span_id,
        parent_id=parent,
        pid=pid,
        tid=1,
        start_ns=start,
        duration_ns=dur,
        attributes=attrs or {},
        counters=counters or {},
    )


class TestRoundTrip:
    def test_spans_metas_counters(self, tmp_path):
        journal = TraceJournal(tmp_path / "t.jsonl")
        assert not journal.exists()
        journal.append_meta(role="main", run="r1")
        journal.append_span(_record(name="a", counters={"n": 2}))
        journal.append_counters({"loose": 3})
        spans, metas, counters = journal.load()
        assert [s.name for s in spans] == ["a"]
        assert spans[0].counters == {"n": 2}
        assert metas[next(iter(metas))]["role"] == "main"
        assert counters == {"loose": 3}

    def test_missing_file_loads_empty(self, tmp_path):
        assert TraceJournal(tmp_path / "nope.jsonl").load() == ([], {}, {})

    def test_clear_is_idempotent(self, tmp_path):
        journal = TraceJournal(tmp_path / "t.jsonl")
        journal.append_span(_record())
        journal.clear()
        assert not journal.exists()
        journal.clear()


class TestTornTail:
    @given(cut=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_truncated_final_line_skipped(self, tmp_path_factory, cut):
        """Cutting the last record anywhere loses only that record."""
        journal = TraceJournal(
            tmp_path_factory.mktemp("torn") / "t.jsonl"
        )
        journal.append_meta(role="main")
        journal.append_span(_record(name="kept", span_id=1))
        journal.append_span(_record(name="torn", span_id=2))
        text = journal.path.read_text()
        lines = text.splitlines()
        cut = min(cut, len(lines[-1]) - 1)  # strictly mid-line
        journal.path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][:cut]
        )
        spans, metas, _ = journal.load()
        assert [s.name for s in spans] == ["kept"]
        assert len(metas) == 1

    @given(garbage=st.text(max_size=40).filter(lambda s: "\n" not in s))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_garbage_lines_skipped(self, tmp_path_factory, garbage):
        journal = TraceJournal(
            tmp_path_factory.mktemp("garbage") / "t.jsonl"
        )
        journal.append_span(_record(name="before"))
        with open(journal.path, "a", encoding="utf-8") as fp:
            fp.write(garbage + "\n")
        journal.append_span(_record(name="after", span_id=2))
        spans, _, _ = journal.load()
        # "before" and "after" always survive; the garbage line only
        # counts if it happens to be a valid span record itself.
        names = [s.name for s in spans]
        assert names[0] == "before" and names[-1] == "after"

    def test_structurally_invalid_records_skipped(self, tmp_path):
        journal = TraceJournal(tmp_path / "t.jsonl")
        journal.append_span(_record(name="good"))
        with open(journal.path, "a", encoding="utf-8") as fp:
            fp.write(json.dumps({"k": "span", "name": "no-id"}) + "\n")
            fp.write(json.dumps({"k": "meta", "pid": "not-an-int"}) + "\n")
            fp.write(json.dumps(["not", "a", "dict"]) + "\n")
        spans, metas, _ = journal.load()
        assert [s.name for s in spans] == ["good"]
        assert metas == {}

    def test_resume_after_torn_tail(self, tmp_path):
        """Appending after a torn tail keeps old and new records."""
        journal = TraceJournal(tmp_path / "t.jsonl")
        journal.append_span(_record(name="first", span_id=1))
        journal.append_span(_record(name="torn", span_id=2))
        text = journal.path.read_text()
        lines = text.splitlines()
        journal.path.write_text(
            lines[0] + "\n" + lines[1][: len(lines[1]) // 2]
        )
        # The torn tail has no trailing newline; a resumed writer
        # appends after it -- that one concatenated line is lost, the
        # rest of the resumed run is durable.
        journal.append_span(_record(name="resumed-lost", span_id=3))
        journal.append_span(_record(name="resumed", span_id=4))
        spans, _, _ = journal.load()
        assert [s.name for s in spans] == ["first", "resumed"]

    def test_last_meta_per_pid_wins(self, tmp_path):
        journal = TraceJournal(tmp_path / "t.jsonl")
        journal.append_meta(role="main", run="old")
        journal.append_meta(role="main", run="new")
        _, metas, _ = journal.load()
        (meta,) = metas.values()
        assert meta["run"] == "new"


class TestMerge:
    def _shard(self, directory, pid, names):
        shard = TraceJournal(directory / f"worker-{pid}.jsonl")
        shard.append_meta(role="worker", pid=pid)
        for i, (name, start) in enumerate(names, start=1):
            shard.append_span(
                _record(name=name, span_id=i, pid=pid, start=start)
            )
        return shard

    def test_merge_is_deterministic_and_removes_shards(self, tmp_path):
        def build(tag, order):
            journal = TraceJournal(tmp_path / f"main-{tag}.jsonl")
            journal.append_meta(role="main")
            workers = tmp_path / f"workers-{tag}"
            workers.mkdir()
            for pid in order:
                self._shard(
                    workers, pid, [(f"w{pid}.a", 50 + pid), (f"w{pid}.b", 10)]
                )
            merged = obs.merge_worker_traces(journal, workers)
            assert merged == 2 * len(order)
            assert not workers.exists()
            return journal.path.read_text()

        # Shard creation order must not matter: the merge sorts by
        # (start_ns, pid, span_id).
        assert build("fwd", [201, 202]) == build("rev", [202, 201])

    def test_merge_carries_worker_metas_and_counters(self, tmp_path):
        journal = TraceJournal(tmp_path / "main.jsonl")
        journal.append_meta(role="main")
        workers = tmp_path / "w"
        workers.mkdir()
        shard = self._shard(workers, 300, [("t", 5)])
        shard.append_counters({"cache.x.hits": 4})
        obs.merge_worker_traces(journal, workers)
        spans, metas, counters = journal.load()
        assert [s.pid for s in spans] == [300]
        assert {m["role"] for m in metas.values()} == {"main", "worker"}
        assert counters == {"cache.x.hits": 4}

    def test_merge_tolerates_torn_shard(self, tmp_path):
        journal = TraceJournal(tmp_path / "main.jsonl")
        workers = tmp_path / "w"
        workers.mkdir()
        shard = self._shard(workers, 400, [("ok", 1), ("torn", 2)])
        text = shard.path.read_text()
        lines = text.splitlines()
        shard.path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:10])
        assert obs.merge_worker_traces(journal, workers) == 1
        spans, _, _ = journal.load()
        assert [s.name for s in spans] == ["ok"]

    def test_merge_missing_directory_is_noop(self, tmp_path):
        journal = TraceJournal(tmp_path / "main.jsonl")
        assert obs.merge_worker_traces(journal, tmp_path / "absent") == 0

    def test_load_trace_on_directory(self, tmp_path):
        workers = tmp_path / "w"
        workers.mkdir()
        self._shard(workers, 500, [("b", 20)])
        self._shard(workers, 501, [("a", 10)])
        spans = obs.load_trace(workers)
        assert [s.name for s in spans] == ["a", "b"]

    def test_sort_spans_canonical_order(self):
        records = [
            _record(name="late", span_id=1, pid=2, start=30),
            _record(name="tie-high-pid", span_id=1, pid=3, start=10),
            _record(name="tie-low-pid", span_id=1, pid=1, start=10),
            _record(name="tie-second-id", span_id=2, pid=1, start=10),
        ]
        ordered = obs.sort_spans(records)
        assert [r.name for r in ordered] == [
            "tie-low-pid", "tie-second-id", "tie-high-pid", "late"
        ]

"""Trace summaries: per-phase totals, self-time, counter rollups."""

from repro import observability as obs


def _record(name, span_id, parent=None, pid=100, start=0, dur=0, counters=None):
    return obs.SpanRecord(
        name=name,
        span_id=span_id,
        parent_id=parent,
        pid=pid,
        tid=1,
        start_ns=start,
        duration_ns=dur,
        attributes={},
        counters=counters or {},
    )


SECOND = 1_000_000_000


def _pipeline():
    """root(10s) > phase.a(6s) > leaf(2s); phase.b(3s); second process."""
    return [
        _record("root", 1, dur=10 * SECOND),
        _record("phase.a", 2, parent=1, start=0, dur=6 * SECOND),
        _record("leaf", 3, parent=2, start=1, dur=2 * SECOND,
                counters={"items": 5}),
        _record("phase.b", 4, parent=1, start=6, dur=3 * SECOND),
        _record("task", 1, pid=200, dur=4 * SECOND,
                counters={"items": 2}),
    ]


class TestSummarize:
    def test_root_is_longest_parentless_span(self):
        summary = obs.summarize(_pipeline())
        assert summary.root == "root"
        assert summary.wall_s == 10.0

    def test_phase_totals_and_coverage(self):
        summary = obs.summarize(_pipeline())
        assert summary.phases == {"a": 6.0, "b": 3.0}
        assert summary.phase_total_s == 9.0
        assert summary.phase_coverage == 0.9

    def test_self_time_subtracts_direct_children(self):
        summary = obs.summarize(_pipeline())
        assert summary.names["root"].self_s == 1.0  # 10 - (6 + 3)
        assert summary.names["phase.a"].self_s == 4.0  # 6 - 2
        assert summary.names["leaf"].self_s == 2.0

    def test_child_time_is_per_process(self):
        # pid 200's span_id collides with pid 100's root; it must not
        # be attributed as the root's child.
        summary = obs.summarize(_pipeline())
        assert summary.names["task"].self_s == 4.0
        assert summary.names["root"].self_s == 1.0

    def test_counters_rolled_up_per_name_and_overall(self):
        summary = obs.summarize(_pipeline())
        assert summary.counters == {"items": 7}
        assert summary.names["leaf"].counters == {"items": 5}
        assert summary.names["task"].counters == {"items": 2}

    def test_empty_trace(self):
        summary = obs.summarize([])
        assert summary.root is None
        assert summary.wall_s == 0.0
        assert summary.phase_coverage == 0.0
        assert summary.to_dict()["spans"] == 0

    def test_to_dict_shape(self):
        payload = obs.summarize(_pipeline()).to_dict()
        assert payload["root"] == "root"
        assert payload["phases"] == {"a": 6.0, "b": 3.0}
        assert payload["names"]["leaf"]["count"] == 1
        assert payload["names"]["leaf"]["mean_s"] == 2.0


class TestRender:
    def test_render_mentions_phases_and_hot_spans(self):
        text = obs.render_summary(obs.summarize(_pipeline()))
        assert "root root wall 10.000s" in text
        assert "90.0% of wall" in text
        assert "phase.a" in text
        assert "items" in text

    def test_render_empty(self):
        text = obs.render_summary(obs.summarize([]))
        assert "(none)" in text

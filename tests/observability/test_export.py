"""Chrome trace-event export: structure, rebase, and validation."""

import json

import pytest

from repro import observability as obs


def _spans():
    with obs.tracing() as tracer:
        with obs.span("phase.work", stage="demo") as outer:
            outer.count("items", 3)
            with obs.span("inner"):
                pass
    return tracer.spans


class TestChromeTrace:
    def test_export_validates(self):
        payload = obs.chrome_trace(_spans())
        assert obs.validate_chrome_trace(payload) == 3  # 1 meta + 2 spans

    def test_events_are_well_formed(self):
        payload = obs.chrome_trace(_spans())
        events = payload["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(metas) == 1 and metas[0]["name"] == "process_name"
        for event in complete:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Timestamps are rebased: the earliest span opens at t=0.
        assert min(e["ts"] for e in complete) == 0.0

    def test_attributes_and_counters_in_args(self):
        payload = obs.chrome_trace(_spans())
        outer = next(
            e for e in payload["traceEvents"] if e["name"] == "phase.work"
        )
        assert outer["args"] == {"stage": "demo", "counter.items": 3}
        assert outer["cat"] == "phase"

    def test_empty_trace_validates(self):
        payload = obs.chrome_trace([])
        assert obs.validate_chrome_trace(payload) == 0

    def test_write_round_trips_as_json(self, tmp_path):
        out = tmp_path / "t.chrome.json"
        count = obs.write_chrome_trace(_spans(), out)
        loaded = json.loads(out.read_text())
        assert obs.validate_chrome_trace(loaded) == count


class TestValidation:
    def _event(self, **overrides):
        event = {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1.0}
        event.update(overrides)
        return {"traceEvents": [event]}

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            obs.validate_chrome_trace([])

    def test_rejects_missing_event_list(self):
        with pytest.raises(ValueError, match="must be a list"):
            obs.validate_chrome_trace({"traceEvents": {}})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            obs.validate_chrome_trace(self._event(ph="B"))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            obs.validate_chrome_trace(self._event(name=""))

    def test_rejects_bool_pid(self):
        with pytest.raises(ValueError, match="pid"):
            obs.validate_chrome_trace(self._event(pid=True))

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="dur"):
            obs.validate_chrome_trace(self._event(dur=-1.0))

    def test_rejects_nan_timestamp(self):
        with pytest.raises(ValueError, match="ts"):
            obs.validate_chrome_trace(self._event(ts=float("nan")))

    def test_rejects_non_dict_args(self):
        with pytest.raises(ValueError, match="args"):
            obs.validate_chrome_trace(self._event(args=[1]))

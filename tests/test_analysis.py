"""Tests for the error propagation analysis."""

import pytest

from repro.analysis import analyse_propagation
from repro.analysis.propagation import _region
from tests.injection.test_campaign import Campaign, CounterTarget, config


@pytest.fixture(scope="module")
def report():
    result = Campaign(CounterTarget(), config()).run()
    return analyse_propagation(result)


class TestRegions:
    def test_int32_regions(self):
        assert _region(0, 32) == "low"
        assert _region(9, 32) == "low"
        assert _region(10, 32) == "mid"
        assert _region(20, 32) == "high"
        assert _region(31, 32) == "high"

    def test_bool_region(self):
        assert _region(0, 1) == "low"


class TestPropagationReport:
    def test_permeability_matches_ground_truth(self, report):
        by_name = {v.variable: v for v in report.variables}
        # In CounterTarget every acc flip fails; scratch never does.
        assert by_name["acc"].permeability == 1.0
        assert by_name["scratch"].permeability == 0.0

    def test_ranking(self, report):
        ranked = report.ranked()
        assert ranked[0].variable == "acc"
        assert report.critical_variables(0.5) == ["acc"]
        assert report.resilient_variables() == ["scratch"]

    def test_module_totals(self, report):
        assert report.total_runs == 24
        assert report.total_failures == 12
        assert report.module_permeability == pytest.approx(0.5)

    def test_time_profile(self, report):
        acc = next(v for v in report.variables if v.variable == "acc")
        for time in (1, 2):
            assert acc.time_permeability(time) == 1.0
        assert acc.time_permeability(99) == 0.0

    def test_region_profile(self, report):
        acc = next(v for v in report.variables if v.variable == "acc")
        # Bits 0..2 of int32 are all in the low region.
        assert acc.region_permeability("low") == 1.0
        assert acc.region_permeability("high") == 0.0

    def test_metadata(self, report):
        assert report.target == "CT"
        assert report.module == "Acc"
        assert report.injection_location == "entry"

    def test_crash_counting(self):
        from tests.injection.test_campaign import CrashingTarget

        cfg = config(bits=(31,), variables=("acc",))
        result = Campaign(CrashingTarget(), cfg).run()
        analysed = analyse_propagation(result)
        acc = next(v for v in analysed.variables if v.variable == "acc")
        assert acc.crashes > 0

"""End-to-end integration tests: the full pipeline on real targets.

These exercise the complete chain -- target system, fault injection,
log round-trip, preprocessing, induction, refinement, predicate
extraction, detector, runtime-assertion validation -- at a scale that
runs in seconds.
"""

import io

import numpy as np
import pytest

from repro.core import (
    Methodology,
    MethodologyConfig,
    RefinementGrid,
    ValidationCampaign,
)
from repro.injection import Campaign, CampaignConfig, Location
from repro.injection.logfmt import read_log, write_log
from repro.mining.arff import dumps_arff, loads_arff
from repro.targets import Mp3GainTarget, SevenZipTarget

GRID = RefinementGrid(
    undersample_levels=(25.0,),
    oversample_levels=(300.0,),
    neighbour_counts=(5,),
)


@pytest.fixture(scope="module")
def mg_campaign():
    target = Mp3GainTarget(n_tracks=5, min_samples=256, max_samples=512)
    config = CampaignConfig(
        module="RGain",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 1, 2),
        injection_times=(1, 3),
        bits={"int32": (0, 8, 16, 31),
              "float64": (0, 16, 40, 52, 56, 60, 62, 63)},
    )
    return target, config, Campaign(target, config).run()


class TestFullPipeline:
    def test_campaign_to_detector(self, mg_campaign):
        target, config, result = mg_campaign
        dataset = result.to_dataset("MG-int")
        assert 0 < result.failure_rate < 0.5

        method = Methodology(MethodologyConfig(folds=5, seed=0))
        outcome = method.run(dataset, GRID)
        assert outcome.refined.evaluation.mean_auc > 0.8

        detector = outcome.refined.detector(
            location=config.sample_probe, name="d"
        )
        efficiency = detector.efficiency_on(dataset)
        assert efficiency.completeness > 0.7
        assert efficiency.accuracy > 0.9

    def test_runtime_assertion_commensurate(self, mg_campaign):
        target, config, result = mg_campaign
        dataset = result.to_dataset("MG-int")
        method = Methodology(MethodologyConfig(folds=5, seed=0))
        outcome = method.run(dataset, GRID)
        detector = outcome.refined.detector()
        report = ValidationCampaign(target, config, detector).validate()
        assert report.commensurate_with(
            outcome.refined.evaluation.mean_tpr,
            outcome.refined.evaluation.mean_fpr,
            tolerance=0.15,
        )

    def test_log_and_arff_round_trips_compose(self, mg_campaign):
        """Campaign -> log -> dataset -> ARFF -> dataset is lossless."""
        _, _, result = mg_campaign
        buffer = io.StringIO()
        write_log(result, buffer)
        buffer.seek(0)
        dataset = read_log(buffer).to_dataset("roundtrip")
        again = loads_arff(dumps_arff(dataset))
        assert np.array_equal(again.x, dataset.x)
        assert np.array_equal(again.y, dataset.y)

    def test_detector_source_executes_standalone(self, mg_campaign):
        """The generated assertion must run with no library imports."""
        _, _, result = mg_campaign
        dataset = result.to_dataset("MG-int")
        method = Methodology(MethodologyConfig(folds=5, seed=0))
        report = method.step3_generate(dataset)
        detector = report.detector(name="standalone")
        namespace: dict = {}
        exec(detector.to_source(), namespace)
        fn = namespace["standalone"]
        # Agreement with the library predicate on real sampled states.
        for record in result.records[:50]:
            if record.sample is None:
                continue
            assert fn(dict(record.sample)) == detector.predicate.evaluate(
                record.sample
            )


class TestCrossTargetConsistency:
    def test_seven_zip_pipeline(self):
        target = SevenZipTarget(n_files=5, min_size=40, max_size=90)
        config = CampaignConfig(
            module="LDecode",
            injection_location=Location.ENTRY,
            sample_location=Location.EXIT,
            test_cases=(0, 1),
            injection_times=(1, 3),
            bits={"int32": (0, 4, 8, 16, 24, 31)},
        )
        result = Campaign(target, config).run()
        dataset = result.to_dataset()
        method = Methodology(MethodologyConfig(folds=5, seed=1))
        report = method.step3_generate(dataset)
        assert report.evaluation.mean_auc > 0.7
        # The dataset's attributes are the exit-probe variables.
        names = {a.name for a in dataset.attributes}
        assert {"out_len", "crc", "ok"} <= names

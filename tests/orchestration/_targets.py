"""Picklable task functions and targets for orchestration tests.

Worker functions must live in an importable module (not a test body)
so they can cross the process boundary; everything the pool tests
submit is defined here.
"""

import os
import time

from repro.injection.campaign import Campaign
from repro.injection.instrument import Harness, Location, VariableSpec
from repro.targets.base import TargetSystem


def square(x):
    return x * x


def boom(message="boom"):
    raise RuntimeError(message)


def flaky(path, failures, value):
    """Fail the first ``failures`` invocations (counted in ``path``)."""
    with open(path, "a") as fp:
        fp.write("x\n")
    with open(path) as fp:
        calls = sum(1 for _ in fp)
    if calls <= failures:
        raise RuntimeError(f"flaky failure {calls}")
    return value


def record_call(path, value):
    """Append to ``path`` (an execution counter) and return ``value``."""
    with open(path, "a") as fp:
        fp.write(f"{value}\n")
    return value


def die(code=13):
    """Kill the worker process without raising (the segfault analogue)."""
    os._exit(code)


def die_if_marked(path, value):
    """Die while the marker file exists, else return ``value``."""
    if os.path.exists(path):
        os.unlink(path)
        os._exit(13)
    return value


def snooze(seconds, value):
    time.sleep(seconds)
    return value


class GridTarget(TargetSystem):
    """Deterministic picklable target (mirrors the campaign test one)."""

    name = "GT"

    @property
    def modules(self):
        return ("Acc",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (VariableSpec("acc", "int32"), VariableSpec("scratch", "int32"))

    def run(self, test_case, harness: Harness):
        acc = test_case
        for step in range(4):
            state = harness.probe(
                "Acc", Location.ENTRY, {"acc": acc, "scratch": 0}
            )
            acc = int(state["acc"]) + step
        return acc

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output

    def module_sources(self, module):
        # The whole behaviour lives in run/is_failure; subclasses that
        # override them fingerprint differently automatically.
        self.check_module(module)
        return (type(self).run, type(self).is_failure)


class CrashingGridTarget(GridTarget):
    """A target whose injected runs kill the whole worker process.

    ``acc`` sign flips drive the accumulator negative, upon which the
    target exits the process -- the analogue of a segfaulting C target
    taking the injection harness down with it.
    """

    name = "KGT"

    def run(self, test_case, harness: Harness):
        acc = test_case
        for step in range(4):
            state = harness.probe(
                "Acc", Location.ENTRY, {"acc": acc, "scratch": 0}
            )
            acc = int(state["acc"]) + step
            if acc < 0:
                os._exit(23)
        return acc


class LatencyTarget(GridTarget):
    """A target dominated by external wait, like a real subprocess run."""

    name = "LT"
    delay = 0.004

    def run(self, test_case, harness: Harness):
        time.sleep(self.delay)
        return super().run(test_case, harness)


def grid_config(**overrides):
    from repro.injection.campaign import CampaignConfig

    base = dict(
        module="Acc",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 1),
        injection_times=(1, 2),
        bits=(0, 1, 2),
    )
    base.update(overrides)
    return CampaignConfig(**base)


def run_grid_campaign(**overrides):
    return Campaign(GridTarget(), grid_config(**overrides))

"""Tests for the worker pools: retries, quarantine, worker death."""

import pytest

from repro.orchestration import (
    ProcessPool,
    SerialPool,
    Task,
    configure,
    default_journal_dir,
    default_pool,
    make_pool,
    picklable,
)
from repro.runtime.metrics import RuntimeMetrics

from tests.orchestration._targets import boom, die, flaky, snooze, square


def _tasks(n=4):
    return [Task(f"t:{i:02d}", f"fp{i}", square, (i,)) for i in range(n)]


class TestSerialPool:
    def test_runs_in_order(self):
        order = []
        pool = SerialPool()
        outcomes = pool.run(_tasks(), on_result=lambda t, o: order.append(t.task_id))
        assert order == [f"t:{i:02d}" for i in range(4)]
        assert all(o.ok for o in outcomes.values())

    def test_retry_then_success(self, tmp_path):
        counter = tmp_path / "calls"
        task = Task("t:00", "fp", flaky, (str(counter), 2, 41))
        outcome = SerialPool(max_retries=2, backoff=0).run([task])["t:00"]
        assert outcome.status == "done"
        assert outcome.result == 41
        assert outcome.attempts == 3

    def test_quarantine_after_retries(self):
        task = Task("t:00", "fp", boom, ("kaput",))
        outcome = SerialPool(max_retries=1, backoff=0).run([task])["t:00"]
        assert outcome.status == "quarantined"
        assert not outcome.ok
        assert "kaput" in outcome.error
        assert outcome.attempts == 2

    def test_quarantine_does_not_poison_rest(self):
        tasks = [
            Task("t:00", "a", square, (3,)),
            Task("t:01", "b", boom, ()),
            Task("t:02", "c", square, (4,)),
        ]
        outcomes = SerialPool(max_retries=0, backoff=0).run(tasks)
        assert outcomes["t:00"].result == 9
        assert outcomes["t:01"].status == "quarantined"
        assert outcomes["t:02"].result == 16

    def test_metrics_recorded(self):
        metrics = RuntimeMetrics()
        pool = SerialPool(max_retries=0, backoff=0, metrics=metrics)
        pool.run([Task("campaign:00", "a", square, (2,), weight=5),
                  Task("campaign:01", "b", boom, ())])
        stats = metrics.stats_for("orchestration.campaign")
        assert stats.evaluations == 5
        assert stats.batches == 1
        assert stats.faults == 1


class TestProcessPool:
    def test_results_match_serial(self):
        with ProcessPool(3, backoff=0) as pool:
            outcomes = pool.run(_tasks(8))
        assert [o.result for o in outcomes.values()] == [
            SerialPool().run(_tasks(8))[t.task_id].result for t in _tasks(8)
        ]

    def test_raising_task_quarantined_others_complete(self):
        tasks = [
            Task("t:00", "a", square, (3,)),
            Task("t:01", "b", boom, ()),
            Task("t:02", "c", square, (4,)),
        ]
        with ProcessPool(2, max_retries=1, backoff=0) as pool:
            outcomes = pool.run(tasks)
        assert outcomes["t:00"].result == 9
        assert outcomes["t:01"].status == "quarantined"
        assert outcomes["t:01"].attempts == 2
        assert outcomes["t:02"].result == 16

    def test_worker_death_quarantined_others_complete(self):
        # die() takes its worker down via os._exit: the executor breaks,
        # is rebuilt, and innocent tasks still complete.
        tasks = [
            Task("t:00", "a", square, (5,)),
            Task("t:01", "b", die, ()),
            Task("t:02", "c", snooze, (0.01, 7)),
        ]
        with ProcessPool(2, max_retries=1, backoff=0) as pool:
            outcomes = pool.run(tasks)
        assert outcomes["t:01"].status == "quarantined"
        assert "worker died" in outcomes["t:01"].error
        assert outcomes["t:00"].result == 25
        assert outcomes["t:02"].result == 7

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ProcessPool(0)


class TestMakePool:
    def test_serial_for_none_or_one(self):
        assert isinstance(make_pool(None), SerialPool)
        assert isinstance(make_pool(1), SerialPool)

    def test_process_for_many(self):
        pool = make_pool(2)
        try:
            assert isinstance(pool, ProcessPool)
            assert pool.jobs == 2
        finally:
            pool.close()


class TestPicklable:
    def test_module_function(self):
        assert picklable(square)

    def test_lambda_is_not(self):
        assert not picklable(lambda: 1)


class TestConfigure:
    def teardown_method(self):
        configure()  # reset process-wide defaults

    def test_default_pool_none_when_unconfigured(self):
        configure()
        assert default_pool() is None
        assert default_journal_dir() is None

    def test_default_pool_reflects_jobs(self, tmp_path):
        configure(jobs=2, journal_dir=tmp_path)
        pool = default_pool()
        try:
            assert isinstance(pool, ProcessPool)
            assert pool.jobs == 2
        finally:
            pool.close()
        assert default_journal_dir() == tmp_path

    def test_serial_jobs_give_no_pool(self):
        configure(jobs=1)
        assert default_pool() is None

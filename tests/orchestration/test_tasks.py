"""Tests for the task model: fingerprints, seeds, graph, estimates."""

import pytest

from repro.injection.instrument import Location
from repro.injection.campaign import CampaignConfig
from repro.orchestration import (
    SerialPool,
    Task,
    TaskGraph,
    derive_seed,
    estimate_runs,
    fingerprint_of,
)
from repro.orchestration.tasks import _chunk

from tests.orchestration._targets import square


class TestFingerprint:
    def test_deterministic(self):
        payload = {"a": 1, "b": [1.5, "x"]}
        assert fingerprint_of(payload) == fingerprint_of({"b": [1.5, "x"], "a": 1})

    def test_sensitive_to_content(self):
        assert fingerprint_of({"a": 1}) != fingerprint_of({"a": 2})

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            fingerprint_of({"a": float("nan")})


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "campaign:00001") == derive_seed(7, "campaign:00001")

    def test_distinct_per_task_and_seed(self):
        seeds = {
            derive_seed(seed, task)
            for seed in (0, 1, 2)
            for task in ("a:1", "a:2", "b:1")
        }
        assert len(seeds) == 9

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed(0, "t") < 2**63


class TestTask:
    def test_kind(self):
        task = Task("campaign:00004", "ff", square, (2,))
        assert task.kind == "campaign"

    def test_duplicate_ids_rejected(self):
        tasks = [Task("t:1", "a", square, (1,)), Task("t:1", "b", square, (2,))]
        with pytest.raises(ValueError, match="duplicate"):
            TaskGraph(tasks)


class TestTaskGraph:
    def test_results_in_task_order(self):
        tasks = [Task(f"t:{i}", f"f{i}", square, (i,)) for i in range(5)]
        outcomes = TaskGraph(tasks).run(SerialPool())
        assert list(outcomes) == [f"t:{i}" for i in range(5)]
        assert [o.result for o in outcomes.values()] == [i * i for i in range(5)]


class TestEstimateRuns:
    def _config(self, **overrides):
        base = dict(
            module="Acc",
            injection_location=Location.ENTRY,
            sample_location=Location.ENTRY,
            test_cases=(0, 1, 2),
            injection_times=(1, 2),
            variables=("a", "b"),
            bits=(0, 1, 2, 3),
        )
        base.update(overrides)
        return CampaignConfig(**base)

    def test_explicit_everything(self):
        assert estimate_runs(self._config()) == 3 * 2 * 2 * 4

    def test_default_bits(self):
        assert estimate_runs(self._config(bits=None)) == 3 * 2 * 2 * 64

    def test_mapping_bits_uses_widest(self):
        config = self._config(bits={"int32": (0, 1), "float64": (0, 1, 2)})
        assert estimate_runs(config) == 3 * 2 * 2 * 3

    def test_unknown_variables(self):
        assert estimate_runs(self._config(variables=None)) is None
        assert estimate_runs(self._config(variables=None), n_variables=5) == (
            3 * 2 * 5 * 4
        )


class TestChunk:
    def test_even_and_ragged(self):
        assert _chunk([1, 2, 3, 4], 2) == [(1, 2), (3, 4)]
        assert _chunk([1, 2, 3], 2) == [(1, 2), (3,)]
        assert _chunk([], 2) == []

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            _chunk([1], 0)

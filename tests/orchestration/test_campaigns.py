"""Campaign orchestration: determinism, resume, quarantine synthesis,
and campaign-store interop (journal backfill in both directions,
prune-composition, pooled runs, quarantine exclusion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.injection.campaign import Campaign
from repro.injection.instrument import Location
from repro.injection.store import CampaignStore
from repro.orchestration import (
    Journal,
    ProcessPool,
    SerialPool,
    plan_pairs,
    run_campaign,
)

from tests.orchestration._targets import (
    CrashingGridTarget,
    GridTarget,
    grid_config,
    run_grid_campaign,
)


class TestDeterminism:
    """Satellite: parallel execution is bit-identical to serial."""

    def test_two_invocations_identical(self):
        first = run_grid_campaign().run()
        second = run_grid_campaign().run()
        assert first.records == second.records

    def test_serial_pool_matches_plain_serial(self):
        serial = run_grid_campaign()._run_serial()
        pooled = run_grid_campaign().run(pool=SerialPool())
        assert pooled.records == serial.records
        assert pooled.golden_runs.keys() == serial.golden_runs.keys()

    def test_jobs1_matches_jobs4(self):
        with ProcessPool(1, backoff=0) as one, ProcessPool(4, backoff=0) as four:
            a = run_grid_campaign().run(pool=one)
            b = run_grid_campaign().run(pool=four)
        assert a.records == b.records
        assert a.records == run_grid_campaign()._run_serial().records

    def test_shard_size_does_not_change_records(self):
        serial = run_grid_campaign()._run_serial()
        for shard_size in (1, 2, 5, 100):
            result = run_grid_campaign().run(
                pool=SerialPool(), shard_size=shard_size
            )
            assert result.records == serial.records

    @settings(max_examples=15, deadline=None)
    @given(
        test_cases=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=3,
            unique=True,
        ),
        times=st.lists(
            st.integers(min_value=0, max_value=3), min_size=1, max_size=2,
            unique=True,
        ),
        bits=st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=3,
            unique=True,
        ),
        shard_size=st.integers(min_value=1, max_value=7),
    )
    def test_property_parallel_equals_serial(
        self, test_cases, times, bits, shard_size
    ):
        config = grid_config(
            test_cases=tuple(test_cases),
            injection_times=tuple(times),
            bits=tuple(bits),
        )
        serial = Campaign(GridTarget(), config)._run_serial()
        merged = Campaign(GridTarget(), config).run(
            pool=SerialPool(), shard_size=shard_size
        )
        assert merged.records == serial.records


class TestJournalResume:
    def test_resume_after_partial_journal(self, tmp_path):
        journal = Journal(tmp_path / "c.jsonl")
        full = run_grid_campaign().run(pool=SerialPool(), journal=journal)
        assert full.orchestration["executed"] == full.orchestration["tasks"]

        # Simulate a mid-flight kill: keep half the lines, tear the next.
        lines = journal.path.read_text().splitlines()
        keep = len(lines) // 2
        journal.path.write_text(
            "\n".join(lines[:keep]) + "\n" + lines[keep][: 25]
        )
        resumed = run_grid_campaign().run(pool=SerialPool(), journal=journal)
        assert resumed.records == full.records
        assert resumed.orchestration["cached"] == keep
        assert resumed.orchestration["executed"] == (
            full.orchestration["tasks"] - keep
        )

    def test_complete_journal_executes_nothing(self, tmp_path):
        journal = Journal(tmp_path / "c.jsonl")
        first = run_grid_campaign().run(pool=SerialPool(), journal=journal)
        again = run_grid_campaign().run(pool=SerialPool(), journal=journal)
        assert again.records == first.records
        assert again.orchestration["executed"] == 0
        assert again.orchestration["cached"] == again.orchestration["tasks"]

    def test_config_change_invalidates_checkpoints(self, tmp_path):
        journal = Journal(tmp_path / "c.jsonl")
        run_grid_campaign().run(pool=SerialPool(), journal=journal)
        changed = run_grid_campaign(injection_times=(1, 3)).run(
            pool=SerialPool(), journal=journal
        )
        assert changed.orchestration["cached"] == 0


class TestQuarantineSynthesis:
    def test_worker_killing_shard_becomes_crash_records(self):
        # Sign-bit flips of acc drive the crashing target to os._exit:
        # those shards keep killing their worker and are quarantined;
        # the campaign synthesises crash records for their runs.
        config = grid_config(bits=(0, 31), variables=("acc",))
        campaign = Campaign(CrashingGridTarget(), config)
        with ProcessPool(2, max_retries=1, backoff=0) as pool:
            result = campaign.run(pool=pool)
        quarantined = result.orchestration["quarantined"]
        assert quarantined, "expected the sign-flip shard to be quarantined"
        crash = [r for r in result.records if r.crashed]
        assert crash
        for record in crash:
            assert record.failed
            assert record.deviated
            assert record.sample is None
        # Benign shards still produced ordinary records.
        assert any(not r.crashed for r in result.records)
        # Record count is the full planned grid despite the casualties.
        expected = len(plan_pairs(campaign)) * len(config.injection_times) * len(
            config.test_cases
        )
        assert result.n_runs == expected


class TestValidationGuard:
    def test_after_run_subclass_forced_serial(self):
        observed = []

        class Observing(Campaign):
            def _after_run(self, harness, record):
                observed.append(record.test_case)

        campaign = Observing(GridTarget(), grid_config())
        with ProcessPool(2, backoff=0) as pool:
            result = campaign.run(pool=pool)
        # The hook must have seen every run in-process.
        assert len(observed) == result.n_runs
        assert result.orchestration["jobs"] == 1


class TestStoreInterop:
    """The campaign store composes with every other shard source:
    journal checkpoints backfill the store and vice versa, pruned and
    exhaustive campaigns of the same slice share shards (the config
    slice drops the variable/bit selection; ``pairs`` carry it), and
    quarantined shards are never persisted."""

    def test_journal_shards_backfill_the_store(self, tmp_path):
        journal = Journal(tmp_path / "c.jsonl")
        full = run_grid_campaign().run(pool=SerialPool(), journal=journal)

        store = CampaignStore(tmp_path / "store")
        merged = run_grid_campaign().run(
            pool=SerialPool(), journal=journal, store=store
        )
        assert merged.records == full.records
        assert merged.orchestration["cached"] == merged.orchestration["tasks"]
        # Every journal hit was written through to the (cold) store.
        assert merged.orchestration["store"]["misses"] == (
            merged.orchestration["tasks"]
        )
        assert merged.orchestration["store"]["writes"] == (
            merged.orchestration["tasks"]
        )

        # The backfilled store now serves a journal-less run entirely.
        warm = run_grid_campaign().run(store=CampaignStore(tmp_path / "store"))
        assert warm.records == full.records
        assert warm.orchestration["stored"] == warm.orchestration["tasks"]
        assert warm.orchestration["executed"] == 0

    def test_store_shards_backfill_a_fresh_journal(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        full = run_grid_campaign().run(store=store)
        assert full.orchestration["store"]["writes"] == (
            full.orchestration["tasks"]
        )

        journal = Journal(tmp_path / "c.jsonl")
        merged = run_grid_campaign().run(
            pool=SerialPool(), journal=journal, store=store
        )
        assert merged.records == full.records
        assert merged.orchestration["stored"] == merged.orchestration["tasks"]
        assert merged.orchestration["executed"] == 0

        # ... and each store hit checkpointed into the journal, which
        # now resumes the campaign on its own.
        resumed = run_grid_campaign().run(pool=SerialPool(), journal=journal)
        assert resumed.records == full.records
        assert resumed.orchestration["cached"] == (
            resumed.orchestration["tasks"]
        )

    def test_exhaustive_store_serves_pruned_campaign(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        exhaustive = run_grid_campaign().run(store=store)

        pruned = run_grid_campaign().run(prune="static", store=store)
        # Static pruning drops the dead ``scratch`` pairs; every
        # surviving shard was already stored by the exhaustive run.
        assert 0 < pruned.orchestration["tasks"] < (
            exhaustive.orchestration["tasks"]
        )
        assert pruned.orchestration["stored"] == pruned.orchestration["tasks"]
        assert pruned.orchestration["executed"] == 0
        assert [r.to_dict() for r in pruned.records] == [
            r.to_dict() for r in exhaustive.records
        ]

    def test_pruned_store_partially_serves_exhaustive(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        pruned = run_grid_campaign().run(prune="static", store=store)
        survivors = pruned.orchestration["tasks"]

        exhaustive = run_grid_campaign().run(store=store)
        assert exhaustive.orchestration["stored"] == survivors
        assert exhaustive.orchestration["executed"] == (
            exhaustive.orchestration["tasks"] - survivors
        )
        assert exhaustive.records == run_grid_campaign()._run_serial().records

    def test_pooled_store_run_is_bit_identical(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        with ProcessPool(2, backoff=0) as pool:
            cold = run_grid_campaign().run(pool=pool, store=store)
        assert cold.orchestration["store"]["writes"] == (
            cold.orchestration["tasks"]
        )
        warm = run_grid_campaign().run(store=store)
        assert warm.orchestration["stored"] == warm.orchestration["tasks"]
        serial = run_grid_campaign()._run_serial()
        assert cold.records == serial.records
        assert warm.records == serial.records

    def test_quarantined_shards_never_stored(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        config = grid_config(bits=(0, 31), variables=("acc",))
        with ProcessPool(2, max_retries=1, backoff=0) as pool:
            result = Campaign(CrashingGridTarget(), config).run(
                pool=pool, store=store
            )
        quarantined = result.orchestration["quarantined"]
        assert quarantined, "expected the sign-flip shard to be quarantined"
        # Synthesized crash records must not poison the store: only
        # the shards that genuinely ran were written.
        assert result.orchestration["store"]["writes"] == (
            result.orchestration["tasks"] - len(quarantined)
        )
        assert all(not entry.stale for entry in store.entries())
        assert len(store.entries()) == (
            result.orchestration["tasks"] - len(quarantined)
        )


class TestRunCampaignDirect:
    def test_default_pool_is_serial(self):
        result = run_campaign(run_grid_campaign())
        assert result.records == run_grid_campaign()._run_serial().records
        assert result.orchestration["jobs"] == 1

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError):
            run_campaign(run_grid_campaign(), shard_size=0)

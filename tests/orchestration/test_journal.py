"""Tests for the JSONL checkpoint journal and TaskGraph resumption."""

from repro.orchestration import Journal, SerialPool, Task, TaskGraph

from tests.orchestration._targets import record_call, square


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        assert not journal.exists()
        journal.append("t:00", "fp0", {"value": 1})
        journal.append("t:01", "fp1", [1.5, None])
        entries = journal.load()
        assert entries["t:00"]["fingerprint"] == "fp0"
        assert entries["t:00"]["result"] == {"value": 1}
        assert entries["t:01"]["result"] == [1.5, None]

    def test_missing_file_loads_empty(self, tmp_path):
        assert Journal(tmp_path / "nope.jsonl").load() == {}

    def test_torn_tail_line_skipped(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("t:00", "fp0", 1)
        journal.append("t:01", "fp1", 2)
        text = journal.path.read_text()
        lines = text.splitlines()
        journal.path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        entries = journal.load()
        assert set(entries) == {"t:00"}

    def test_last_line_wins(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("t:00", "old", 1)
        journal.append("t:00", "new", 2)
        assert journal.load()["t:00"]["result"] == 2

    def test_clear(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("t:00", "fp", 1)
        journal.clear()
        assert not journal.exists()
        journal.clear()  # idempotent


class TestTaskGraphCheckpointing:
    def test_completed_tasks_not_reexecuted(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        counter = tmp_path / "calls"
        tasks = [
            Task(f"t:{i}", f"fp{i}", record_call, (str(counter), i))
            for i in range(4)
        ]
        first = TaskGraph(tasks).run(SerialPool(), journal)
        assert all(o.status == "done" for o in first.values())
        assert counter.read_text().count("\n") == 4

        second = TaskGraph(tasks).run(SerialPool(), journal)
        assert all(o.status == "cached" for o in second.values())
        assert [o.result for o in second.values()] == [0, 1, 2, 3]
        assert counter.read_text().count("\n") == 4  # nothing re-ran

    def test_fingerprint_mismatch_reexecutes(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        counter = tmp_path / "calls"
        old = [Task("t:0", "fp-old", record_call, (str(counter), 5))]
        TaskGraph(old).run(SerialPool(), journal)
        new = [Task("t:0", "fp-new", record_call, (str(counter), 6))]
        outcomes = TaskGraph(new).run(SerialPool(), journal)
        assert outcomes["t:0"].status == "done"
        assert outcomes["t:0"].result == 6
        # The re-run checkpoints under the new fingerprint.
        assert journal.load()["t:0"]["fingerprint"] == "fp-new"

    def test_quarantined_tasks_not_checkpointed(self, tmp_path):
        from tests.orchestration._targets import boom

        journal = Journal(tmp_path / "j.jsonl")
        tasks = [Task("t:0", "fp", boom, ())]
        outcomes = TaskGraph(tasks).run(SerialPool(max_retries=0, backoff=0), journal)
        assert outcomes["t:0"].status == "quarantined"
        assert journal.load() == {}

    def test_encode_decode_applied(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        tasks = [Task("t:0", "fp", square, (3,))]
        graph = TaskGraph(
            tasks, encode=lambda r: {"wrapped": r}, decode=lambda p: p["wrapped"]
        )
        graph.run(SerialPool(), journal)
        assert journal.load()["t:0"]["result"] == {"wrapped": 9}
        cached = graph.run(SerialPool(), journal)
        assert cached["t:0"].status == "cached"
        assert cached["t:0"].result == 9

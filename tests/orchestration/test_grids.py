"""Refinement-grid orchestration: parity, resume, incremental reuse."""

import dataclasses

import pytest

from repro.core.preprocess import LearnerFactory, model_complexity
from repro.core.refine import RefinementGrid, refine
from repro.orchestration import (
    Journal,
    ProcessPool,
    SerialPool,
    dataset_fingerprint,
    run_refinement,
)
from repro.orchestration.grids import _callable_tag

from tests.orchestration._targets import run_grid_campaign


@pytest.fixture(scope="module")
def dataset():
    return run_grid_campaign()._run_serial().to_dataset("GT-ds")


GRID = RefinementGrid(
    undersample_levels=(25.0, 60.0),
    oversample_levels=(200.0,),
    neighbour_counts=(3,),
)


def _serial(dataset, seed=3):
    return refine(
        dataset,
        LearnerFactory("c45"),
        GRID,
        folds=3,
        seed=seed,
        complexity=model_complexity,
    )


def _assert_trials_equal(a, b):
    assert len(a.trials) == len(b.trials)
    for ta, tb in zip(a.trials, b.trials):
        assert ta.plan == tb.plan
        assert ta.evaluation.summary() == tb.evaluation.summary()
        for fa, fb in zip(ta.evaluation.folds, tb.evaluation.folds):
            assert (fa.confusion.matrix == fb.confusion.matrix).all()
            assert fa.complexity == fb.complexity
    assert a.best.plan == b.best.plan
    assert a.best.evaluation.summary() == b.best.evaluation.summary()


class TestParity:
    def test_serial_pool_matches_serial_loop(self, dataset):
        parallel = run_refinement(
            dataset, LearnerFactory("c45"), GRID,
            folds=3, seed=3, complexity=model_complexity, pool=SerialPool(),
        )
        _assert_trials_equal(_serial(dataset), parallel)

    def test_process_pool_matches_serial_loop(self, dataset):
        with ProcessPool(3, backoff=0) as pool:
            parallel = run_refinement(
                dataset, LearnerFactory("c45"), GRID,
                folds=3, seed=3, complexity=model_complexity, pool=pool,
            )
        _assert_trials_equal(_serial(dataset), parallel)

    def test_refine_delegates_to_pool(self, dataset):
        with ProcessPool(2, backoff=0) as pool:
            via_refine = refine(
                dataset, LearnerFactory("c45"), GRID,
                folds=3, seed=3, complexity=model_complexity, pool=pool,
            )
        _assert_trials_equal(_serial(dataset), via_refine)

    def test_empty_grid_rejected(self, dataset):
        empty = RefinementGrid(
            undersample_levels=(), oversample_levels=(), neighbour_counts=()
        )
        with pytest.raises(ValueError):
            run_refinement(
                dataset, LearnerFactory("c45"), empty, pool=SerialPool()
            )


class TestJournalledRefinement:
    def test_second_run_fully_cached(self, dataset, tmp_path):
        journal = Journal(tmp_path / "g.jsonl")
        first = run_refinement(
            dataset, LearnerFactory("c45"), GRID,
            folds=3, seed=3, complexity=model_complexity,
            pool=SerialPool(), journal=journal,
        )
        entries_before = len(journal.load())
        assert entries_before == GRID.size()
        again = run_refinement(
            dataset, LearnerFactory("c45"), GRID,
            folds=3, seed=3, complexity=model_complexity,
            pool=SerialPool(), journal=journal,
        )
        _assert_trials_equal(first, again)
        # No new journal lines: nothing was re-executed.
        assert len(journal.path.read_text().splitlines()) == entries_before

    def test_grid_growth_reuses_existing_trials(self, dataset, tmp_path):
        journal = Journal(tmp_path / "g.jsonl")
        run_refinement(
            dataset, LearnerFactory("c45"), GRID,
            folds=3, seed=3, complexity=model_complexity,
            pool=SerialPool(), journal=journal,
        )
        lines_before = len(journal.path.read_text().splitlines())
        # Oversample levels enumerate last, so appending one keeps every
        # earlier plan's (index, plan) identity: their checkpoints are
        # reused and only the new trials execute.
        grown = dataclasses.replace(GRID, oversample_levels=(200.0, 400.0))
        run_refinement(
            dataset, LearnerFactory("c45"), grown,
            folds=3, seed=3, complexity=model_complexity,
            pool=SerialPool(), journal=journal,
        )
        lines_after = len(journal.path.read_text().splitlines())
        assert lines_after - lines_before == grown.size() - GRID.size()

    def test_seed_change_invalidates_trials(self, dataset, tmp_path):
        journal = Journal(tmp_path / "g.jsonl")
        run_refinement(
            dataset, LearnerFactory("c45"), GRID,
            folds=3, seed=3, complexity=model_complexity,
            pool=SerialPool(), journal=journal,
        )
        lines_before = len(journal.path.read_text().splitlines())
        run_refinement(
            dataset, LearnerFactory("c45"), GRID,
            folds=3, seed=4, complexity=model_complexity,
            pool=SerialPool(), journal=journal,
        )
        assert (
            len(journal.path.read_text().splitlines())
            == lines_before + GRID.size()
        )


class TestSharedJournalIncremental:
    def test_campaign_shards_survive_grid_changes(self, tmp_path):
        """The FastFlip property: one journal, campaign + trials; when
        only the grid changes, every campaign shard is reused."""
        journal = Journal(tmp_path / "shared.jsonl")
        campaign = run_grid_campaign().run(pool=SerialPool(), journal=journal)
        dataset = campaign.to_dataset("GT-ds")
        run_refinement(
            dataset, LearnerFactory("c45"), GRID,
            folds=3, seed=3, complexity=model_complexity,
            pool=SerialPool(), journal=journal,
        )
        # Re-run the campaign against the shared journal: all cached.
        again = run_grid_campaign().run(pool=SerialPool(), journal=journal)
        assert again.orchestration["executed"] == 0
        assert again.records == campaign.records
        # A different grid re-executes trials but no campaign shards.
        other = dataclasses.replace(GRID, neighbour_counts=(5,))
        run_refinement(
            dataset, LearnerFactory("c45"), other,
            folds=3, seed=3, complexity=model_complexity,
            pool=SerialPool(), journal=journal,
        )
        final = run_grid_campaign().run(pool=SerialPool(), journal=journal)
        assert final.orchestration["executed"] == 0


class TestFingerprints:
    def test_dataset_fingerprint_stable_and_sensitive(self, dataset):
        assert dataset_fingerprint(dataset) == dataset_fingerprint(dataset)
        other = run_grid_campaign(test_cases=(0, 2))._run_serial().to_dataset("x")
        assert dataset_fingerprint(dataset) != dataset_fingerprint(other)

    def test_callable_tag_prefers_fingerprint(self):
        factory = LearnerFactory("c45")
        assert _callable_tag(factory) == "learner:c45"
        assert _callable_tag(model_complexity).endswith("model_complexity")
        assert _callable_tag(None) is None

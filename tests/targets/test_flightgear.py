"""Tests for the FlightGear takeoff simulator target."""

import pytest

from repro.injection.bitflip import BitFlip
from repro.injection.instrument import (
    GoldenHarness,
    InjectionHarness,
    Location,
    Probe,
)
from repro.targets.flightgear import FlightGearTarget, scenario_for
from repro.targets.flightgear.spec import (
    BASE_WEIGHT_LBS,
    FailureReport,
    TakeoffSummary,
    allowed_takeoff_distance,
    evaluate_takeoff,
)

# Fast configuration used throughout (the spec must hold at any scale).
FAST = dict(init_iterations=40, run_iterations=200, dt=0.2)


class TestScenarios:
    def test_grid_mapping(self):
        s0 = scenario_for(0)
        assert s0.mass_lbs == 1300.0 and s0.wind_kph == 0.0
        s8 = scenario_for(8)
        assert s8.mass_lbs == 2100.0 and s8.wind_kph == 60.0

    def test_unit_conversions(self):
        s = scenario_for(2)  # 1300 lbs, 60 kph
        assert s.mass_kg == pytest.approx(1300 * 0.45359237)
        assert s.headwind_ms == pytest.approx(60 / 3.6)

    def test_fuel_positive_for_all_scenarios(self):
        for tc in range(9):
            assert scenario_for(tc).fuel_kg > 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            scenario_for(9)
        with pytest.raises(ValueError):
            scenario_for(-1)


class TestSpec:
    def summary(self, **overrides):
        base = dict(
            passed_critical_speed=True,
            passed_rotation_speed=True,
            max_airspeed=50.0,
            lifted_off=True,
            cleared_runway=True,
            distance_at_clear=300.0,
            max_pitch_rate_before_clear=3.0,
            stalled_during_climb=False,
        )
        base.update(overrides)
        return TakeoffSummary(**base)

    def test_clean_takeoff_passes(self):
        report = evaluate_takeoff(self.summary(), 1300.0)
        assert not report.any_failure

    def test_speed_failure(self):
        report = evaluate_takeoff(self.summary(max_airspeed=30.0), 1300.0)
        assert report.speed_failure

    def test_never_lifting_off_is_speed_failure(self):
        report = evaluate_takeoff(
            self.summary(lifted_off=False, cleared_runway=False,
                         distance_at_clear=float("inf")),
            1300.0,
        )
        assert report.speed_failure and report.distance_failure

    def test_distance_allowance_formula(self):
        base = allowed_takeoff_distance(BASE_WEIGHT_LBS)
        # +10 m per 200 lbs over base weight.
        assert allowed_takeoff_distance(BASE_WEIGHT_LBS + 400) == base + 20.0
        # No reduction below base weight.
        assert allowed_takeoff_distance(BASE_WEIGHT_LBS - 400) == base

    def test_distance_failure(self):
        allowed = allowed_takeoff_distance(1300.0)
        report = evaluate_takeoff(
            self.summary(distance_at_clear=allowed + 1), 1300.0
        )
        assert report.distance_failure

    def test_angle_failure_pitch_rate(self):
        report = evaluate_takeoff(
            self.summary(max_pitch_rate_before_clear=4.6), 1300.0
        )
        assert report.angle_failure

    def test_angle_failure_stall(self):
        report = evaluate_takeoff(
            self.summary(stalled_during_climb=True), 1300.0
        )
        assert report.angle_failure


class TestGoldenRuns:
    @pytest.mark.parametrize("tc", range(9))
    def test_all_scenarios_take_off_cleanly(self, tc):
        """Golden runs must satisfy the failure spec at the default
        (paper) configuration -- this is the simulator's calibration."""
        target = FlightGearTarget()
        report = target.run(tc, GoldenHarness())
        assert isinstance(report, FailureReport)
        assert not report.any_failure, report

    def test_heavier_aircraft_needs_more_runway(self):
        target = FlightGearTarget(**FAST)
        light = target.run(0, GoldenHarness()).summary
        heavy = target.run(6, GoldenHarness()).summary
        assert heavy.distance_at_clear > light.distance_at_clear

    def test_headwind_shortens_ground_roll(self):
        target = FlightGearTarget(**FAST)
        calm = target.run(0, GoldenHarness()).summary
        windy = target.run(2, GoldenHarness()).summary
        assert windy.distance_at_clear < calm.distance_at_clear

    def test_deterministic(self):
        target = FlightGearTarget(**FAST)
        assert target.run(4, GoldenHarness()) == target.run(4, GoldenHarness())

    def test_probe_occurrences_count_iterations(self):
        target = FlightGearTarget(**FAST)
        harness = GoldenHarness()
        target.run(0, harness)
        total = FAST["init_iterations"] + FAST["run_iterations"]
        for module in ("Gear", "Mass"):
            assert harness.occurrences(Probe(module, Location.ENTRY)) == total

    def test_variables_match_probe_state(self):
        target = FlightGearTarget(**FAST)
        harness = GoldenHarness()
        target.run(0, harness)
        for module in ("Gear", "Mass"):
            for location in (Location.ENTRY, Location.EXIT):
                declared = {
                    s.name for s in target.variables_of(module, location)
                }
                sample = harness.samples_at(Probe(module, location))[0]
                assert declared == set(sample.variables)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FlightGearTarget(run_iterations=0)
        with pytest.raises(ValueError):
            FlightGearTarget(dt=0)


class TestInjectionBehaviour:
    def run_with_flip(self, variable, bit, module="Gear",
                      location=Location.ENTRY, time=60):
        target = FlightGearTarget(**FAST)
        kind = "bool" if variable == "on_ground" else "float64"
        harness = InjectionHarness(
            Probe(module, location), BitFlip(variable, kind, bit), time,
            sample_probe=Probe(module, location),
        )
        report = target.run(0, harness)
        return target.is_failure(None, report), report

    def test_huge_friction_causes_failure(self):
        # Raising mu_roll's exponent by 2^10 makes friction insurmountable
        # during the ground roll.
        failed, report = self.run_with_flip("mu_roll", 62, time=45)
        assert failed

    def test_low_mantissa_flip_is_benign(self):
        failed, _ = self.run_with_flip("mu_roll", 2, time=45)
        assert not failed

    def test_fuel_exponent_flip_disturbs_mass(self):
        # Fuel is ~68 kg (biased exponent 1029); setting exponent bit 3
        # (overall bit 55) multiplies it by 2^8 -> a 17-tonne aircraft
        # that cannot take off.  (Bit 62 is already set, so flipping it
        # *shrinks* fuel -- a lighter aircraft takes off fine.)
        failed, report = self.run_with_flip(
            "fuel", 55, module="Mass", time=45
        )
        assert failed
        benign, _ = self.run_with_flip("fuel", 62, module="Mass", time=45)
        assert not benign

    def test_gear_damage_latches(self):
        """A one-iteration normal-force spike at the gear exit damages
        the gear persistently."""
        from repro.targets.flightgear.gear import GearModule

        gear = GearModule()
        harness = GoldenHarness()
        gear.step(harness, weight=9000.0, lift=0.0, airspeed=10.0,
                  rho=1.225, altitude=0.0, dt=0.1)
        assert not gear.damaged
        # Simulate a corrupted exit normal force via a big load.
        gear.step(harness, weight=GearModule.STRUCTURAL_LIMIT * 2,
                  lift=0.0, airspeed=10.0, rho=1.225, altitude=0.0, dt=0.1)
        assert gear.damaged

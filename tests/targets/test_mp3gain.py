"""Tests for the Mp3Gain normaliser target."""

import math

import numpy as np
import pytest

from repro.injection.bitflip import BitFlip
from repro.injection.golden import capture_golden_run
from repro.injection.instrument import (
    GoldenHarness,
    InjectionHarness,
    Location,
    Probe,
)
from repro.targets.mp3gain import Mp3GainTarget, analyse_track, make_track
from repro.targets.mp3gain.analysis import GAnalysisModule
from repro.targets.mp3gain.replaygain import (
    REFERENCE_LOUDNESS_DB,
    RGainModule,
)
from repro.targets.mp3gain.signal import make_batch

FAST = dict(n_tracks=4, min_samples=256, max_samples=512)


class TestSignal:
    def test_deterministic(self):
        a = make_track(1, 2, 512)
        b = make_track(1, 2, 512)
        assert np.array_equal(a, b)

    def test_distinct_tracks(self):
        assert not np.array_equal(make_track(0, 0, 512), make_track(0, 1, 512))

    def test_in_range(self):
        track = make_track(3, 4, 1024)
        assert np.all(np.abs(track) <= 1.0)

    def test_batch_sizes_vary(self):
        batch = make_batch(0, 10, 256, 1024)
        sizes = {len(t) for t in batch}
        assert len(sizes) > 1

    def test_loudness_spread(self):
        """Tracks must span a meaningful loudness range so
        normalisation has work to do."""
        loudnesses = [
            analyse_track(make_track(0, i, 2048), 256, 95.0).loudness_db
            for i in range(12)
        ]
        assert max(loudnesses) - min(loudnesses) > 6.0


class TestAnalysis:
    def test_louder_signal_higher_loudness(self):
        quiet = analyse_track(0.05 * np.sin(np.linspace(0, 50, 2048)), 256, 95)
        loud = analyse_track(0.5 * np.sin(np.linspace(0, 50, 2048)), 256, 95)
        assert loud.loudness_db > quiet.loudness_db

    def test_known_rms(self):
        # Constant signal 0.5: RMS = 0.5 -> -6.02 dB.
        result = analyse_track(np.full(1024, 0.5), 128, 95)
        assert result.loudness_db == pytest.approx(
            20 * math.log10(0.5), abs=1e-6
        )

    def test_silence_floor(self):
        result = analyse_track(np.zeros(1024), 128, 95)
        assert result.loudness_db == -120.0

    def test_peak(self):
        samples = np.zeros(512)
        samples[100] = -0.9
        assert analyse_track(samples, 64, 95).peak == pytest.approx(0.9)

    def test_frame_count(self):
        assert analyse_track(np.zeros(1000), 256, 95).frame_count == 3

    def test_percentile_clamped(self):
        result = analyse_track(np.full(512, 0.1), 64, 300.0)
        assert math.isfinite(result.loudness_db)

    def test_module_clamps_corrupt_frame_size(self):
        module = GAnalysisModule()
        harness = GoldenHarness()
        samples = make_track(0, 0, 512)
        result = module.step(harness, 0, samples)
        assert math.isfinite(result.loudness_db)


class TestReplayGain:
    def test_normalises_towards_reference(self):
        quiet = 0.02 * np.sin(np.linspace(0, 80, 4096))
        analysis = analyse_track(quiet, 256, 95)
        module = RGainModule()
        out = module.step(GoldenHarness(), 0, quiet, analysis)
        normalised = out.pcm16.astype(float) / 32767.0
        new_loudness = analyse_track(normalised, 256, 95).loudness_db
        assert abs(new_loudness - REFERENCE_LOUDNESS_DB) < abs(
            analysis.loudness_db - REFERENCE_LOUDNESS_DB
        )

    def test_peak_protection_prevents_clipping(self):
        # Quiet but peaky signal: gain must be limited by the peak.
        samples = np.zeros(2048)
        samples[::100] = 0.9
        analysis = analyse_track(samples, 256, 95)
        out = RGainModule().step(GoldenHarness(), 0, samples, analysis)
        assert out.clip_count == 0
        assert np.abs(out.pcm16).max() <= 32767

    def test_pcm16_dtype(self):
        samples = make_track(0, 0, 512)
        analysis = analyse_track(samples, 64, 95)
        out = RGainModule().step(GoldenHarness(), 0, samples, analysis)
        assert out.pcm16.dtype == np.int16


class TestTargetGolden:
    def test_deterministic(self):
        target = Mp3GainTarget(**FAST)
        assert target.run(2, GoldenHarness()) == target.run(2, GoldenHarness())

    def test_output_one_digest_per_track(self):
        target = Mp3GainTarget(**FAST)
        out = target.run(0, GoldenHarness())
        assert len(out) == FAST["n_tracks"]

    def test_probe_occurrences_count_tracks(self):
        target = Mp3GainTarget(**FAST)
        harness = GoldenHarness()
        target.run(0, harness)
        for module in ("GAnalysis", "RGain"):
            assert harness.occurrences(
                Probe(module, Location.ENTRY)
            ) == FAST["n_tracks"]

    def test_variables_match_probe_state(self):
        target = Mp3GainTarget(**FAST)
        harness = GoldenHarness()
        target.run(0, harness)
        for module in ("GAnalysis", "RGain"):
            for location in (Location.ENTRY, Location.EXIT):
                declared = {
                    s.name for s in target.variables_of(module, location)
                }
                sample = harness.samples_at(Probe(module, location))[0]
                assert declared == set(sample.variables)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Mp3GainTarget(n_tracks=0)
        with pytest.raises(ValueError):
            Mp3GainTarget(min_samples=10, max_samples=5)


class TestTargetInjection:
    def run_with_flip(self, module, variable, kind, bit, time=1):
        target = Mp3GainTarget(**FAST)
        golden = capture_golden_run(target, 0)
        harness = InjectionHarness(
            Probe(module, Location.ENTRY), BitFlip(variable, kind, bit), time,
            sample_probe=Probe(module, Location.ENTRY),
        )
        output = target.run(0, harness)
        return target.is_failure(golden.output, output)

    def test_gain_sign_flip_fails(self):
        assert self.run_with_flip("RGain", "gain_db", "float64", 63)

    def test_gain_low_mantissa_flip_benign(self):
        assert not self.run_with_flip("RGain", "gain_db", "float64", 0)

    def test_scratch_accumulator_resilient(self):
        assert not self.run_with_flip("GAnalysis", "rms_acc", "float64", 62)

    def test_track_index_benign(self):
        assert not self.run_with_flip("GAnalysis", "track_index", "int32", 1)

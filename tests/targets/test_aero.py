"""Physics-law tests for the FlightGear aerodynamics helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.targets.flightgear import aero
from repro.targets.flightgear.aircraft import Aircraft

AC = Aircraft()


class TestAngleOfAttack:
    def test_on_ground_equals_attitude(self):
        assert aero.angle_of_attack(0.1, vs=5.0, v=30.0, altitude=0.0) == 0.1

    def test_airborne_subtracts_path_angle(self):
        alpha = aero.angle_of_attack(0.1, vs=3.0, v=30.0, altitude=10.0)
        assert alpha == pytest.approx(0.1 - math.atan2(3.0, 30.0))

    def test_descent_increases_alpha(self):
        level = aero.angle_of_attack(0.1, 0.0, 30.0, 10.0)
        descending = aero.angle_of_attack(0.1, -3.0, 30.0, 10.0)
        assert descending > level


class TestLiftCoefficient:
    def test_linear_slope(self):
        cl0 = aero.lift_coefficient(AC, 0.0)
        cl1 = aero.lift_coefficient(AC, 0.05)
        assert cl1 - cl0 == pytest.approx(AC.cl_alpha * 0.05)

    def test_capped_at_cl_max(self):
        assert aero.lift_coefficient(AC, 1.0) == AC.cl_max

    def test_floored(self):
        assert aero.lift_coefficient(AC, -10.0) == -0.2


class TestForces:
    def test_lift_quadratic_in_airspeed(self):
        cl = 1.0
        assert aero.lift(AC, 20.0, cl) == pytest.approx(
            4.0 * aero.lift(AC, 10.0, cl)
        )

    def test_zero_at_rest(self):
        assert aero.lift(AC, 0.0, 1.0) == 0.0
        assert aero.drag(AC, 0.0, 1.0) == 0.0

    def test_induced_drag_quadratic_in_cl(self):
        v = 30.0
        base = aero.drag(AC, v, 0.0)
        d1 = aero.drag(AC, v, 1.0) - base
        d2 = aero.drag(AC, v, 2.0) - base
        assert d2 == pytest.approx(4.0 * d1)

    def test_drag_positive_for_any_cl(self):
        assert aero.drag(AC, 30.0, -0.2) > 0

    @given(v=st.floats(0, 100), cl=st.floats(-0.2, 1.7))
    @settings(deadline=None, max_examples=50)
    def test_forces_finite_and_signed(self, v, cl):
        lift = aero.lift(AC, v, cl)
        drag = aero.drag(AC, v, cl)
        assert math.isfinite(lift) and math.isfinite(drag)
        assert drag >= 0
        if lift != 0.0:  # zero lift carries no sign (cl or v may be -0.0)
            assert (lift > 0) == (cl > 0)


class TestStallSpeed:
    def test_scales_with_sqrt_weight(self):
        assert aero.stall_speed(AC, 8000.0) == pytest.approx(
            aero.stall_speed(AC, 2000.0) * 2.0
        )

    def test_lift_at_stall_speed_carries_weight(self):
        weight = 7000.0
        v_stall = aero.stall_speed(AC, weight)
        assert aero.lift(AC, v_stall, AC.cl_max) == pytest.approx(weight)

    def test_degenerate_weight_guarded(self):
        assert aero.stall_speed(AC, -5.0) == aero.stall_speed(AC, 1.0)

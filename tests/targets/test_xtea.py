"""Tests for the XTEA cipher and the encrypted-archive path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.injection.instrument import GoldenHarness
from repro.targets.sevenzip import SevenZipTarget
from repro.targets.sevenzip.xtea import (
    xtea_ctr,
    xtea_decrypt_block,
    xtea_encrypt_block,
)

KEY = bytes(range(16))


class TestXteaBlock:
    def test_published_test_vector(self):
        # Standard XTEA vector: all-zero key and plaintext encrypts to
        # words (0xDEE9D4D8, 0xF7131ED9); our blocks serialise words
        # little-endian.
        key = bytes(16)
        plain = bytes(8)
        cipher = xtea_encrypt_block(plain, key)
        assert cipher.hex() == "d8d4e9ded91e13f7"

    def test_second_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plain = bytes.fromhex("4142434445464748")
        cipher = xtea_encrypt_block(plain, key)
        assert xtea_decrypt_block(cipher, key) == plain

    def test_encrypt_changes_data(self):
        assert xtea_encrypt_block(b"12345678", KEY) != b"12345678"

    def test_block_size_checked(self):
        with pytest.raises(ValueError):
            xtea_encrypt_block(b"short", KEY)
        with pytest.raises(ValueError):
            xtea_decrypt_block(b"short", KEY)

    def test_key_size_checked(self):
        with pytest.raises(ValueError):
            xtea_encrypt_block(bytes(8), b"tiny")

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=16, max_size=16))
    @settings(deadline=None, max_examples=50)
    def test_roundtrip_property(self, block, key):
        assert xtea_decrypt_block(xtea_encrypt_block(block, key), key) == block


class TestCtrMode:
    def test_self_inverse(self):
        data = b"the quick brown fox jumps over the lazy dog"
        cipher = xtea_ctr(data, KEY, nonce=7)
        assert cipher != data
        assert xtea_ctr(cipher, KEY, nonce=7) == data

    def test_nonce_matters(self):
        data = bytes(32)
        assert xtea_ctr(data, KEY, nonce=0) != xtea_ctr(data, KEY, nonce=1)

    def test_partial_final_block(self):
        data = b"12345"  # not a multiple of 8
        assert xtea_ctr(xtea_ctr(data, KEY), KEY) == data

    def test_empty(self):
        assert xtea_ctr(b"", KEY) == b""

    @given(st.binary(max_size=200), st.integers(0, 2**32))
    @settings(deadline=None, max_examples=50)
    def test_ctr_roundtrip_property(self, data, nonce):
        assert xtea_ctr(xtea_ctr(data, KEY, nonce), KEY, nonce) == data


class TestEncryptedArchiver:
    def test_encrypted_roundtrip_lossless(self):
        target = SevenZipTarget(n_files=5, min_size=40, max_size=90,
                                encrypt=True)
        import zlib

        out = target.run(0, GoldenHarness())
        files = target._make_files(0)
        assert out[1] == tuple(zlib.crc32(f) for f in files)

    def test_encrypted_archive_differs_from_plain(self):
        plain = SevenZipTarget(n_files=4, min_size=40, max_size=80)
        sealed = SevenZipTarget(n_files=4, min_size=40, max_size=80,
                                encrypt=True)
        files = plain._make_files(0)
        archive_plain = plain._compress(files, GoldenHarness())
        archive_sealed = sealed._compress(
            files, GoldenHarness(), sealed._key_for(0)
        )
        assert archive_plain[0]["payload"] != archive_sealed[0]["payload"]

    def test_encrypted_target_deterministic(self):
        target = SevenZipTarget(n_files=4, min_size=40, max_size=80,
                                encrypt=True)
        assert target.run(2, GoldenHarness()) == target.run(2, GoldenHarness())

    def test_injection_campaign_on_encrypted_target(self):
        from repro.injection import Campaign, CampaignConfig, Location

        target = SevenZipTarget(n_files=4, min_size=40, max_size=80,
                                encrypt=True)
        config = CampaignConfig(
            module="LDecode",
            injection_location=Location.ENTRY,
            sample_location=Location.ENTRY,
            test_cases=(0, 1),
            injection_times=(1, 2),
            bits={"int32": (0, 8, 16, 31)},
        )
        result = Campaign(target, config).run()
        assert 0 < result.failure_rate < 0.8

"""Deeper unit tests of target-system internals and edge cases."""

import math

import numpy as np
import pytest

from repro.injection.instrument import GoldenHarness
from repro.targets.flightgear.aircraft import Aircraft
from repro.targets.flightgear.gear import GearModule
from repro.targets.flightgear.massbalance import MassModule
from repro.targets.flightgear.aircraft import scenario_for
from repro.targets.mp3gain.analysis import analyse_track
from repro.targets.mp3gain.signal import SAMPLE_RATE, make_track
from repro.targets.sevenzip.huffman import code_lengths, huffman_encode
from repro.targets.sevenzip.lz77 import MAX_MATCH, lz77_compress, lz77_decompress


class TestLZ77Edges:
    def test_max_match_length_respected(self):
        data = b"a" * 1000
        tokens = lz77_compress(data)
        assert lz77_decompress(tokens) == data
        # Every match token's length field fits the declared cap.
        i = 0
        while i < len(tokens):
            if tokens[i] == 0x01:
                assert tokens[i + 3] <= MAX_MATCH
                i += 4
            else:
                i += 2

    def test_window_bounds_offsets(self):
        data = (b"unique-prefix-" + b"x" * 300) * 3
        tokens = lz77_compress(data, window=64)
        i = 0
        while i < len(tokens):
            if tokens[i] == 0x01:
                offset = (tokens[i + 1] << 8) | tokens[i + 2]
                assert offset <= 64
                i += 4
            else:
                i += 2
        assert lz77_decompress(tokens) == data

    def test_overlapping_match_copy(self):
        # "aaaa..." forces matches whose source overlaps the output
        # being written (offset 1, length > 1).
        data = b"ab" + b"a" * 50
        assert lz77_decompress(lz77_compress(data)) == data


class TestHuffmanEdges:
    def test_length_limiting_on_skewed_distribution(self):
        # Fibonacci-like frequencies force deep Huffman trees; lengths
        # must be capped at 15 with a valid Kraft sum.
        frequencies = [0] * 256
        a, b = 1, 1
        for i in range(24):
            frequencies[i] = a
            a, b = b, a + b
        lengths = code_lengths(frequencies)
        assert max(lengths) <= 15
        kraft = sum(2.0**-l for l in lengths if l)
        assert kraft <= 1.0 + 1e-12

    def test_two_symbols_one_bit_each(self):
        frequencies = [0] * 256
        frequencies[65], frequencies[66] = 10, 20
        lengths = code_lengths(frequencies)
        assert lengths[65] == lengths[66] == 1

    def test_encode_reports_exact_bit_count(self):
        data = b"abcabc"
        lengths, payload, bits = huffman_encode(data)
        expected = sum(lengths[b] for b in data)
        assert bits == expected
        assert len(payload) == (bits + 7) // 8


class TestGearModule:
    def harness(self):
        return GoldenHarness()

    def test_load_transfers_to_wings(self):
        gear = GearModule()
        no_lift = gear.step(self.harness(), 9000.0, 0.0, 10.0, 1.225, 0.0, 0.1)
        gear2 = GearModule()
        half_lift = gear2.step(
            self.harness(), 9000.0, 4500.0, 10.0, 1.225, 0.0, 0.1
        )
        assert no_lift.normal == pytest.approx(9000.0)
        assert half_lift.normal == pytest.approx(4500.0)
        assert half_lift.friction < no_lift.friction

    def test_no_ground_force_airborne(self):
        gear = GearModule()
        forces = gear.step(self.harness(), 9000.0, 9500.0, 35.0, 1.225, 10.0, 0.1)
        assert forces.normal == 0.0
        assert forces.friction == 0.0
        assert forces.drag > 0.0  # legs still in the airstream

    def test_compression_approaches_static_value(self):
        gear = GearModule()
        harness = self.harness()
        for _ in range(300):
            gear.step(harness, 9000.0, 0.0, 0.0, 1.225, 0.0, 0.1)
        static = 9000.0 / gear.spring_k
        assert gear.compression == pytest.approx(static, rel=0.1)

    def test_corrupted_zero_stiffness_guarded(self):
        gear = GearModule()
        gear.spring_k = 0.0
        forces = gear.step(self.harness(), 9000.0, 0.0, 5.0, 1.225, 0.0, 0.1)
        assert math.isfinite(forces.normal)

    def test_damage_multiplies_friction(self):
        healthy = GearModule()
        damaged = GearModule()
        damaged.damaged = True
        f_healthy = healthy.step(self.harness(), 9000.0, 0.0, 10.0, 1.225, 0.0, 0.1)
        f_damaged = damaged.step(self.harness(), 9000.0, 0.0, 10.0, 1.225, 0.0, 0.1)
        assert f_damaged.friction == pytest.approx(6.0 * f_healthy.friction)
        # Damage must not compound across iterations.
        again = damaged.step(self.harness(), 9000.0, 0.0, 10.0, 1.225, 0.0, 0.1)
        assert again.friction == pytest.approx(f_damaged.friction)


class TestMassModule:
    def test_fuel_burns_at_full_throttle(self):
        module = MassModule(Aircraft(), scenario_for(0))
        before = module.fuel
        module.step(GoldenHarness(), dt=1.0, throttle=1.0)
        assert module.fuel == pytest.approx(
            before - Aircraft().fuel_burn_rate, rel=1e-9
        )

    def test_no_burn_at_idle(self):
        module = MassModule(Aircraft(), scenario_for(0))
        before = module.fuel
        module.step(GoldenHarness(), dt=1.0, throttle=0.0)
        assert module.fuel == before

    def test_fuel_never_negative(self):
        module = MassModule(Aircraft(), scenario_for(0))
        module.fuel = 1e-6
        state = module.step(GoldenHarness(), dt=100.0, throttle=1.0)
        assert module.fuel == 0.0
        assert state.mass == pytest.approx(module.dry_mass)

    def test_weight_is_mass_times_g(self):
        module = MassModule(Aircraft(), scenario_for(4))
        state = module.step(GoldenHarness(), dt=0.1, throttle=1.0)
        assert state.weight == pytest.approx(state.mass * Aircraft().gravity)


class TestSignalAnalysis:
    def test_sine_rms_matches_theory(self):
        # Full-scale sine: RMS = A / sqrt(2).
        t = np.arange(8192) / SAMPLE_RATE
        sine = 0.5 * np.sin(2 * np.pi * 440.0 * t)
        result = analyse_track(sine, 256, 50.0)  # median frame RMS
        expected_db = 20 * math.log10(0.5 / math.sqrt(2))
        assert result.loudness_db == pytest.approx(expected_db, abs=0.5)

    def test_percentile_ordering(self):
        track = make_track(1, 1, 4096)
        low = analyse_track(track, 256, 5.0).loudness_db
        high = analyse_track(track, 256, 95.0).loudness_db
        assert low <= high

    def test_frame_size_one_is_sample_magnitudes(self):
        samples = np.array([0.1, -0.9, 0.5])
        result = analyse_track(samples, 1, 100.0)
        assert result.loudness_db == pytest.approx(20 * math.log10(0.9), abs=1e-6)

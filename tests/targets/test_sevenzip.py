"""Tests for the PZip archiver target (LZ77, Huffman, instrumentation)."""

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.injection.bitflip import BitFlip
from repro.injection.golden import capture_golden_run
from repro.injection.instrument import (
    GoldenHarness,
    InjectionHarness,
    Location,
    Probe,
)
from repro.targets.sevenzip import SevenZipTarget, lz77_compress, lz77_decompress
from repro.targets.sevenzip.huffman import (
    canonical_codes,
    code_lengths,
    huffman_decode,
    huffman_encode,
)


class TestLZ77:
    def test_roundtrip_simple(self):
        data = b"abcabcabcabc hello hello hello"
        tokens = lz77_compress(data)
        assert lz77_decompress(tokens) == data

    def test_compresses_repetitive_input(self):
        data = b"spam " * 100
        tokens = lz77_compress(data)
        assert len(tokens) < len(data)

    def test_empty_input(self):
        assert lz77_compress(b"") == b""
        assert lz77_decompress(b"") == b""

    def test_incompressible_input(self):
        data = bytes(range(256))
        tokens = lz77_compress(data)
        assert lz77_decompress(tokens) == data

    def test_expected_size_bounds_output(self):
        data = b"abcabcabc" * 10
        tokens = lz77_compress(data)
        assert lz77_decompress(tokens, expected_size=5) == data[:5]

    def test_corrupt_offset_terminates_cleanly(self):
        # A match referring beyond the output start stops decoding.
        tokens = bytes([0x01, 0xFF, 0xFF, 10])
        assert lz77_decompress(tokens) == b""

    def test_unknown_tag_terminates(self):
        assert lz77_decompress(bytes([0x77, 1, 2, 3])) == b""

    def test_truncated_literal(self):
        assert lz77_decompress(bytes([0x00])) == b""

    def test_window_validation(self):
        with pytest.raises(ValueError):
            lz77_compress(b"abc", window=1)

    @given(st.binary(max_size=500))
    @settings(deadline=None, max_examples=50)
    def test_roundtrip_property(self, data):
        assert lz77_decompress(lz77_compress(data)) == data

    @given(st.text(alphabet="abcd ", max_size=400))
    @settings(deadline=None, max_examples=30)
    def test_roundtrip_compressible_property(self, text):
        data = text.encode()
        assert lz77_decompress(lz77_compress(data)) == data


class TestHuffman:
    def test_roundtrip(self):
        data = b"the quick brown fox jumps over the lazy dog" * 3
        lengths, payload, bits = huffman_encode(data)
        assert huffman_decode(lengths, payload, bits, len(data)) == data

    def test_empty(self):
        lengths, payload, bits = huffman_encode(b"")
        assert huffman_decode(lengths, payload, bits, 0) == b""

    def test_single_symbol(self):
        data = b"aaaaaaa"
        lengths, payload, bits = huffman_encode(data)
        assert huffman_decode(lengths, payload, bits, len(data)) == data

    def test_code_lengths_kraft_inequality(self):
        frequencies = [0] * 256
        for i, f in enumerate([1000, 500, 250, 100, 50, 20, 5, 1]):
            frequencies[i] = f
        lengths = code_lengths(frequencies)
        kraft = sum(2.0**-l for l in lengths if l)
        assert kraft <= 1.0 + 1e-12

    def test_canonical_codes_prefix_free(self):
        frequencies = [0] * 256
        for i in range(20):
            frequencies[i] = i + 1
        codes = canonical_codes(code_lengths(frequencies))
        items = [(format(c, f"0{l}b")) for c, l in codes.values()]
        for a in items:
            for b in items:
                if a != b:
                    assert not b.startswith(a) or len(a) >= len(b)

    def test_frequent_symbols_get_short_codes(self):
        frequencies = [0] * 256
        frequencies[0] = 10_000
        frequencies[1] = 1
        frequencies[2] = 1
        lengths = code_lengths(frequencies)
        assert lengths[0] <= lengths[1]

    def test_bad_lengths_table(self):
        assert huffman_decode(b"\x01" * 10, b"\xff", 8, 10) == b""

    def test_frequencies_validation(self):
        with pytest.raises(ValueError):
            code_lengths([1, 2, 3])

    @given(st.binary(min_size=1, max_size=300))
    @settings(deadline=None, max_examples=50)
    def test_roundtrip_property(self, data):
        lengths, payload, bits = huffman_encode(data)
        assert huffman_decode(lengths, payload, bits, len(data)) == data


class TestArchiverGolden:
    def test_roundtrip_recovers_originals(self):
        target = SevenZipTarget(n_files=6, min_size=40, max_size=120)
        golden = capture_golden_run(target, 3)
        entries, digests = golden.output
        files = target._make_files(3)
        assert digests == tuple(zlib.crc32(f) for f in files)
        assert len(entries) == 6

    def test_deterministic(self):
        target = SevenZipTarget(n_files=5, min_size=40, max_size=90)
        a = target.run(1, GoldenHarness())
        b = target.run(1, GoldenHarness())
        assert a == b

    def test_distinct_test_cases_distinct_workloads(self):
        target = SevenZipTarget(n_files=5, min_size=40, max_size=90)
        assert target.run(0, GoldenHarness()) != target.run(1, GoldenHarness())

    def test_probe_occurrences_count_files(self):
        target = SevenZipTarget(n_files=7, min_size=40, max_size=90)
        harness = GoldenHarness()
        target.run(0, harness)
        for module in ("FHandle", "LDecode"):
            for location in (Location.ENTRY, Location.EXIT):
                assert harness.occurrences(Probe(module, location)) == 7

    def test_variables_match_probe_state(self):
        """Every declared variable appears in the probe state."""
        target = SevenZipTarget(n_files=3, min_size=40, max_size=90)
        harness = GoldenHarness()
        target.run(0, harness)
        for module in ("FHandle", "LDecode"):
            for location in (Location.ENTRY, Location.EXIT):
                declared = {
                    s.name for s in target.variables_of(module, location)
                }
                sample = harness.samples_at(Probe(module, location))[0]
                assert declared == set(sample.variables)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SevenZipTarget(n_files=0)
        with pytest.raises(ValueError):
            SevenZipTarget(min_size=4, max_size=2)


class TestArchiverInjection:
    def target(self):
        return SevenZipTarget(n_files=5, min_size=40, max_size=90)

    def run_with_flip(self, module, location, variable, kind, bit, time=1):
        target = self.target()
        golden = capture_golden_run(target, 0)
        harness = InjectionHarness(
            Probe(module, location), BitFlip(variable, kind, bit), time,
            sample_probe=Probe(module, location),
        )
        output = target.run(0, harness)
        return target.is_failure(golden.output, output)

    def test_file_size_truncation_fails(self):
        # Clearing a low size bit truncates the input -> different
        # recovered content.
        assert self.run_with_flip(
            "FHandle", Location.ENTRY, "file_size", "int32", 5
        )

    def test_checksum_acc_is_resilient(self):
        assert not self.run_with_flip(
            "FHandle", Location.ENTRY, "checksum_acc", "int32", 7
        )

    def test_decode_expected_size_truncation_fails(self):
        assert self.run_with_flip(
            "LDecode", Location.ENTRY, "expected_size", "int32", 4
        )

    def test_crc_expected_is_resilient(self):
        assert not self.run_with_flip(
            "LDecode", Location.ENTRY, "crc_expected", "int32", 3
        )

    def test_out_len_exit_truncation_fails(self):
        assert self.run_with_flip(
            "LDecode", Location.EXIT, "out_len", "int32", 5
        )

"""Candidate assembly: coverage modes, proof graph, builders."""

import pytest

from repro.core.detector import Detector
from repro.core.predicate import And, Comparison
from repro.portfolio.candidates import (
    CandidateSet,
    DetectorCandidate,
    candidates_from_registry,
)
from repro.runtime.registry import DetectorRegistry


def exact_set(activated=6, **detected):
    return CandidateSet(
        [
            DetectorCandidate(
                name=name,
                coverage=len(ids) / activated,
                cost_s=1e-6,
                detected=frozenset(ids),
            )
            for name, ids in detected.items()
        ],
        activated=activated,
    )


class TestDetectorCandidate:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorCandidate(name="a", coverage=1.5, cost_s=1e-6)
        with pytest.raises(ValueError):
            DetectorCandidate(name="a", coverage=0.5, cost_s=0.0)
        with pytest.raises(ValueError):
            DetectorCandidate(name="a", coverage=0.5, cost_s=1e-6, fpr=-0.1)
        with pytest.raises(ValueError):
            DetectorCandidate(name="a", coverage=0.5, cost_s=1e-6, version=0)

    def test_roundtrip(self):
        candidate = DetectorCandidate(
            name="a",
            coverage=0.5,
            cost_s=1e-6,
            fpr=0.01,
            version=3,
            detected=frozenset({4, 1}),
            provenance={"source": "test"},
        )
        payload = candidate.to_dict()
        assert payload["detected"] == [1, 4]
        assert DetectorCandidate.from_dict(payload) == candidate


class TestExactCoverage:
    def test_union_is_set_union(self):
        cs = exact_set(a={0, 1, 2}, b={2, 3}, c={5})
        assert cs.exact
        assert cs.union_coverage(["a"]) == pytest.approx(3 / 6)
        assert cs.union_coverage(["a", "b"]) == pytest.approx(4 / 6)
        assert cs.union_coverage(["a", "b", "c"]) == pytest.approx(5 / 6)
        assert cs.union_coverage([]) == 0.0

    def test_marginal_coverage(self):
        cs = exact_set(a={0, 1, 2}, b={2, 3})
        assert cs.marginal_coverage("b", ["a"]) == pytest.approx(1 / 6)
        assert cs.marginal_coverage("b", []) == pytest.approx(2 / 6)

    def test_subset_contributes_zero_marginal(self):
        cs = exact_set(big={0, 1, 2, 3}, small={1, 2})
        assert cs.marginal_coverage("small", ["big"]) == 0.0

    def test_activated_floor(self):
        with pytest.raises(ValueError):
            exact_set(activated=2, a={0, 1, 2})


class TestProofGraphCoverage:
    def test_implied_candidate_is_absorbed(self):
        cs = CandidateSet(
            [
                DetectorCandidate(name="strong", coverage=0.8, cost_s=1e-6),
                DetectorCandidate(name="weak", coverage=0.5, cost_s=1e-6),
            ],
            implications={"weak": ["strong"]},
        )
        assert not cs.exact
        # Absorbed: next to "strong", "weak" adds nothing.
        assert cs.union_coverage(["strong", "weak"]) == pytest.approx(0.8)
        assert cs.marginal_coverage("weak", ["strong"]) == 0.0
        # Alone it still counts.
        assert cs.union_coverage(["weak"]) == pytest.approx(0.5)

    def test_unproven_pairs_use_complement_product(self):
        cs = CandidateSet(
            [
                DetectorCandidate(name="a", coverage=0.5, cost_s=1e-6),
                DetectorCandidate(name="b", coverage=0.5, cost_s=1e-6),
            ]
        )
        assert cs.union_coverage(["a", "b"]) == pytest.approx(0.75)

    def test_transitive_closure(self):
        cs = CandidateSet(
            [
                DetectorCandidate(name="a", coverage=0.3, cost_s=1e-6),
                DetectorCandidate(name="b", coverage=0.5, cost_s=1e-6),
                DetectorCandidate(name="c", coverage=0.7, cost_s=1e-6),
            ],
            implications={"a": ["b"], "b": ["c"]},
        )
        assert cs.implications["a"] == frozenset({"b", "c"})
        assert cs.marginal_coverage("a", ["c"]) == 0.0

    def test_equivalent_pair_keeps_one(self):
        cs = CandidateSet(
            [
                DetectorCandidate(name="a", coverage=0.4, cost_s=1e-6),
                DetectorCandidate(name="b", coverage=0.4, cost_s=1e-6),
            ],
            implications={"a": ["b"], "b": ["a"]},
        )
        assert cs.union_coverage(["a", "b"]) == pytest.approx(0.4)

    def test_redundant_pairs(self):
        cs = CandidateSet(
            [
                DetectorCandidate(name="a", coverage=0.3, cost_s=1e-6),
                DetectorCandidate(name="b", coverage=0.5, cost_s=1e-6),
            ],
            implications={"a": ["b"]},
        )
        assert cs.redundant_pairs(["a", "b"]) == [("a", "b")]
        assert cs.redundant_pairs(["a"]) == []

    def test_unknown_implication_name_rejected(self):
        with pytest.raises(ValueError):
            CandidateSet(
                [DetectorCandidate(name="a", coverage=0.3, cost_s=1e-6)],
                implications={"a": ["ghost"]},
            )


class TestPersistence:
    def test_roundtrip(self):
        cs = CandidateSet(
            [
                DetectorCandidate(name="a", coverage=0.3, cost_s=1e-6),
                DetectorCandidate(name="b", coverage=0.5, cost_s=2e-6),
            ],
            implications={"a": ["b"]},
        )
        loaded = CandidateSet.from_dict(cs.to_dict())
        assert loaded.names() == ["a", "b"]
        assert loaded.implications == cs.implications
        assert loaded.to_dict() == cs.to_dict()

    def test_rejects_other_formats(self):
        with pytest.raises(ValueError):
            CandidateSet.from_dict({"format": "something.else"})


class TestFromRegistry:
    def test_proofs_populate_implications(self):
        registry = DetectorRegistry(lint_policy="off")
        narrow = And([Comparison("v", ">", 5.0), Comparison("w", ">", 0.0)])
        wide = Comparison("v", ">", 5.0)
        registry.register(Detector(narrow, name="narrow"))
        registry.register(Detector(wide, name="wide"))
        registry.register(
            Detector(Comparison("u", "<=", 0.0), name="other")
        )
        cs = candidates_from_registry(
            registry,
            coverage={"narrow": 0.4, "wide": 0.6, "other": 0.2},
            costs={"narrow": 2e-6, "wide": 1e-6, "other": 1e-6},
        )
        # narrow => wide is provable, so narrow adds nothing next to it.
        assert "wide" in cs.implications["narrow"]
        assert cs.marginal_coverage("narrow", ["wide"]) == 0.0
        assert cs.marginal_coverage("other", ["wide"]) > 0.0

    def test_missing_measurement_rejected(self):
        registry = DetectorRegistry(lint_policy="off")
        registry.register(Detector(Comparison("v", ">", 0.0), name="only"))
        with pytest.raises(ValueError, match="coverage"):
            candidates_from_registry(registry, coverage={}, costs={"only": 1e-6})
        with pytest.raises(ValueError, match="cost"):
            candidates_from_registry(registry, coverage={"only": 0.5}, costs={})

"""`repro portfolio` shell: solve, pareto, apply, drift."""

import json

import pytest

from repro.cli import main
from repro.core.detector import Detector
from repro.core.predicate import Comparison, Or
from repro.portfolio.candidates import CandidateSet, DetectorCandidate
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.registry import DetectorRegistry


@pytest.fixture
def candidates_path(tmp_path):
    candidates = CandidateSet(
        [
            DetectorCandidate(
                name="hi", coverage=0.5, cost_s=1e-6,
                detected=frozenset({0, 1}),
            ),
            DetectorCandidate(
                name="lo", coverage=0.5, cost_s=2e-6,
                detected=frozenset({2, 3}),
            ),
        ],
        activated=4,
    )
    path = tmp_path / "candidates.json"
    path.write_text(json.dumps(candidates.to_dict()))
    return path


@pytest.fixture
def registry_path(tmp_path):
    registry = DetectorRegistry(lint_policy="off")
    registry.register(Detector(Comparison("v", ">", 5.0), name="hi"))
    registry.register(
        Detector(
            Or([Comparison("v", "<=", 1.0), Comparison("w", "==", 0.0)]),
            name="lo",
        )
    )
    registry.save(tmp_path / "registry.json")
    return tmp_path / "registry.json"


class TestSolve:
    def test_solve_writes_plan(self, tmp_path, candidates_path, capsys):
        plan_path = tmp_path / "plan.json"
        code = main(
            [
                "portfolio", "solve", str(candidates_path),
                "--budget", "3.5e-6", "--plan", str(plan_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 detector(s)" in out and "coverage 1.000" in out
        payload = json.loads(plan_path.read_text())
        assert payload["format"] == "repro.portfolio.plan"
        assert [d["name"] for d in payload["detectors"]] == ["hi", "lo"]

    def test_solve_json(self, candidates_path, capsys):
        code = main(
            [
                "portfolio", "solve", str(candidates_path),
                "--budget", "1.5e-6", "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["names"] == ["hi"]
        assert payload["solver"] == "exact"


class TestPareto:
    def test_pareto_is_deterministic(self, candidates_path, capsys):
        assert main(
            ["portfolio", "pareto", str(candidates_path), "--format", "json"]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["portfolio", "pareto", str(candidates_path), "--format", "json"]
        ) == 0
        assert capsys.readouterr().out == first
        points = json.loads(first)["points"]
        assert [p["names"] for p in points] == [["hi"], ["hi", "lo"]]

    def test_explicit_budgets(self, candidates_path, capsys):
        code = main(
            [
                "portfolio", "pareto", str(candidates_path),
                "--budgets", "1e-6,3e-6", "--format", "json",
            ]
        )
        assert code == 0
        points = json.loads(capsys.readouterr().out)["points"]
        assert points[0]["budget_s"] == 1e-6


class TestApplyAndDrift:
    def test_apply_publishes_snapshot(
        self, tmp_path, candidates_path, registry_path, capsys
    ):
        plan_path = tmp_path / "plan.json"
        assert main(
            [
                "portfolio", "solve", str(candidates_path),
                "--budget", "1.5e-6", "--plan", str(plan_path),
            ]
        ) == 0
        capsys.readouterr()
        snapshot = tmp_path / "snapshot.json"
        code = main(
            [
                "portfolio", "apply", str(plan_path), str(registry_path),
                "--snapshot", str(snapshot),
            ]
        )
        assert code == 0
        assert "serial 1" in capsys.readouterr().out
        published = DetectorRegistry.load(snapshot, check=False)
        assert published.names() == ["hi"]
        assert published.plan is not None

    def test_drift_exit_codes(self, tmp_path, candidates_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert main(
            [
                "portfolio", "solve", str(candidates_path),
                "--budget", "1.5e-6", "--plan", str(plan_path),
            ]
        ) == 0
        capsys.readouterr()
        metrics = RuntimeMetrics()
        metrics.stats_for("hi").record_batch(100, 10, 100 * 1e-6)
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(metrics.to_dict()))
        assert main(
            ["portfolio", "drift", str(plan_path), str(metrics_path)]
        ) == 0
        drifted = RuntimeMetrics()
        drifted.stats_for("hi").record_batch(100, 10, 100 * 1e-4)
        metrics_path.write_text(json.dumps(drifted.to_dict()))
        assert main(
            ["portfolio", "drift", str(plan_path), str(metrics_path)]
        ) == 1

    def test_drift_accepts_serve_report_form(
        self, tmp_path, candidates_path, capsys
    ):
        plan_path = tmp_path / "plan.json"
        assert main(
            [
                "portfolio", "solve", str(candidates_path),
                "--budget", "1.5e-6", "--plan", str(plan_path),
            ]
        ) == 0
        capsys.readouterr()
        # What `repro serve --format json` emits: report() snapshots
        # nested under a "metrics" key.
        metrics = RuntimeMetrics()
        metrics.stats_for("hi").record_batch(100, 10, 100 * 1e-6)
        report_path = tmp_path / "serve.json"
        report_path.write_text(json.dumps({"metrics": metrics.report()}))
        assert main(
            ["portfolio", "drift", str(plan_path), str(report_path)]
        ) == 0
        assert "[ok]" in capsys.readouterr().out
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"something": "else"}))
        assert main(
            ["portfolio", "drift", str(plan_path), str(bogus)]
        ) != 0
        assert "neither" in capsys.readouterr().err


class TestLintPlanDocuments:
    def test_lint_sniffs_plan_documents(self, tmp_path, candidates_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert main(
            [
                "portfolio", "solve", str(candidates_path),
                "--budget", "1.5e-6", "--plan", str(plan_path),
            ]
        ) == 0
        capsys.readouterr()
        # A healthy plan lints clean...
        assert main(["lint", str(plan_path)]) == 0
        # ...an edited, overbudget one fails the gate.
        payload = json.loads(plan_path.read_text())
        payload["budget_s"] = 1e-9
        plan_path.write_text(json.dumps(payload))
        assert main(["lint", str(plan_path)]) == 1
        assert "overbudget-deployment" in capsys.readouterr().out

"""Deployment plans: round-trip, registry gating, serving apply, drift."""

import json
import pathlib
import warnings

import pytest

from repro.core.detector import Detector
from repro.core.predicate import And, Comparison, Or
from repro.portfolio.candidates import candidates_from_registry
from repro.portfolio.optimize import solve
from repro.portfolio.plan import DeploymentPlan, PlannedDetector
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.registry import (
    DetectorRegistry,
    RegistryError,
    RegistryWarning,
)
from repro.serving import (
    LoadProfile,
    ServeConfig,
    ServingTopology,
    synthesize_states,
)

P_HI = Comparison("v", ">", 5.0)
P_LO = Or([Comparison("v", "<=", 1.0), Comparison("w", "==", 0.0)])
P_MIX = And([Comparison("u", "!=", 3.0), Comparison("v", ">", 0.0)])


def make_registry():
    registry = DetectorRegistry(lint_policy="off")
    registry.register(Detector(P_HI, name="hi"))
    registry.register(Detector(P_LO, name="lo"))
    registry.register(Detector(P_MIX, name="mix"))
    return registry


def solved_plan(registry, budget=3.5e-6, **kwargs):
    candidates = candidates_from_registry(
        registry,
        coverage={"hi": 0.6, "lo": 0.5, "mix": 0.4},
        costs={"hi": 1e-6, "lo": 2e-6, "mix": 3e-6},
    )
    selection = solve(candidates, budget)
    return DeploymentPlan.from_selection(
        selection, candidates, registry=registry, **kwargs
    )


class TestRoundTrip:
    def test_json_round_trip_is_byte_identical(self, tmp_path):
        plan = solved_plan(make_registry(), name="prod")
        path = plan.save(tmp_path / "plan.json")
        loaded = DeploymentPlan.load(path)
        assert loaded == plan
        assert loaded.to_json() == plan.to_json()
        assert path.read_text() == plan.to_json()

    def test_rejects_other_formats(self):
        with pytest.raises(ValueError):
            DeploymentPlan.from_dict({"format": "something.else"})

    def test_detectors_must_be_sorted_unique(self):
        planned = (
            PlannedDetector(name="b", version=1, coverage=0.5, cost_s=1e-6),
            PlannedDetector(name="a", version=1, coverage=0.5, cost_s=1e-6),
        )
        with pytest.raises(ValueError):
            DeploymentPlan(
                name="p", budget_s=1e-5, coverage=0.7, cost_s=2e-6,
                solver="exact", detectors=planned,
            )


class TestRegistryIntegration:
    def test_validate_against(self):
        registry = make_registry()
        plan = solved_plan(registry)
        assert plan.validate_against(registry) == []
        registry.unregister(plan.detectors[0].name)
        problems = plan.validate_against(registry)
        assert problems and "not published" in problems[0]

    def test_attach_requires_published_versions(self):
        registry = make_registry()
        plan = solved_plan(registry)
        other = DetectorRegistry()
        with pytest.raises(RegistryError):
            other.attach_plan(plan)

    def test_plan_persists_through_registry_roundtrip(self):
        registry = make_registry()
        plan = solved_plan(registry, name="persisted")
        registry.attach_plan(plan)
        reloaded = DetectorRegistry.from_dict(registry.to_dict(), check=False)
        assert reloaded.plan is not None
        assert reloaded.plan.to_json() == plan.to_json()
        assert reloaded.detach_plan() is not None
        assert reloaded.plan is None

    def test_overbudget_plan_gates_publish(self):
        registry = make_registry()
        plan = solved_plan(registry)
        overbudget = DeploymentPlan.from_dict(
            {**plan.to_dict(), "budget_s": plan.cost_s / 10.0}
        )
        with pytest.raises(RegistryError, match="overbudget-deployment"):
            registry.attach_plan(overbudget, lint_policy="reject")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            registry.attach_plan(overbudget, lint_policy="warn")
        assert any(
            issubclass(w.category, RegistryWarning)
            and "overbudget-deployment" in str(w.message)
            for w in caught
        )
        # ...and with the bad plan attached, further publishes are
        # gated by the same finding.
        with pytest.raises(RegistryError, match="overbudget-deployment"):
            registry.register(
                Detector(Comparison("z", ">", 0.0), name="late"),
                lint_policy="reject",
            )

    def test_redundant_plan_warns(self):
        registry = DetectorRegistry(lint_policy="off")
        narrow = And([Comparison("v", ">", 5.0), Comparison("w", ">", 0.0)])
        registry.register(Detector(narrow, name="narrow"))
        registry.register(Detector(Comparison("v", ">", 5.0), name="wide"))
        planned = tuple(
            PlannedDetector(name=name, version=1, coverage=0.5, cost_s=1e-6)
            for name in ("narrow", "wide")
        )
        plan = DeploymentPlan(
            name="redundant", budget_s=1e-5, coverage=0.5, cost_s=2e-6,
            solver="manual", detectors=planned,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            registry.attach_plan(plan, lint_policy="warn")
        assert any(
            issubclass(w.category, RegistryWarning)
            and "redundant-deployment" in str(w.message)
            for w in caught
        )

    def test_build_registry_pins_versions(self):
        registry = make_registry()
        # Publish a v2 of "hi" after solving against v1.
        plan = solved_plan(registry)
        registry.register(Detector(Comparison("v", ">", 9.0), name="hi"))
        subset = plan.build_registry(registry)
        assert subset.names() == sorted(plan.names())
        for planned in plan.detectors:
            assert subset.latest_version(planned.name) == planned.version
        assert subset.plan is not None


class TestServingApply:
    def test_apply_plan_publishes_atomically(self, tmp_path):
        registry = make_registry()
        plan = solved_plan(registry)
        assert set(plan.names()) < set(registry.names())
        config = ServeConfig(workers=2, capacity=64, batch_size=8)
        topology = ServingTopology.from_registry(
            registry, tmp_path / "snapshot.json", config, inline=True
        )
        topology.start()
        states = list(
            synthesize_states(registry, LoadProfile(events=60, seed=3))
        )
        for state in states[:30]:
            topology.submit(state)
        serial = topology.apply_plan(plan, registry)
        assert serial == 2
        for state in states[30:]:
            topology.submit(state)
        report = topology.stop()
        # The ledger still closes across the mid-stream deploy.
        assert report.accounted
        assert report.processed == 60
        # The published snapshot is the pinned subset, plan embedded.
        published = DetectorRegistry.load(
            tmp_path / "snapshot.json", check=False
        )
        assert published.names() == sorted(plan.names())
        assert published.plan is not None
        # Post-deploy events carry the new serial and only planned
        # detectors can flag them.
        unplanned = set(registry.names()) - set(plan.names())
        post = {int(s) for s, ser in zip(report.seqs, report.serials) if ser == 2}
        flags = report.flags_by_seq()
        for name in unplanned:
            bit = topology.bit_of[name]
            assert all(not (flags[seq] >> bit) & 1 for seq in post)

    def test_apply_rejects_unknown_detectors(self, tmp_path):
        registry = make_registry()
        plan = solved_plan(registry)
        small = DetectorRegistry(lint_policy="off")
        small.register(Detector(P_HI, name="hi"))
        topology = ServingTopology.from_registry(
            small, tmp_path / "snapshot.json",
            ServeConfig(workers=1, capacity=16, batch_size=4), inline=True,
        )
        topology.start()
        with pytest.raises(ValueError, match="outside this topology"):
            topology.apply_plan(plan, registry)
        topology.stop()


class TestDrift:
    def test_drift_report_flags_and_missing(self):
        plan = solved_plan(make_registry())
        metrics = RuntimeMetrics()
        first = plan.detectors[0]
        # Serve the first planned detector at ~10x its predicted cost.
        metrics.stats_for(first.name).record_batch(
            100, 5, 100 * first.cost_s * 10.0
        )
        report = plan.drift_report(metrics, cost_tolerance=0.5)
        assert first.name in report["drifted"]
        assert set(report["missing"]) == {
            d.name for d in plan.detectors[1:]
        }
        assert not report["ok"]

    def test_drift_ok_within_tolerance(self):
        plan = solved_plan(make_registry())
        metrics = RuntimeMetrics()
        for planned in plan.detectors:
            metrics.stats_for(planned.name).record_batch(
                50, 1, 50 * planned.cost_s * 1.2
            )
        report = plan.drift_report(metrics, cost_tolerance=0.5)
        assert report["ok"]
        assert report["drifted"] == [] and report["missing"] == []

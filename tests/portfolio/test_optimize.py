"""Solver guarantees: greedy vs exact, bounds, determinism."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.portfolio.candidates import CandidateSet, DetectorCandidate
from repro.portfolio.optimize import exact_select, greedy_select, solve
from repro.portfolio.plan import DeploymentPlan

APPROX_UP = 1e-12  # float-noise headroom when comparing coverages


def instance(detected_sets, costs, universe):
    """CandidateSet over explicit detection sets (exact mode)."""
    candidates = []
    for i, (ids, cost) in enumerate(zip(detected_sets, costs)):
        candidates.append(
            DetectorCandidate(
                name=f"d{i:02d}",
                coverage=len(ids) / universe if universe else 0.0,
                cost_s=cost,
                detected=frozenset(ids),
            )
        )
    return CandidateSet(candidates, activated=universe)


@st.composite
def knapsack_instances(draw):
    universe = draw(st.integers(min_value=1, max_value=10))
    n = draw(st.integers(min_value=1, max_value=7))
    detected = [
        draw(
            st.frozensets(
                st.integers(min_value=0, max_value=universe - 1), max_size=universe
            )
        )
        for _ in range(n)
    ]
    costs = [
        draw(st.sampled_from([1e-6, 2e-6, 3e-6, 5e-6, 8e-6])) for _ in range(n)
    ]
    budget = draw(st.sampled_from([1e-6, 3e-6, 6e-6, 1e-5, 3e-5]))
    return instance(detected, costs, universe), budget


@st.composite
def unit_cost_instances(draw):
    universe = draw(st.integers(min_value=1, max_value=10))
    n = draw(st.integers(min_value=1, max_value=7))
    detected = [
        draw(
            st.frozensets(
                st.integers(min_value=0, max_value=universe - 1), max_size=universe
            )
        )
        for _ in range(n)
    ]
    k = draw(st.integers(min_value=1, max_value=n))
    return instance(detected, [1e-6] * n, universe), k


class TestProperties:
    @given(knapsack_instances())
    @settings(deadline=None, max_examples=60)
    def test_greedy_never_beats_exact(self, case):
        candidates, budget = case
        greedy = greedy_select(candidates, budget)
        exact = exact_select(candidates, budget)
        assert greedy.coverage <= exact.coverage + APPROX_UP
        assert greedy.cost_s <= budget
        assert exact.cost_s <= budget

    @given(unit_cost_instances())
    @settings(deadline=None, max_examples=60)
    def test_greedy_within_1_minus_1_over_e_on_unit_costs(self, case):
        """With unit costs the budget is a cardinality constraint, and
        submodular greedy carries the classic 1 - 1/e guarantee."""
        candidates, k = case
        budget = k * 1e-6 + 1e-12
        greedy = greedy_select(candidates, budget)
        exact = exact_select(candidates, budget)
        assert greedy.coverage >= (1 - 1 / 2.718281828459045) * exact.coverage - APPROX_UP

    @given(knapsack_instances())
    @settings(deadline=None, max_examples=40)
    def test_selections_are_deterministic(self, case):
        candidates, budget = case
        roundtripped = CandidateSet.from_dict(
            json.loads(json.dumps(candidates.to_dict()))
        )
        for solver in (greedy_select, exact_select):
            first = solver(candidates, budget)
            again = solver(roundtripped, budget)
            assert first.names == again.names
            assert first.coverage == again.coverage
            assert first.cost_s == again.cost_s

    @given(knapsack_instances())
    @settings(deadline=None, max_examples=40)
    def test_plan_json_is_byte_identical(self, case):
        candidates, budget = case
        roundtripped = CandidateSet.from_dict(
            json.loads(json.dumps(candidates.to_dict()))
        )
        first = DeploymentPlan.from_selection(
            solve(candidates, budget), candidates
        )
        again = DeploymentPlan.from_selection(
            solve(roundtripped, budget), roundtripped
        )
        assert first.to_json() == again.to_json()


class TestGreedy:
    def test_prefers_density_then_safeguards_with_best_single(self):
        # Ratio greedy grabs the cheap low-coverage item first and has
        # no budget left for the big one; the safeguard catches it.
        cs = instance(
            [{0}, {1, 2, 3, 4, 5, 6, 7, 8}],
            [1e-7, 1e-6],
            universe=9,
        )
        selection = greedy_select(cs, 1.05e-6)
        assert selection.names == ("d01",)
        assert selection.trace[0].get("safeguard") == "best-single"
        assert selection.coverage == pytest.approx(8 / 9)

    def test_skips_zero_marginal_candidates(self):
        cs = instance([{0, 1}, {0, 1}], [1e-6, 1e-6], universe=2)
        selection = greedy_select(cs, 1e-5)
        assert len(selection.names) == 1
        assert selection.coverage == pytest.approx(1.0)

    def test_budget_rejected(self):
        cs = instance([{0}], [1e-6], universe=1)
        with pytest.raises(ValueError):
            greedy_select(cs, 0.0)


class TestExact:
    def test_finds_optimum_greedy_misses(self):
        # Classic knapsack trap: greedy's first pick blocks the optimum.
        cs = instance(
            [{0, 1, 2}, {3, 4}, {5, 6}],
            [3e-6, 2e-6, 2e-6],
            universe=7,
        )
        exact = exact_select(cs, 4e-6)
        assert exact.names == ("d01", "d02")
        assert exact.coverage == pytest.approx(4 / 7)

    def test_tie_breaks_prefer_cheaper_then_lexicographic(self):
        cs = instance([{0}, {0}], [1e-6, 2e-6], universe=1)
        assert exact_select(cs, 1e-5).names == ("d00",)
        tied = instance([{0}, {0}], [1e-6, 1e-6], universe=1)
        assert exact_select(tied, 1e-5).names == ("d00",)

    def test_limit_enforced(self):
        cs = instance([{0}] * 5, [1e-6] * 5, universe=1)
        with pytest.raises(ValueError, match="capped"):
            exact_select(cs, 1e-5, limit=4)

    def test_explored_trace(self):
        cs = instance([{0}, {1}], [1e-6, 1e-6], universe=2)
        selection = exact_select(cs, 1e-5)
        assert selection.trace[0]["explored"] >= 1


class TestSolve:
    def test_auto_dispatch(self):
        small = instance([{0}], [1e-6], universe=1)
        assert solve(small, 1e-5).solver == "exact"
        big = instance(
            [{i} for i in range(6)], [1e-6] * 6, universe=6
        )
        assert solve(big, 1e-5, exact_limit=4).solver == "greedy"

    def test_unknown_solver_rejected(self):
        cs = instance([{0}], [1e-6], universe=1)
        with pytest.raises(ValueError):
            solve(cs, 1e-5, solver="annealing")

"""Budget sweep: non-dominated, monotone, deterministic."""

import json

import pytest

from repro.portfolio.candidates import CandidateSet, DetectorCandidate
from repro.portfolio.pareto import default_budgets, pareto_front


def make_candidates():
    return CandidateSet(
        [
            DetectorCandidate(
                name="a", coverage=3 / 8, cost_s=1e-6,
                detected=frozenset({0, 1, 2}),
            ),
            DetectorCandidate(
                name="b", coverage=3 / 8, cost_s=2e-6,
                detected=frozenset({2, 3, 4}),
            ),
            DetectorCandidate(
                name="c", coverage=3 / 8, cost_s=4e-6,
                detected=frozenset({5, 6, 7}),
            ),
        ],
        activated=8,
    )


class TestDefaultBudgets:
    def test_landmarks_cover_singles_and_prefixes(self):
        budgets = default_budgets(make_candidates())
        for landmark in (1e-6, 2e-6, 4e-6, 3e-6, 7e-6):
            assert any(b == pytest.approx(landmark) for b in budgets)
        assert budgets == sorted(budgets)


class TestParetoFront:
    def test_non_dominated_and_monotone(self):
        front = pareto_front(make_candidates())
        costs = [p.cost_s for p in front]
        coverages = [p.coverage for p in front]
        assert costs == sorted(costs)
        assert coverages == sorted(coverages)
        for i, left in enumerate(front):
            for right in front[i + 1:]:
                assert right.coverage > left.coverage
                assert right.cost_s > left.cost_s

    def test_reaches_full_deployment(self):
        front = pareto_front(make_candidates())
        best = front[-1]
        assert best.names == ("a", "b", "c")
        assert best.coverage == pytest.approx(1.0)

    def test_deterministic_json(self):
        candidates = make_candidates()
        first = json.dumps(
            [p.to_dict() for p in pareto_front(candidates)], sort_keys=True
        )
        roundtripped = CandidateSet.from_dict(
            json.loads(json.dumps(candidates.to_dict()))
        )
        again = json.dumps(
            [p.to_dict() for p in pareto_front(roundtripped)], sort_keys=True
        )
        assert first == again

    def test_explicit_budgets_only_refine(self):
        candidates = make_candidates()
        base = pareto_front(candidates)
        refined = pareto_front(
            candidates, [p.budget_s for p in base] + [1.5e-6, 2.5e-6]
        )
        base_points = {(p.cost_s, p.coverage) for p in base}
        assert base_points <= {(p.cost_s, p.coverage) for p in refined}

    def test_provenance_carried(self):
        front = pareto_front(make_candidates())
        for point in front:
            assert point.solver in ("greedy", "exact")
            assert point.budget_s >= point.cost_s
            assert point.selection.names == point.names

    def test_bad_budgets_rejected(self):
        with pytest.raises(ValueError):
            pareto_front(make_candidates(), [0.0])

"""Fixed-seed golden run: the exact winning detector, forever.

``Methodology.run`` is deterministic for a fixed (dataset, grid, seed)
triple -- every trial derives its RNG from ``(seed, index)`` and fold
partitions from the call-site generator state.  This test pins the
*exact* serialized output of one tiny run: the winning predicate's
source, the refined plan, the per-table summaries and the full trial
ranking.  Any change to induction, sampling, cross-validation, RNG
derivation, or tie-breaking shows up here as a value diff rather than
as a silent drift -- if a change is intentional, regenerate the
constants and say so in the commit.
"""

from repro.core.methodology import Methodology, MethodologyConfig
from repro.core.refine import RefinementGrid

from tests.conftest import make_separable

GOLDEN_PREDICATE = (
    "(state.get('v1', float('nan')) > 0.6579889483987437 and "
    "state.get('v2', float('nan')) <= -0.21299707515979807 and "
    "state.get('v1', float('nan')) <= 0.9927486681638309 and "
    "state.get('v2', float('nan')) > -0.677553017608134) or "
    "(state.get('v1', float('nan')) > 0.9927486681638309 and "
    "state.get('v2', float('nan')) <= 0.3347755173273096 and "
    "state.get('v1', float('nan')) <= 1.1281067498444624 and "
    "state.get('v2', float('nan')) > -0.677553017608134) or "
    "(state.get('v1', float('nan')) > 0.6579889483987437 and "
    "state.get('v2', float('nan')) <= 1.5577413973969314 and "
    "state.get('v1', float('nan')) <= 1.1281067498444624 and "
    "state.get('v2', float('nan')) > 0.3347755173273096) or "
    "(state.get('v1', float('nan')) > 1.1281067498444624 and "
    "state.get('v2', float('nan')) <= -0.3256041373615955) or "
    "(state.get('v1', float('nan')) > 1.1281067498444624 and "
    "state.get('v2', float('nan')) <= 1.5577413973969314 and "
    "state.get('v2', float('nan')) > -0.3256041373615955 and "
    "state.get('v1', float('nan')) <= 1.2608848182300478) or "
    "(state.get('v1', float('nan')) > 1.2608848182300478 and "
    "state.get('v2', float('nan')) <= 0.22130408054447087 and "
    "state.get('v2', float('nan')) > -0.3256041373615955)"
)

GOLDEN_BASELINE = {
    "fpr": 0.06604506604506605,
    "tpr": 0.3,
    "auc": 0.6169774669774669,
    "comp": 12.333333333333334,
    "var": 0.0035436155832426278,
}

GOLDEN_REFINED = {
    "fpr": 0.07132867132867134,
    "tpr": 0.38888888888888884,
    "auc": 0.6587801087801087,
    "comp": 7.0,
    "var": 0.0014855415671266483,
}

GOLDEN_RANKING = [
    ("60(U)", (0.6587801087801087, 0.38888888888888884, -7.0)),
    ("200(O) N=3", (0.642024642024642, 0.5285714285714286, -52.333333333333336)),
    ("200(O)", (0.6179098679098679, 0.38888888888888884, -47.0)),
    ("25(U)", (0.5320290820290821, 0.3904761904761904, -21.0)),
]


def _golden_run():
    dataset = make_separable(n=240, seed=42, noise=0.12)
    grid = RefinementGrid(
        undersample_levels=(25.0, 60.0),
        oversample_levels=(200.0,),
        neighbour_counts=(3,),
    )
    return Methodology(MethodologyConfig(folds=3, seed=5)).run(dataset, grid)


class TestGoldenRun:
    def test_exact_outcome(self):
        outcome = _golden_run()
        assert outcome.improved
        assert outcome.refined.plan.describe() == "60(U)"
        assert outcome.refined.predicate.to_source("state") == GOLDEN_PREDICATE
        assert outcome.baseline.summary() == GOLDEN_BASELINE
        assert outcome.refined.summary() == GOLDEN_REFINED

    def test_exact_trial_ranking(self):
        outcome = _golden_run()
        ranking = [
            (trial.plan.describe(), trial.key)
            for trial in outcome.refinement.ranked()
        ]
        assert ranking == GOLDEN_RANKING

    def test_stable_across_repeated_runs(self):
        first, second = _golden_run(), _golden_run()
        assert (
            first.refined.predicate.to_source("state")
            == second.refined.predicate.to_source("state")
        )
        assert [t.key for t in first.refinement.trials] == [
            t.key for t in second.refinement.trials
        ]

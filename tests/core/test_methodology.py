"""Tests for the four-step methodology pipeline and refinement."""

import dataclasses

import numpy as np
import pytest

from repro.core.methodology import Methodology, MethodologyConfig
from repro.core.preprocess import (
    LEARNERS,
    PreprocessingPlan,
    default_plan_for,
    make_learner,
    model_complexity,
)
from repro.core.refine import RefinementGrid, refine
from repro.mining.tree import C45DecisionTree
from tests.conftest import make_imbalanced, make_separable

SMALL_GRID = RefinementGrid(
    undersample_levels=(25.0, 75.0),
    oversample_levels=(200.0,),
    neighbour_counts=(3,),
)


class TestConfig:
    def test_defaults(self):
        config = MethodologyConfig()
        assert config.learner == "c45"
        assert config.folds == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            MethodologyConfig(learner="xgboost")
        with pytest.raises(ValueError):
            MethodologyConfig(folds=1)


class TestPreprocessRegistry:
    def test_all_learners_instantiate(self):
        for name in LEARNERS:
            model = make_learner(name)
            assert hasattr(model, "fit")

    def test_unknown_learner(self):
        with pytest.raises(ValueError):
            make_learner("bogus")

    def test_model_complexity(self):
        ds = make_separable()
        tree = C45DecisionTree().fit(ds)
        assert model_complexity(tree) == tree.node_count
        assert model_complexity(make_learner("naive-bayes").fit(ds)) == 0.0

    def test_default_plans(self):
        assert default_plan_for("c45") == PreprocessingPlan()
        assert default_plan_for("naive-bayes").signed_log
        assert default_plan_for("logistic").standardise

    def test_plan_describe(self):
        assert PreprocessingPlan().describe() == "-"
        plan = PreprocessingPlan(sampling="smote", level=300, neighbours=4)
        assert "300(O)" in plan.describe() and "N=4" in plan.describe()
        plan = PreprocessingPlan(sampling="undersample", level=85)
        assert "85(U)" in plan.describe()

    def test_plan_apply_transforms_then_samples(self, rng):
        ds = make_imbalanced()
        plan = PreprocessingPlan(
            sampling="oversample", level=200, signed_log=True
        )
        out = plan.apply(ds, rng)
        assert len(out) > len(ds)
        # signed log compresses the positive cluster's values below raw.
        assert np.nanmax(out.x) < np.nanmax(ds.x) + 1e-9


class TestStep3:
    def test_report_contents(self):
        ds = make_separable()
        method = Methodology(MethodologyConfig(folds=5))
        report = method.step3_generate(ds)
        assert report.is_symbolic
        assert report.predicate is not None
        assert set(report.summary()) == {"fpr", "tpr", "auc", "comp", "var"}
        assert report.summary()["auc"] > 0.9

    def test_detector_from_report(self):
        ds = make_separable()
        report = Methodology(MethodologyConfig(folds=5)).step3_generate(ds)
        detector = report.detector(name="d")
        eff = detector.efficiency_on(ds)
        assert eff.completeness > 0.9

    def test_non_symbolic_learner_has_no_predicate(self):
        ds = make_separable()
        method = Methodology(MethodologyConfig(learner="naive-bayes", folds=5))
        report = method.step3_generate(ds)
        assert not report.is_symbolic
        with pytest.raises(ValueError):
            report.detector()

    def test_rules_learner_extracts_predicate(self):
        ds = make_separable()
        method = Methodology(MethodologyConfig(learner="rules", folds=5))
        report = method.step3_generate(ds)
        assert report.is_symbolic

    def test_deterministic(self):
        ds = make_separable()
        method = Methodology(MethodologyConfig(folds=5, seed=11))
        assert (
            method.step3_generate(ds).summary()
            == method.step3_generate(ds).summary()
        )


class TestRefinementGrid:
    def test_paper_grid_size(self):
        grid = RefinementGrid.paper()
        # 10 undersampling + 15 levels x (1 replacement + 15 k values)
        assert grid.size() == 10 + 15 * 16
        assert grid.size() == len(list(grid.plans()))

    def test_reduced_grid_enumerates(self):
        grid = RefinementGrid.reduced()
        plans = list(grid.plans())
        assert len(plans) == grid.size()
        kinds = {p.sampling for p in plans}
        assert kinds == {"undersample", "oversample", "smote"}

    def test_base_plan_inherited(self):
        base = PreprocessingPlan(signed_log=True)
        grid = dataclasses.replace(SMALL_GRID, base_plan=base)
        assert all(p.signed_log for p in grid.plans())


class TestStep4:
    def test_refine_returns_best(self):
        ds = make_imbalanced()
        result = refine(ds, C45DecisionTree, SMALL_GRID, folds=5)
        assert result.best in result.trials
        assert result.best.key == max(t.key for t in result.trials)

    def test_ranked_order(self):
        ds = make_imbalanced()
        result = refine(ds, C45DecisionTree, SMALL_GRID, folds=5)
        ranked = result.ranked()
        assert ranked[0] is result.best
        keys = [t.key for t in ranked]
        assert keys == sorted(keys, reverse=True)

    def test_empty_grid_rejected(self):
        ds = make_imbalanced()
        empty = RefinementGrid(
            undersample_levels=(), oversample_levels=(), neighbour_counts=()
        )
        with pytest.raises(ValueError):
            refine(ds, C45DecisionTree, empty, folds=5)

    def test_deterministic(self):
        ds = make_imbalanced()
        a = refine(ds, C45DecisionTree, SMALL_GRID, folds=5, seed=3)
        b = refine(ds, C45DecisionTree, SMALL_GRID, folds=5, seed=3)
        assert a.best.plan == b.best.plan
        assert a.best.evaluation.summary() == b.best.evaluation.summary()


class TestEndToEnd:
    def test_run_improves_or_keeps_baseline(self):
        ds = make_imbalanced(n=400)
        method = Methodology(MethodologyConfig(folds=5))
        outcome = method.run(ds, SMALL_GRID)
        assert outcome.improved
        assert (
            outcome.refined.evaluation.mean_auc
            >= outcome.baseline.evaluation.mean_auc
        )

    def test_outcome_carries_trials(self):
        ds = make_imbalanced(n=300)
        method = Methodology(MethodologyConfig(folds=5))
        outcome = method.run(ds, SMALL_GRID)
        assert len(outcome.refinement.trials) == SMALL_GRID.size()
        assert outcome.dataset_name == ds.name

    def test_run_jobs_matches_serial(self):
        ds = make_imbalanced(n=300)
        config = MethodologyConfig(folds=5, seed=7)
        serial = Methodology(config).run(ds, SMALL_GRID)
        pooled = Methodology(config).run(ds, SMALL_GRID, jobs=2)
        assert pooled.baseline.summary() == serial.baseline.summary()
        assert pooled.refined.plan == serial.refined.plan
        assert (
            pooled.refined.evaluation.summary()
            == serial.refined.evaluation.summary()
        )
        for a, b in zip(pooled.refinement.trials, serial.refinement.trials):
            assert a.plan == b.plan
            assert a.evaluation.summary() == b.evaluation.summary()

"""Tests for model -> predicate extraction."""

import numpy as np
import pytest

from repro.core.extraction import ruleset_to_predicate, tree_to_predicate
from repro.core.predicate import FalsePredicate, TruePredicate
from repro.mining.rules import Prism, SequentialCoveringRules
from repro.mining.tree import C45DecisionTree
from tests.conftest import make_imbalanced, make_mixed, make_separable


def attr_index(dataset):
    return {a.name: i for i, a in enumerate(dataset.attributes)}


class TestTreeExtraction:
    def test_predicate_matches_tree_predictions(self):
        ds = make_separable()
        tree = C45DecisionTree().fit(ds)
        predicate = tree_to_predicate(tree.root, ds.class_attribute.values)
        flags = predicate.evaluate_rows(ds.x, attr_index(ds))
        assert np.array_equal(flags, tree.predict(ds.x) == 1)

    def test_predicate_matches_on_mixed_attributes(self):
        ds = make_mixed()
        tree = C45DecisionTree().fit(ds)
        predicate = tree_to_predicate(tree.root, ds.class_attribute.values)
        flags = predicate.evaluate_rows(ds.x, attr_index(ds))
        assert np.array_equal(flags, tree.predict(ds.x) == 1)

    def test_single_class_tree_gives_false(self):
        ds = make_separable()
        negatives = ds.subset(ds.y == 0)
        tree = C45DecisionTree().fit(negatives)
        predicate = tree_to_predicate(tree.root, ds.class_attribute.values)
        assert isinstance(predicate, FalsePredicate)

    def test_predicate_is_simplified(self):
        ds = make_imbalanced()
        tree = C45DecisionTree().fit(ds)
        predicate = tree_to_predicate(tree.root, ds.class_attribute.values)
        assert predicate.simplify().complexity() == predicate.complexity()

    def test_nominal_conditions_work_on_bool_state(self):
        """Nominal == conditions must accept runtime booleans."""
        ds = make_mixed()
        tree = C45DecisionTree().fit(ds)
        predicate = tree_to_predicate(tree.root, ds.class_attribute.values)
        # Build a state dict using a raw bool for the nominal 'flag'.
        state = {"v": 2.0, "flag": True, "colour": 0.0}
        row = np.array([[2.0, 1.0, 0.0]])
        assert predicate.evaluate(state) == bool(
            predicate.evaluate_rows(row, attr_index(ds))[0]
        )


class TestRulesetExtraction:
    @pytest.mark.parametrize("factory", [SequentialCoveringRules, Prism])
    def test_predicate_flags_positive_rules(self, factory):
        ds = make_separable()
        model = factory().fit(ds)
        predicate = ruleset_to_predicate(model.ruleset)
        flags = predicate.evaluate_rows(ds.x, attr_index(ds))
        predicted = model.predict(ds.x) == 1
        # Union-of-positive-rules semantics: every state the decision
        # list classifies positive is flagged.
        assert np.all(flags[predicted])

    def test_no_positive_rules_gives_false(self):
        ds = make_separable()
        negatives = ds.subset(ds.y == 0)
        model = SequentialCoveringRules().fit(negatives)
        predicate = ruleset_to_predicate(model.ruleset)
        assert isinstance(predicate, FalsePredicate)

    def test_positive_default_gives_true(self):
        ds = make_separable()
        positives = ds.subset(ds.y == 1)
        model = SequentialCoveringRules().fit(positives)
        predicate = ruleset_to_predicate(model.ruleset)
        assert isinstance(predicate, TruePredicate)

    def test_nominal_rule_conditions(self):
        ds = make_mixed()
        model = SequentialCoveringRules().fit(ds)
        predicate = ruleset_to_predicate(model.ruleset)
        flags = predicate.evaluate_rows(ds.x, attr_index(ds))
        predicted = model.predict(ds.x) == 1
        assert np.all(flags[predicted])

"""Tests for detector composition."""

import pytest

from repro.core.composition import all_of, any_of, majority
from repro.core.detector import Detector
from repro.core.predicate import Comparison
from tests.conftest import make_separable


def det(variable, op, value, name):
    return Detector(Comparison(variable, op, value), name=name)


A = lambda: det("v1", ">", 1.0, "a")
B = lambda: det("v2", "<=", 0.3, "b")
C = lambda: det("v1", ">", 100.0, "c")  # never fires on the data


class TestAnyOf:
    def test_union_semantics(self):
        combo = any_of([A(), B()])
        assert combo.check({"v1": 2.0, "v2": 1.0})   # a fires
        assert combo.check({"v1": 0.0, "v2": 0.0})   # b fires
        assert not combo.check({"v1": 0.0, "v2": 1.0})

    def test_union_completeness_dominates_members(self):
        ds = make_separable()
        union = any_of([A(), B()])
        for member in (A(), B()):
            assert (
                union.efficiency_on(ds).completeness
                >= member.efficiency_on(ds).completeness
            )

    def test_missing_variable_member_silent(self):
        combo = any_of([A(), det("elsewhere", ">", 0.0, "x")])
        assert combo.check({"v1": 2.0})
        assert not combo.check({"v1": 0.0})


class TestAllOf:
    def test_intersection_semantics(self):
        combo = all_of([A(), B()])
        assert combo.check({"v1": 2.0, "v2": 0.0})
        assert not combo.check({"v1": 2.0, "v2": 1.0})

    def test_intersection_is_exact_concept(self):
        # The ground-truth concept of make_separable IS a AND b.
        ds = make_separable()
        eff = all_of([A(), B()]).efficiency_on(ds)
        assert eff.is_perfect

    def test_accuracy_dominates_members(self):
        ds = make_separable()
        inter = all_of([A(), B()])
        for member in (A(), B()):
            assert (
                inter.efficiency_on(ds).accuracy
                >= member.efficiency_on(ds).accuracy
            )


class TestMajority:
    def test_two_of_three(self):
        combo = majority([A(), B(), C()])
        # a and b fire, c does not: 2/3 > half.
        assert combo.check({"v1": 2.0, "v2": 0.0})
        # only a fires: 1/3.
        assert not combo.check({"v1": 2.0, "v2": 1.0})

    def test_rows_match_scalar(self):
        ds = make_separable()
        combo = majority([A(), B(), C()])
        flags = combo.flags_for(ds)
        for i in range(30):
            state = {"v1": ds.x[i, 0], "v2": ds.x[i, 1]}
            assert bool(flags[i]) == combo.predicate.evaluate(state)

    def test_single_member_majority_is_member(self):
        combo = majority([A()])
        assert combo.check({"v1": 2.0})
        assert not combo.check({"v1": 0.0})

    def test_source_is_executable(self):
        combo = majority([A(), B(), C()])
        namespace = {}
        exec(combo.to_source(), namespace)
        fn = namespace["majority"]
        assert fn({"v1": 2.0, "v2": 0.0}) is True
        assert fn({"v1": 2.0, "v2": 1.0}) is False

    def test_simplify_preserves_semantics(self):
        combo = majority([A(), B(), C()])
        simplified = combo.predicate.simplify()
        for state in ({"v1": 2.0, "v2": 0.0}, {"v1": 2.0, "v2": 1.0},
                      {"v1": 0.0, "v2": 0.0}):
            assert simplified.evaluate(state) == combo.predicate.evaluate(state)


class TestValidation:
    def test_empty_composition_rejected(self):
        for combinator in (any_of, all_of, majority):
            with pytest.raises(ValueError):
                combinator([])

    def test_member_names(self):
        combo = any_of([A(), B()], name="union")
        assert combo.member_names == ("a", "b")
        assert combo.name == "union"

    def test_counters_work(self):
        combo = any_of([A(), B()])
        combo.check({"v1": 2.0, "v2": 1.0})
        combo.check({"v1": 0.0, "v2": 1.0})
        assert combo.evaluations == 2
        assert combo.detections == 1


class TestStaticAnalysisInteraction:
    """Composites through the PR's checker, compiler and lint."""

    def test_any_of_overlapping_members_canonicalised(self):
        from repro.analysis.simplify import simplify_predicate

        combo = any_of([det("v1", ">", 1.0, "narrow"), det("v1", ">", 0.0, "wide")])
        result = simplify_predicate(combo.predicate)
        assert result.simplified == Comparison("v1", ">", 0.0)

    def test_all_of_contradiction_detected(self):
        from repro.analysis.simplify import simplify_predicate
        from repro.core.predicate import FalsePredicate

        combo = all_of([det("v1", ">", 5.0, "hi"), det("v1", "<=", 1.0, "lo")])
        result = simplify_predicate(combo.predicate)
        assert isinstance(result.simplified, FalsePredicate)
        assert result.verdicts_with("unsatisfiable")

    def test_any_all_compile_to_native_evaluators(self):
        from repro.runtime.compile import compile_predicate

        for combo in (any_of([A(), B()]), all_of([A(), B()])):
            assert compile_predicate(combo.predicate).mode == "compiled"

    def test_majority_compiles_via_interpreted_fallback(self):
        from repro.runtime.compile import compile_predicate

        combo = majority([A(), B(), C()])
        compiled = compile_predicate(combo.predicate)
        assert compiled.mode == "interpreted"
        state = {"v1": 2.0, "v2": 0.0}
        assert compiled.evaluate(state) == combo.predicate.evaluate(state)

    def test_majority_triggers_fallback_lint(self):
        from repro.analysis.lint import LintContext, Linter

        combo = majority([A(), B(), C()])
        findings = Linter(select=["interpreted-fallback"]).run(
            LintContext(predicates={"vote": combo.predicate})
        )
        assert [f.rule for f in findings] == ["interpreted-fallback"]

"""Step 4 refinement: grid enumeration details, trial ordering and the
model-level half (``refine_predicate``)."""

import dataclasses

from repro.core.predicate import And, Comparison, FalsePredicate
from repro.core.refine import (
    PAPER_NEIGHBOUR_COUNTS,
    PAPER_OVERSAMPLE_LEVELS,
    PAPER_UNDERSAMPLE_LEVELS,
    RefinementGrid,
    RefinementResult,
    RefinementTrial,
    refine,
    refine_predicate,
)
from repro.mining.tree import C45DecisionTree
from tests.conftest import make_imbalanced

TINY_GRID = RefinementGrid(
    undersample_levels=(25.0,),
    oversample_levels=(200.0,),
    neighbour_counts=(3,),
)


class TestGrid:
    def test_paper_constants(self):
        assert len(PAPER_UNDERSAMPLE_LEVELS) == 10
        assert len(PAPER_OVERSAMPLE_LEVELS) == 15
        assert len(PAPER_NEIGHBOUR_COUNTS) == 15
        assert PAPER_UNDERSAMPLE_LEVELS[0] == 5.0
        assert PAPER_OVERSAMPLE_LEVELS[-1] == 1500.0

    def test_plain_oversample_excluded(self):
        grid = dataclasses.replace(TINY_GRID, include_plain_oversample=False)
        plans = list(grid.plans())
        assert len(plans) == grid.size() == 2
        assert all(
            p.neighbours is not None
            for p in plans
            if p.sampling in ("oversample", "smote")
        )

    def test_smote_plans_carry_neighbours(self):
        smote = [p for p in TINY_GRID.plans() if p.sampling == "smote"]
        assert [p.neighbours for p in smote] == [3]
        assert all(p.level == 200.0 for p in smote)

    def test_undersample_plans_have_no_neighbours(self):
        under = [p for p in TINY_GRID.plans() if p.sampling == "undersample"]
        assert [p.neighbours for p in under] == [None]


class TestTrialOrdering:
    def _trial(self, auc, tpr, complexity):
        class _Eval:
            mean_auc = auc
            mean_tpr = tpr
            mean_complexity = complexity

        return RefinementTrial(plan=None, evaluation=_Eval())

    def test_auc_dominates(self):
        assert self._trial(0.9, 0.1, 9).key > self._trial(0.8, 1.0, 1).key

    def test_tpr_breaks_auc_ties(self):
        assert self._trial(0.9, 0.8, 9).key > self._trial(0.9, 0.7, 1).key

    def test_smaller_tree_breaks_full_ties(self):
        assert self._trial(0.9, 0.8, 3).key > self._trial(0.9, 0.8, 7).key

    def test_ranked_respects_key(self):
        trials = [self._trial(0.7, 0.5, 5), self._trial(0.9, 0.5, 5)]
        result = RefinementResult(trials, best=trials[1])
        assert result.ranked()[0] is trials[1]


class TestRefineRun:
    def test_trials_cover_grid(self):
        result = refine(
            make_imbalanced(n=200), C45DecisionTree, TINY_GRID, folds=3
        )
        assert len(result.trials) == TINY_GRID.size()
        assert result.best in result.trials

    def test_seed_changes_streams_not_structure(self):
        ds = make_imbalanced(n=200)
        a = refine(ds, C45DecisionTree, TINY_GRID, folds=3, seed=1)
        b = refine(ds, C45DecisionTree, TINY_GRID, folds=3, seed=2)
        assert [t.plan for t in a.trials] == [t.plan for t in b.trials]


class TestRefinePredicate:
    def test_returns_simplification_result(self):
        fat = And([Comparison("x", "<=", 5.0), Comparison("x", "<=", 9.0)])
        result = refine_predicate(fat)
        assert result.simplified == Comparison("x", "<=", 5.0)
        assert result.atoms_before == 2
        assert result.atoms_after == 1

    def test_unsatisfiable_model_surfaces(self):
        bogus = And([Comparison("x", "<=", 1.0), Comparison("x", ">", 5.0)])
        result = refine_predicate(bogus)
        assert isinstance(result.simplified, FalsePredicate)
        assert result.verdicts_with("unsatisfiable")

    def test_already_minimal_is_unchanged(self):
        lean = Comparison("x", ">", 0.0)
        result = refine_predicate(lean)
        assert result.simplified == lean
        assert not result.changed

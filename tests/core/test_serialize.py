"""Tests for predicate/detector JSON serialisation."""

import pytest
from hypothesis import given, settings

from repro.core.detector import Detector
from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    TruePredicate,
)
from repro.core.serialize import (
    SerializationError,
    detector_from_dict,
    detector_to_dict,
    predicate_from_dict,
    predicate_from_json,
    predicate_to_dict,
    predicate_to_json,
)
from repro.injection.instrument import Location, Probe
from tests.core.test_predicate import predicates


SAMPLE = Or([
    And([Comparison("v", ">", 1.5), Comparison("flag", "==", 1.0, label="on")]),
    Comparison("w", "<=", -2.0),
])


class TestPredicateRoundTrip:
    def test_constants(self):
        assert predicate_from_dict(predicate_to_dict(TruePredicate())) == (
            TruePredicate()
        )
        assert predicate_from_dict(predicate_to_dict(FalsePredicate())) == (
            FalsePredicate()
        )

    def test_comparison_with_label(self):
        atom = Comparison("flag", "==", 1.0, label="on")
        again = predicate_from_dict(predicate_to_dict(atom))
        assert again == atom
        assert again.label == "on"

    def test_nested_structure(self):
        again = predicate_from_json(predicate_to_json(SAMPLE))
        assert again == SAMPLE

    def test_evaluation_preserved(self):
        again = predicate_from_json(predicate_to_json(SAMPLE))
        for state in ({"v": 2.0, "flag": True, "w": 0.0},
                      {"v": 0.0, "flag": False, "w": -3.0},
                      {"v": 0.0, "flag": False, "w": 0.0}):
            assert again.evaluate(state) == SAMPLE.evaluate(state)

    @given(predicate=predicates())
    @settings(deadline=None, max_examples=100)
    def test_roundtrip_property(self, predicate):
        assert predicate_from_json(predicate_to_json(predicate)) == predicate


class TestErrors:
    def test_unknown_type(self):
        with pytest.raises(SerializationError):
            predicate_from_dict({"type": "xor"})

    def test_missing_type(self):
        with pytest.raises(SerializationError):
            predicate_from_dict({})

    def test_bad_comparison(self):
        with pytest.raises(SerializationError):
            predicate_from_dict({"type": "comparison", "variable": "v"})

    def test_bad_children(self):
        with pytest.raises(SerializationError):
            predicate_from_dict({"type": "and", "children": "nope"})

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            predicate_from_json("{not json")

    def test_custom_atom_rejected(self):
        from repro.baselines.invariants import _OrderingViolation

        with pytest.raises(SerializationError):
            predicate_to_dict(_OrderingViolation("a", "b"))


class TestDetectorRoundTrip:
    def test_with_location(self):
        detector = Detector(
            SAMPLE, location=Probe("Gear", Location.ENTRY), name="d1"
        )
        again = detector_from_dict(detector_to_dict(detector))
        assert again.name == "d1"
        assert again.location == Probe("Gear", Location.ENTRY)
        assert again.predicate == SAMPLE

    def test_without_location(self):
        detector = Detector(TruePredicate(), name="d2")
        again = detector_from_dict(detector_to_dict(detector))
        assert again.location is None
        assert again.name == "d2"

    def test_bad_payloads(self):
        with pytest.raises(SerializationError):
            detector_from_dict({"name": "x"})
        with pytest.raises(SerializationError):
            detector_from_dict(
                {"name": "x", "predicate": {"type": "true"},
                 "location": {"module": "M", "location": "middle"}}
            )

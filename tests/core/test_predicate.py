"""Unit and property tests for the predicate algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    PredicateError,
    TruePredicate,
)


V_LE_5 = Comparison("v", "<=", 5.0)
V_GT_5 = Comparison("v", ">", 5.0)
W_EQ_1 = Comparison("w", "==", 1.0, label="on")


class TestComparison:
    def test_evaluate_dict(self):
        assert V_LE_5.evaluate({"v": 4.0})
        assert not V_LE_5.evaluate({"v": 6.0})
        assert V_GT_5.evaluate({"v": 6.0})

    def test_boolean_state_values(self):
        on = Comparison("armed", "==", 1.0, label="true")
        assert on.evaluate({"armed": True})
        assert not on.evaluate({"armed": False})

    def test_missing_variable_false(self):
        assert not V_LE_5.evaluate({})

    def test_nan_value_false(self):
        assert not V_LE_5.evaluate({"v": float("nan")})
        assert not V_GT_5.evaluate({"v": float("nan")})

    def test_non_numeric_state_false(self):
        assert not V_LE_5.evaluate({"v": "garbage"})

    def test_ne_operator(self):
        ne = Comparison("v", "!=", 5.0)
        assert ne.evaluate({"v": 4.0})
        assert not ne.evaluate({"v": 5.0})

    def test_evaluate_rows(self):
        x = np.array([[4.0], [6.0], [np.nan]])
        mask = V_LE_5.evaluate_rows(x, {"v": 0})
        assert mask.tolist() == [True, False, False]

    def test_rows_unknown_variable_all_false(self):
        x = np.array([[4.0]])
        assert not V_LE_5.evaluate_rows(x, {"other": 0}).any()

    def test_validation(self):
        with pytest.raises(PredicateError):
            Comparison("v", "<", 5.0)
        with pytest.raises(PredicateError):
            Comparison("v", "<=", float("inf"))

    def test_str_uses_label(self):
        assert "on" in str(W_EQ_1)

    def test_complexity(self):
        assert V_LE_5.complexity() == 1


class TestConstants:
    def test_true(self):
        assert TruePredicate().evaluate({})
        assert TruePredicate().evaluate_rows(np.zeros((3, 1)), {}).all()
        assert TruePredicate().complexity() == 0

    def test_false(self):
        assert not FalsePredicate().evaluate({})
        assert not FalsePredicate().evaluate_rows(np.zeros((3, 1)), {}).any()


class TestConnectives:
    def test_and_semantics(self):
        p = And([V_GT_5, Comparison("w", "<=", 2.0)])
        assert p.evaluate({"v": 6.0, "w": 1.0})
        assert not p.evaluate({"v": 6.0, "w": 3.0})

    def test_or_semantics(self):
        p = Or([V_GT_5, Comparison("w", "<=", 2.0)])
        assert p.evaluate({"v": 1.0, "w": 1.0})
        assert not p.evaluate({"v": 1.0, "w": 3.0})

    def test_rows_match_scalar(self):
        p = Or([And([V_LE_5, W_EQ_1]), V_GT_5])
        x = np.array([[4.0, 1.0], [4.0, 0.0], [6.0, 0.0]])
        rows = p.evaluate_rows(x, {"v": 0, "w": 1})
        scalar = [
            p.evaluate({"v": row[0], "w": row[1]}) for row in x
        ]
        assert rows.tolist() == scalar

    def test_variables(self):
        p = And([V_LE_5, W_EQ_1])
        assert p.variables() == {"v", "w"}

    def test_str_parenthesises_nested(self):
        p = Or([And([V_LE_5, W_EQ_1]), V_GT_5])
        assert "(" in str(p)

    def test_to_source_evaluates(self):
        p = Or([And([V_LE_5, W_EQ_1]), V_GT_5])
        source = p.to_source("state")
        for state in ({"v": 4.0, "w": 1.0}, {"v": 9.0, "w": 0.0},
                      {"v": 4.0, "w": 0.0}):
            assert eval(source, {}, {"state": state}) == p.evaluate(state)

    def test_to_source_missing_variable_is_false(self):
        # The rendered assertion must not raise (or flag) when the
        # target cannot provide a variable -- same as evaluate().
        p = Or([And([V_LE_5, W_EQ_1]), V_GT_5])
        source = p.to_source("state")
        for state in ({}, {"v": 4.0}, {"w": 1.0}):
            assert eval(source, {}, {"state": state}) == p.evaluate(state)

    def test_to_source_nan_is_false_for_every_operator(self):
        nan_state = {"v": float("nan")}
        for op in ("<=", ">", "==", "!="):
            source = Comparison("v", op, 5.0).to_source("state")
            assert eval(source, {}, {"state": nan_state}) is False, op
            assert eval(source, {}, {"state": {}}) is False, op


class TestSimplify:
    def test_empty_and_is_true(self):
        assert isinstance(And([]).simplify(), TruePredicate)

    def test_empty_or_is_false(self):
        assert isinstance(Or([]).simplify(), FalsePredicate)

    def test_false_annihilates_and(self):
        assert isinstance(
            And([V_LE_5, FalsePredicate()]).simplify(), FalsePredicate
        )

    def test_true_annihilates_or(self):
        assert isinstance(
            Or([V_LE_5, TruePredicate()]).simplify(), TruePredicate
        )

    def test_identity_elements_dropped(self):
        assert And([V_LE_5, TruePredicate()]).simplify() == V_LE_5
        assert Or([V_LE_5, FalsePredicate()]).simplify() == V_LE_5

    def test_flattening(self):
        nested = And([And([V_LE_5]), And([W_EQ_1])]).simplify()
        assert isinstance(nested, And)
        assert len(nested.children) == 2

    def test_duplicate_removal(self):
        assert And([V_LE_5, V_LE_5]).simplify() == V_LE_5

    def test_conjunction_bound_merging(self):
        p = And([Comparison("v", "<=", 5.0), Comparison("v", "<=", 7.0)])
        assert p.simplify() == Comparison("v", "<=", 5.0)
        p = And([Comparison("v", ">", 2.0), Comparison("v", ">", 4.0)])
        assert p.simplify() == Comparison("v", ">", 4.0)

    def test_disjunction_bound_merging(self):
        p = Or([Comparison("v", "<=", 5.0), Comparison("v", "<=", 7.0)])
        assert p.simplify() == Comparison("v", "<=", 7.0)

    def test_single_child_unwrapped(self):
        assert Or([And([V_LE_5])]).simplify() == V_LE_5


@st.composite
def predicates(draw, depth=0) -> Predicate:
    if depth >= 3 or draw(st.booleans()):
        variable = draw(st.sampled_from(["a", "b", "c"]))
        op = draw(st.sampled_from(["<=", ">"]))
        value = draw(st.floats(-10, 10, allow_nan=False))
        return Comparison(variable, op, value)
    connective = draw(st.sampled_from([And, Or]))
    children = draw(
        st.lists(predicates(depth=depth + 1), min_size=1, max_size=3)
    )
    return connective(children)


@given(predicate=predicates(), a=st.floats(-12, 12), b=st.floats(-12, 12),
       c=st.floats(-12, 12))
@settings(deadline=None, max_examples=150)
def test_simplify_preserves_semantics(predicate, a, b, c):
    """Property: simplification never changes the predicate's value."""
    state = {"a": a, "b": b, "c": c}
    assert predicate.simplify().evaluate(state) == predicate.evaluate(state)


@given(predicate=predicates())
@settings(deadline=None, max_examples=100)
def test_simplify_never_grows(predicate):
    assert predicate.simplify().complexity() <= predicate.complexity()


@given(predicate=predicates(), a=st.floats(-12, 12), b=st.floats(-12, 12),
       c=st.floats(-12, 12))
@settings(deadline=None, max_examples=100)
def test_rows_and_dict_evaluation_agree(predicate, a, b, c):
    state = {"a": a, "b": b, "c": c}
    x = np.array([[a, b, c]])
    index = {"a": 0, "b": 1, "c": 2}
    assert bool(predicate.evaluate_rows(x, index)[0]) == predicate.evaluate(state)

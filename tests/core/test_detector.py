"""Tests for the detector component."""

from repro.core.detector import Detector
from repro.core.predicate import Comparison, FalsePredicate, TruePredicate
from repro.injection.instrument import Location, Probe
from tests.conftest import make_separable


def exact_detector():
    """Detector implementing the ground-truth concept of make_separable."""
    from repro.core.predicate import And

    return Detector(
        And([Comparison("v1", ">", 1.0), Comparison("v2", "<=", 0.3)]),
        location=Probe("M", Location.ENTRY),
        name="exact",
    )


class TestCheck:
    def test_flags_positive_state(self):
        det = exact_detector()
        assert det.check({"v1": 2.0, "v2": 0.0})
        assert not det.check({"v1": 0.0, "v2": 0.0})

    def test_counters(self):
        det = exact_detector()
        det.check({"v1": 2.0, "v2": 0.0})
        det.check({"v1": 0.0, "v2": 0.0})
        assert det.evaluations == 2
        assert det.detections == 1
        det.reset_counters()
        assert det.evaluations == det.detections == 0


class TestEfficiency:
    def test_perfect_on_ground_truth(self):
        ds = make_separable()
        eff = exact_detector().efficiency_on(ds)
        assert eff.completeness == 1.0
        assert eff.accuracy == 1.0
        assert eff.is_perfect

    def test_true_predicate_complete_inaccurate(self):
        ds = make_separable()
        det = Detector(TruePredicate())
        eff = det.efficiency_on(ds)
        assert eff.completeness == 1.0
        assert eff.accuracy == 0.0

    def test_false_predicate_accurate_incomplete(self):
        ds = make_separable()
        det = Detector(FalsePredicate())
        eff = det.efficiency_on(ds)
        assert eff.completeness == 0.0
        assert eff.accuracy == 1.0

    def test_str(self):
        ds = make_separable()
        text = str(exact_detector().efficiency_on(ds))
        assert "completeness" in text and "accuracy" in text

    def test_flags_for_shape(self):
        ds = make_separable()
        flags = exact_detector().flags_for(ds)
        assert flags.shape == (len(ds),)
        assert flags.dtype == bool


class TestSource:
    def test_source_is_executable(self):
        det = exact_detector()
        namespace = {}
        exec(det.to_source(), namespace)
        fn = namespace["exact"]
        assert fn({"v1": 2.0, "v2": 0.0}) is True
        assert fn({"v1": 0.0, "v2": 0.0}) is False

    def test_source_mentions_location(self):
        assert "M@entry" in exact_detector().to_source()

    def test_repr(self):
        assert "exact" in repr(exact_detector())


class TestCompileCache:
    def test_compile_is_cached(self):
        det = exact_detector()
        assert det.compile() is det.compile()

    def test_force_recompiles(self):
        det = exact_detector()
        first = det.compile()
        assert det.compile(force=True) is not first

    def test_predicate_reassignment_invalidates(self):
        det = exact_detector()
        first = det.compile()
        det.predicate = Comparison("v1", ">", 2.0)
        second = det.compile()
        assert second is not first
        assert second.predicate == Comparison("v1", ">", 2.0)
        assert not second.evaluate({"v1": 1.5, "v2": 0.0})

    def test_same_predicate_assignment_keeps_cache(self):
        det = exact_detector()
        first = det.compile()
        det.predicate = det.predicate
        assert det.compile() is first

"""Tests for runtime-assertion validation (Section VII-D)."""

import pytest

from repro.core.detector import Detector
from repro.core.predicate import And, Comparison, FalsePredicate, TruePredicate
from repro.core.validate import ValidationCampaign
from tests.injection.test_campaign import CounterTarget, config


class TestValidationCampaign:
    def test_true_predicate_flags_everything(self):
        campaign = ValidationCampaign(
            CounterTarget(), config(), Detector(TruePredicate())
        )
        report = campaign.validate()
        assert report.observed_tpr == 1.0
        assert report.observed_fpr == 1.0

    def test_false_predicate_flags_nothing(self):
        campaign = ValidationCampaign(
            CounterTarget(), config(), Detector(FalsePredicate())
        )
        report = campaign.validate()
        assert report.observed_tpr == 0.0
        assert report.observed_fpr == 0.0

    def test_ground_truth_detector_is_perfect(self):
        """CounterTarget failures are exactly the acc-flips; at the
        entry sample the corrupted acc is distinguishable: golden acc
        values at times 1 and 2 are tc+0 and tc+1, i.e. <= 2, while
        bit flips of bits 0-2 can reach at most 2+7... so use the
        deviation predicate acc > 2 OR acc < 0 plus flips that lower
        acc below golden."""
        # Flips of bits 0..2 on acc in {0,1,2} give values in 0..7
        # different from golden; values <= 2 can collide with benign
        # states, so restrict the campaign to bit 2 (+/-4), which
        # always escapes the golden range.
        cfg = config(bits=(2,))
        detector = Detector(
            And([Comparison("acc", ">", 2.5)]),
        )
        report = ValidationCampaign(CounterTarget(), cfg, detector).validate()
        assert report.observed_tpr == 1.0
        assert report.observed_fpr == 0.0

    def test_single_mode_evaluates_once_per_run(self):
        detector = Detector(TruePredicate())
        campaign = ValidationCampaign(CounterTarget(), config(), detector)
        report = campaign.validate()
        assert detector.evaluations == len(report.verdicts)

    def test_continuous_mode_evaluates_until_detection(self):
        detector = Detector(FalsePredicate())
        campaign = ValidationCampaign(
            CounterTarget(), config(), detector, mode="continuous"
        )
        report = campaign.validate()
        # Never detects, so every occurrence from injection to the end
        # is evaluated: more evaluations than runs.
        assert detector.evaluations > len(report.verdicts)

    def test_latency_zero_when_detected_at_injection(self):
        cfg = config(bits=(2,))
        detector = Detector(Comparison("acc", ">", 2.5))
        report = ValidationCampaign(
            CounterTarget(), cfg, detector, mode="continuous"
        ).validate()
        detected = [v for v in report.verdicts if v.flagged and v.record.failed]
        assert detected
        assert report.mean_latency == pytest.approx(0.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ValidationCampaign(
                CounterTarget(), config(), Detector(TruePredicate()),
                mode="sometimes",
            ).validate()

    def test_commensurate_check(self):
        campaign = ValidationCampaign(
            CounterTarget(), config(), Detector(TruePredicate())
        )
        report = campaign.validate()
        assert report.commensurate_with(1.0, 1.0, tolerance=0.01)
        assert not report.commensurate_with(0.5, 0.0, tolerance=0.1)

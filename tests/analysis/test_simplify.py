"""Checker/simplifier: verdicts, canonical form and the equivalence
property (the acceptance gate for every rewrite in the module)."""

from hypothesis import given, settings, strategies as st

from repro.analysis.simplify import check_predicate, simplify_predicate
from repro.core.predicate import (
    And,
    Comparison,
    FalsePredicate,
    Or,
    Predicate,
    TruePredicate,
)

NAN = float("nan")


def statuses(predicate):
    return {v.status for v in check_predicate(predicate)}


class TestUnsatisfiable:
    def test_contradictory_bounds(self):
        clause = And([Comparison("x", "<=", 1.0), Comparison("x", ">", 5.0)])
        result = simplify_predicate(clause)
        assert isinstance(result.simplified, FalsePredicate)
        assert result.verdicts_with("unsatisfiable")

    def test_eq_outside_bounds(self):
        clause = And([Comparison("x", "==", 9.0), Comparison("x", "<=", 5.0)])
        assert isinstance(simplify_predicate(clause).simplified, FalsePredicate)

    def test_eq_against_ne(self):
        clause = And([Comparison("x", "==", 2.0), Comparison("x", "!=", 2.0)])
        assert isinstance(simplify_predicate(clause).simplified, FalsePredicate)

    def test_dead_branch_dropped_not_whole_predicate(self):
        dead = And([Comparison("x", "<=", 1.0), Comparison("x", ">", 5.0)])
        live = Comparison("y", ">", 0.0)
        result = simplify_predicate(Or([dead, live]))
        assert result.simplified == live


class TestRedundantAtoms:
    def test_tighter_bound_wins(self):
        clause = And([Comparison("x", "<=", 5.0), Comparison("x", "<=", 9.0)])
        result = simplify_predicate(clause)
        assert result.simplified == Comparison("x", "<=", 5.0)
        assert result.verdicts_with("redundant")

    def test_eq_absorbs_bounds(self):
        clause = And(
            [
                Comparison("x", "==", 3.0),
                Comparison("x", "<=", 5.0),
                Comparison("x", ">", 0.0),
            ]
        )
        assert simplify_predicate(clause).simplified == Comparison("x", "==", 3.0)

    def test_ne_subsumed_by_bounds(self):
        clause = And([Comparison("x", "<=", 5.0), Comparison("x", "!=", 9.0)])
        assert simplify_predicate(clause).simplified == Comparison("x", "<=", 5.0)

    def test_labels_survive(self):
        labelled = Comparison("x", "<=", 5.0, label="leaf-3")
        clause = And([labelled, Comparison("x", "<=", 9.0)])
        assert simplify_predicate(clause).simplified.label == "leaf-3"


class TestSubsumption:
    def test_weaker_branch_absorbs_stronger(self):
        weak = Comparison("x", "<=", 9.0)
        strong = And([Comparison("x", "<=", 5.0), Comparison("y", ">", 0.0)])
        result = simplify_predicate(Or([strong, weak]))
        assert result.simplified == weak
        assert result.verdicts_with("subsumed")

    def test_duplicate_branches_collapse(self):
        branch = Comparison("x", ">", 1.0)
        result = simplify_predicate(Or([branch, Comparison("x", ">", 1.0)]))
        assert result.simplified == branch

    def test_variable_set_guard(self):
        # {x<=5} does NOT subsume {x<=9, y>0}: a state with y missing
        # satisfies neither definedness story the same way; both stay.
        a = Comparison("x", "<=", 5.0)
        b = And([Comparison("x", "<=", 9.0), Comparison("y", ">", 0.0)])
        result = simplify_predicate(Or([b, a]))
        assert isinstance(result.simplified, Or)
        assert len(result.simplified.children) == 2


class TestMerging:
    def test_abutting_intervals_fuse(self):
        low = And([Comparison("x", ">", 0.0), Comparison("x", "<=", 5.0)])
        high = And([Comparison("x", ">", 5.0), Comparison("x", "<=", 9.0)])
        result = simplify_predicate(Or([low, high]))
        assert result.simplified == And(
            [Comparison("x", ">", 0.0), Comparison("x", "<=", 9.0)]
        )
        assert result.verdicts_with("merged")

    def test_full_range_not_merged(self):
        # x <= 5 OR x > 5 stays: it is false for missing/NaN x.
        disj = Or([Comparison("x", "<=", 5.0), Comparison("x", ">", 5.0)])
        result = simplify_predicate(disj)
        assert isinstance(result.simplified, Or)
        assert result.verdicts_with("vacuous")
        assert not result.verdicts_with("merged")


class TestContextPropagation:
    def test_tautological_atom_inside_conjunction(self):
        clause = And(
            [
                Comparison("x", "<=", 3.0),
                Or([Comparison("x", "<=", 5.0), Comparison("y", ">", 0.0)]),
            ]
        )
        result = simplify_predicate(clause)
        # x <= 3 makes the x <= 5 branch always true, absorbing the Or.
        assert result.simplified == Comparison("x", "<=", 3.0)
        assert result.verdicts_with("tautological")

    def test_contradicting_branch_inside_conjunction(self):
        clause = And(
            [
                Comparison("x", ">", 7.0),
                Or([Comparison("x", "<=", 5.0), Comparison("y", ">", 0.0)]),
            ]
        )
        result = simplify_predicate(clause)
        assert result.simplified == And(
            [Comparison("x", ">", 7.0), Comparison("y", ">", 0.0)]
        )


class TestCanonicalForm:
    def test_atoms_sorted_by_variable(self):
        clause = And(
            [
                Comparison("z", ">", 0.0),
                Comparison("a", "<=", 1.0),
                Comparison("m", "==", 2.0),
            ]
        )
        simplified = simplify_predicate(clause).simplified
        assert [c.variable for c in simplified.children] == ["a", "m", "z"]

    def test_idempotent(self):
        predicate = Or(
            [
                And([Comparison("x", "<=", 5.0), Comparison("x", "<=", 9.0)]),
                Comparison("y", ">", 0.0),
                Comparison("y", ">", 2.0),
            ]
        )
        once = simplify_predicate(predicate).simplified
        twice = simplify_predicate(once)
        assert twice.simplified == once
        assert not twice.changed

    def test_never_grows(self):
        predicate = Or(
            [And([Comparison("x", ">", 0.0)]), Comparison("x", "<=", 0.0)]
        )
        result = simplify_predicate(predicate)
        assert result.atoms_after <= result.atoms_before


class TestOpaqueAtoms:
    def test_kept_verbatim(self):
        class Custom(Predicate):
            def evaluate(self, state):
                return False

            def evaluate_rows(self, x, attribute_index):
                raise NotImplementedError

            def variables(self):
                return frozenset(("q",))

            def simplify(self):
                return self

            def complexity(self):
                return 1

            def _source(self, state_name):
                return "False"

        custom = Custom()
        clause = And([Comparison("x", "<=", 5.0), custom])
        simplified = simplify_predicate(clause).simplified
        assert custom in simplified.children

    def test_composition_majority_survives(self):
        from repro.core.composition import _MajorityPredicate

        vote = _MajorityPredicate(
            [Comparison("a", ">", 0.0), Comparison("b", ">", 0.0),
             Comparison("c", ">", 0.0)]
        )
        result = simplify_predicate(vote)
        state = {"a": 1.0, "b": 1.0, "c": -1.0}
        assert result.simplified.evaluate(state) == vote.evaluate(state)


# ----------------------------------------------------------------------
# Property: simplified == original on random states (NaN and missing
# variables included) -- the soundness contract of every rewrite.
# ----------------------------------------------------------------------
values = st.one_of(
    st.floats(min_value=-10, max_value=10),
    st.just(NAN),
    st.just(float("inf")),
    st.just(float("-inf")),
)
variables = st.sampled_from(["a", "b", "c", "d"])
comparisons = st.builds(
    Comparison,
    variable=variables,
    op=st.sampled_from(["<=", ">", "==", "!="]),
    value=st.sampled_from([-2.0, -1.0, 0.0, 1.0, 2.0]),
)
predicates = st.recursive(
    st.one_of(
        comparisons,
        st.just(TruePredicate()),
        st.just(FalsePredicate()),
    ),
    lambda children: st.one_of(
        st.builds(lambda cs: And(cs), st.lists(children, max_size=4)),
        st.builds(lambda cs: Or(cs), st.lists(children, max_size=4)),
    ),
    max_leaves=16,
)
states = st.dictionaries(variables, values, max_size=4)


@settings(max_examples=300, deadline=None)
@given(predicate=predicates, state=states)
def test_simplified_equals_original_property(predicate, state):
    result = simplify_predicate(predicate)
    assert result.simplified.evaluate(state) == predicate.evaluate(state)
    assert result.atoms_after <= result.atoms_before


@settings(max_examples=150, deadline=None)
@given(predicate=predicates)
def test_simplification_idempotent_property(predicate):
    once = simplify_predicate(predicate).simplified
    assert simplify_predicate(once).simplified == once

"""The low-sample-stratum lint rule and campaign-document loading."""

import json

from repro.analysis.lint import LintContext, Linter, Severity
from repro.injection.sampling import (
    ClassEstimate,
    SamplingReport,
    SamplingSpec,
    StratumEstimate,
)

SPEC = SamplingSpec(target_halfwidth=0.05, min_cells=32)


def classes(fail_low, fail_high, fail_rate=None):
    """A three-class estimate table; ok/crash are tight and far from
    any boundary, fail carries the interval under test."""
    rate = fail_rate if fail_rate is not None else (fail_low + fail_high) / 2
    return {
        "ok": ClassEstimate(count=90, rate=0.9, low=0.88, high=0.92),
        "fail": ClassEstimate(
            count=int(rate * 100), rate=rate, low=fail_low, high=fail_high
        ),
        "crash": ClassEstimate(count=0, rate=0.0, low=0.0, high=0.02),
    }


def stratum(**overrides):
    base = dict(
        stratum="x",
        population=1000,
        sampled=200,
        classes=classes(0.08, 0.12),
        method="wilson",
        confidence=0.95,
        target_halfwidth=0.05,
        stopped="converged",
    )
    base.update(overrides)
    return StratumEstimate(**base)


def report(strata, mined=False, spec=SPEC):
    sampled = sum(s.sampled for s in strata)
    return SamplingReport(
        spec=spec,
        strata=strata,
        cells_total=sum(s.population for s in strata),
        cells_sampled=sampled,
        rounds=1,
        mined=mined,
    )


def findings_for(report_obj):
    context = LintContext(sampling={"doc": report_obj})
    return [
        f
        for f in Linter().run(context)
        if f.rule == "low-sample-stratum"
    ]


class TestLowSampleStratumRule:
    def test_converged_stratum_is_silent(self):
        assert findings_for(report([stratum()])) == []

    def test_under_floor_warns(self):
        (finding,) = findings_for(
            report([stratum(sampled=12, stopped="capped")])
        )
        assert finding.severity == Severity.WARNING
        assert "12 sampled" in finding.message
        assert "32-cell floor" in finding.message

    def test_unconverged_width_warns(self):
        (finding,) = findings_for(
            report(
                [stratum(classes=classes(0.05, 0.35), stopped="capped")]
            )
        )
        assert finding.severity == Severity.WARNING
        assert "did not converge" in finding.message

    def test_exhausted_stratum_is_exempt(self):
        # Fully-enumerated strata are exact: no interval can improve
        # them, however few cells the space held.
        degenerate = stratum(
            population=10,
            sampled=10,
            classes=classes(0.05, 0.95),
            stopped="exhausted",
        )
        assert findings_for(report([degenerate])) == []
        assert findings_for(report([degenerate], mined=True)) == []
        empty = stratum(population=0, sampled=0, stopped="exhausted")
        assert findings_for(report([empty])) == []

    def test_straddling_boundary_is_error_only_when_mined(self):
        straddling = stratum(classes=classes(0.35, 0.65), stopped="capped")
        unmined = findings_for(report([straddling]))
        assert {f.severity for f in unmined} == {Severity.WARNING}
        mined = findings_for(report([straddling], mined=True))
        errors = [f for f in mined if f.severity == Severity.ERROR]
        (finding,) = errors
        assert "straddles the 0.50 decision boundary" in finding.message
        assert "'fail'" in finding.message

    def test_boundary_comes_from_the_spec(self):
        spec = SamplingSpec(target_halfwidth=0.05, min_cells=32, boundary=0.1)
        near_tenth = stratum(classes=classes(0.08, 0.12))
        findings = findings_for(report([near_tenth], mined=True, spec=spec))
        assert [f.severity for f in findings] == [Severity.ERROR]

    def test_dict_payloads_are_accepted(self):
        # The CLI hands the rule raw JSON payloads, not live objects.
        payload = report(
            [stratum(sampled=12, stopped="capped")]
        ).to_dict()
        context = LintContext(sampling={"doc": json.loads(json.dumps(payload))})
        findings = [
            f
            for f in Linter().run(context)
            if f.rule == "low-sample-stratum"
        ]
        assert [f.severity for f in findings] == [Severity.WARNING]

    def test_multiple_strata_report_each_weakness(self):
        findings = findings_for(
            report(
                [
                    stratum(stratum="a"),
                    stratum(stratum="b", sampled=5, stopped="capped"),
                    stratum(
                        stratum="c",
                        classes=classes(0.1, 0.4),
                        stopped="capped",
                    ),
                ]
            )
        )
        assert len(findings) == 2
        assert "stratum 'b'" in findings[0].message or "stratum 'b'" in findings[1].message


class TestCampaignDocumentLoading:
    def test_cli_lints_sampled_campaign_documents(self, tmp_path, capsys):
        from repro.cli import main

        document = {
            "format": "repro.injection.campaign",
            "config": {
                "module": "Mix",
                "injection_location": "entry",
                "sample_location": "entry",
                "test_cases": [0],
                "injection_times": [0],
            },
            "journal": "journal/mix",
            "sampling": report(
                [stratum(sampled=12, stopped="capped")]
            ).to_dict(),
        }
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(document))
        code = main(["lint", str(path), "--format", "json"])
        findings = json.loads(capsys.readouterr().out)["findings"]
        ours = [f for f in findings if f["rule"] == "low-sample-stratum"]
        assert len(ours) == 1
        assert ours[0]["severity"] == "warning"
        assert ours[0]["subject"] == "campaign"
        assert code in (0, 1)  # warnings never exit 2

    def test_clean_sampled_document_has_no_findings(self, tmp_path, capsys):
        from repro.cli import main

        document = {
            "format": "repro.injection.campaign",
            "config": {
                "module": "Mix",
                "injection_location": "entry",
                "sample_location": "entry",
                "test_cases": [0],
                "injection_times": [0],
            },
            "journal": "journal/mix",
            "sampling": report([stratum()]).to_dict(),
        }
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(document))
        main(["lint", str(path), "--format", "json"])
        findings = json.loads(capsys.readouterr().out)["findings"]
        assert [f for f in findings if f["rule"] == "low-sample-stratum"] == []

"""Static injection-space pruning: verdicts, synthesis, audit.

The module's one contract is bit-identity: ``run(prune="static")``
must produce the exact record list of the exhaustive campaign --
``to_dict()`` equality, canonical order included -- while executing
only the live and representative points.  These tests check it on a
hand-built target exhibiting every verdict, then property-test it on
randomly generated straight-line and branchy target functions with the
audit running at fraction 1.0 (every analyzer verdict empirically
re-checked, not just sampled).
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.prune import (
    PruneContradiction,
    assemble_records,
    audit_records,
    plan_prune,
    prune_campaign,
)
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.instrument import Harness, Location, VariableSpec
from repro.orchestration.journal import Journal
from repro.orchestration.pool import SerialPool
from repro.targets.base import TargetSystem


class PruneTarget(TargetSystem):
    """Deterministic target exercising every prune verdict.

    * ``raw`` escapes unchanged -> every bit live;
    * ``clip`` is read through ``max(int(.), 10)``: golden 12, so bits
      2 and 3 (-> 8 and 4, both clipped to 10) form one equivalence
      class while bits 0/1 stay live;
    * ``flag`` is only truth-tested: golden 2, so every flip that
      keeps it nonzero is observation-masked (dead), and only bit 1
      (-> 0) is live;
    * ``junk`` is never read -> dead.
    """

    name = "PT"

    @property
    def modules(self):
        return ("Pr",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (
            VariableSpec("raw", "int32"),
            VariableSpec("clip", "int32"),
            VariableSpec("flag", "int32"),
            VariableSpec("junk", "int32"),
        )

    def run(self, test_case, harness: Harness):
        raw = test_case + 5
        clip = 12
        flag = 2
        junk = 7
        state = harness.probe(
            "Pr",
            Location.ENTRY,
            {"raw": raw, "clip": clip, "flag": flag, "junk": junk},
        )
        acc = state["raw"]
        acc = acc + max(int(state["clip"]), 10)
        if state["flag"]:
            acc = acc + 1
        return acc

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output


def config(**overrides):
    base = dict(
        module="Pr",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 1),
        injection_times=(0,),
        bits=(0, 1, 2, 3),
    )
    base.update(overrides)
    return CampaignConfig(**base)


def table(result):
    return [record.to_dict() for record in result.records]


class TestPlan:
    def test_every_verdict_appears(self):
        plan = prune_campaign(config(), PruneTarget())
        counts = plan.counts
        assert counts["live"] >= 4  # all of raw, plus clip bits 0/1
        assert counts["dead"] >= 5  # junk entirely, flag masked bits
        assert counts["representative"] == 1
        assert counts["member"] == 1

    def test_member_names_its_representative(self):
        plan = prune_campaign(config(), PruneTarget())
        member = plan.point("clip", 3)
        representative = plan.point("clip", 2)
        assert member.verdict == "member"
        assert member.representative_bit == 2
        assert member.class_id == representative.class_id
        assert representative.verdict == "representative"

    def test_junk_is_dead_with_provenance(self):
        plan = prune_campaign(config(), PruneTarget())
        point = plan.point("junk", 0)
        assert point.verdict == "dead"
        assert "never read" in point.reason

    def test_executed_pairs_keep_canonical_order(self):
        plan = prune_campaign(config(), PruneTarget())
        pairs = plan.executed_pairs()
        assert pairs == sorted(
            pairs,
            key=lambda pair: (
                [s.name for s in PruneTarget().variables_of("Pr")].index(
                    pair[0]
                ),
                pair[2],
            ),
        )

    def test_to_dict_round_trips_summary(self):
        plan = prune_campaign(config(), PruneTarget())
        payload = plan.to_dict()
        assert payload["format"] == "repro.analysis.prune"
        assert payload["summary"]["runs_planned"] == 16 * 2
        assert (
            payload["summary"]["runs_executed"]
            + payload["summary"]["runs_pruned"]
            == payload["summary"]["runs_planned"]
        )


class TestBitIdentity:
    def test_pruned_equals_exhaustive(self):
        exhaustive = Campaign(PruneTarget(), config()).run()
        pruned = Campaign(PruneTarget(), config()).run(prune="static")
        assert table(pruned) == table(exhaustive)
        info = pruned.prune
        assert info["mode"] == "static"
        assert info["runs_pruned"] > 0
        assert info["audit"]["contradictions"] == 0

    def test_config_prune_field_selects_the_mode(self):
        pruned = Campaign(PruneTarget(), config(prune="static")).run()
        exhaustive = Campaign(PruneTarget(), config()).run()
        assert table(pruned) == table(exhaustive)

    def test_full_audit_passes(self):
        result = Campaign(PruneTarget(), config()).run(
            prune="static", audit_fraction=1.0
        )
        audit = result.prune["audit"]
        assert audit["audited"] == audit["population"] > 0

    def test_pruned_equals_exhaustive_under_pool_and_journal(self, tmp_path):
        journal = Journal(tmp_path / "run.jsonl")
        pruned = Campaign(PruneTarget(), config()).run(
            pool=SerialPool(), journal=journal, prune="static"
        )
        exhaustive = Campaign(PruneTarget(), config()).run()
        assert table(pruned) == table(exhaustive)
        assert pruned.orchestration["quarantined"] == []

    def test_journal_shards_shared_with_exhaustive_campaign(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        Campaign(PruneTarget(), config()).run(
            pool=SerialPool(), journal=Journal(journal_path)
        )
        pruned = Campaign(PruneTarget(), config()).run(
            pool=SerialPool(), journal=Journal(journal_path), prune="static"
        )
        # Every surviving pair was journaled by the exhaustive run:
        # nothing re-executes despite the differing prune settings.
        assert pruned.orchestration["executed"] == 0
        assert pruned.orchestration["cached"] == pruned.orchestration["tasks"]


class TestGuards:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown prune mode"):
            Campaign(PruneTarget(), config()).run(prune="aggressive")

    def test_after_run_subclass_refuses_pruning(self):
        class Observing(Campaign):
            def _after_run(self, harness, record):
                pass

        with pytest.raises(ValueError, match="cannot prune"):
            Observing(PruneTarget(), config()).run(prune="static")

    def test_prune_campaign_requires_a_target(self):
        with pytest.raises(TypeError, match="target is required"):
            prune_campaign(config())

    def test_config_round_trip_without_prune_keys(self):
        payload = config().to_dict()
        assert "prune" not in payload
        assert config() == CampaignConfig.from_dict(payload)

    def test_config_round_trip_with_prune_keys(self):
        original = config(prune="static", audit_fraction=0.2, audit_seed=7)
        restored = CampaignConfig.from_dict(original.to_dict())
        assert restored.prune == "static"
        assert restored.audit_fraction == 0.2
        assert restored.audit_seed == 7


class TestAudit:
    def test_lying_verdict_raises_contradiction(self):
        campaign = Campaign(PruneTarget(), config())
        plan = plan_prune(campaign)
        # Forge the plan: claim a genuinely live point is dead.
        lying = [
            dataclasses.replace(p, verdict="dead", reason="forged")
            if p.variable == "raw" and p.bit == 0
            else p
            for p in plan.points
        ]
        plan.points = lying
        executed = campaign._execute_pairs(
            plan.executed_pairs(), plan.golden_runs
        )
        records = assemble_records(campaign, plan, executed)
        with pytest.raises(PruneContradiction, match=r"raw\[bit 0\]"):
            audit_records(campaign, plan, records, fraction=1.0)

    def test_zero_fraction_audits_nothing(self):
        campaign = Campaign(PruneTarget(), config())
        plan = plan_prune(campaign)
        executed = campaign._execute_pairs(
            plan.executed_pairs(), plan.golden_runs
        )
        records = assemble_records(campaign, plan, executed)
        audit = audit_records(campaign, plan, records, fraction=0.0)
        assert audit["audited"] == 0

    def test_audit_is_seeded(self):
        campaign = Campaign(PruneTarget(), config())
        plan = plan_prune(campaign)
        executed = campaign._execute_pairs(
            plan.executed_pairs(), plan.golden_runs
        )
        records = assemble_records(campaign, plan, executed)
        first = audit_records(campaign, plan, records, 0.5, seed=3)
        second = audit_records(campaign, plan, records, 0.5, seed=3)
        assert first == second


# ----------------------------------------------------------------------
# Property tests: generated targets, full audit.
# ----------------------------------------------------------------------
SOURCE_HEADER = """\
from repro.injection.instrument import Location


def work(harness, tc):
    u = tc % 7 + 1
    v = 12
    w = 3
    s = harness.probe(
        "Hyp", Location.ENTRY, {"u": u, "v": v, "w": w}
    )
    acc = 0
"""

#: Read templates per variable; each is (name, lines) with {n} the key.
READS = {
    "none": (),
    "discard": ('s["{n}"]',),
    "raw": ('acc = acc + s["{n}"]',),
    "abs": ('acc = acc + abs(s["{n}"])',),
    "maxclip": ('acc = acc + max(s["{n}"], 10)',),
    "minclip": ('acc = acc + min(s["{n}"], 0)',),
    "bool": ('if s["{n}"]:', "    acc = acc + 1"),
    "local": ('x{n} = s["{n}"]', "acc = acc + abs(x{n})"),
    "looped": ("for i in range(2):", '    acc = acc + abs(s["{n}"])'),
}


def build_source(reads: dict[str, str], branchy: bool) -> str:
    lines = [SOURCE_HEADER]
    for name, kind in reads.items():
        body = [line.format(n=name) for line in READS[kind]]
        if branchy and body and not body[0].startswith(("if", "for")):
            body = ["if tc > 0:"] + ["    " + line for line in body]
        lines.extend("    " + line for line in body)
    lines.append("    return acc")
    return "\n".join(lines) + "\n"


class GeneratedTarget(TargetSystem):
    name = "HY"

    def __init__(self, work):
        self._work = work

    @property
    def modules(self):
        return ("Hyp",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (
            VariableSpec("u", "int32"),
            VariableSpec("v", "int32"),
            VariableSpec("w", "int32"),
        )

    def run(self, test_case, harness: Harness):
        return self._work(harness, test_case)

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output


def compile_target(source: str) -> GeneratedTarget:
    namespace: dict = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    return GeneratedTarget(namespace["work"])


GENERATED_CONFIG = CampaignConfig(
    module="Hyp",
    injection_location=Location.ENTRY,
    sample_location=Location.ENTRY,
    test_cases=(0, 1),
    injection_times=(0,),
    bits=(0, 1, 3, 31),
)

read_kinds = st.sampled_from(sorted(READS))


@given(
    reads=st.fixed_dictionaries(
        {"u": read_kinds, "v": read_kinds, "w": read_kinds}
    ),
    branchy=st.booleans(),
)
@settings(deadline=None, max_examples=30)
def test_generated_targets_prune_bit_identically(reads, branchy):
    """Pruned == exhaustive on arbitrary generated targets, with every
    pruned cell audited: any unsound dead/member verdict raises."""
    source = build_source(reads, branchy)
    exhaustive = Campaign(compile_target(source), GENERATED_CONFIG).run()
    campaign = Campaign(compile_target(source), GENERATED_CONFIG)
    plan = plan_prune(campaign, source=source)
    executed = campaign._execute_pairs(plan.executed_pairs(), plan.golden_runs)
    records = assemble_records(campaign, plan, executed)
    audit_records(campaign, plan, records, fraction=1.0)
    assert [r.to_dict() for r in records] == table(exhaustive)


@given(
    reads=st.fixed_dictionaries(
        {"u": read_kinds, "v": read_kinds, "w": read_kinds}
    ),
)
@settings(deadline=None, max_examples=15)
def test_generated_dead_points_are_empirically_masked(reads):
    """Every analyzer-dead point, re-injected for real, reproduces the
    golden outcome: dead means *provably* masked, not probably."""
    source = build_source(reads, branchy=False)
    campaign = Campaign(compile_target(source), GENERATED_CONFIG)
    plan = plan_prune(campaign, source=source)
    for point in plan.points:
        if point.verdict != "dead":
            continue
        from repro.injection.bitflip import BitFlip

        flip = BitFlip(point.variable, point.kind, point.bit)
        for tc in GENERATED_CONFIG.test_cases:
            golden = plan.golden_runs[tc]
            record = campaign._run_one(flip, 0, tc, golden)
            assert not record.failed
            assert not record.crashed

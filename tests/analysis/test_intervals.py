"""Interval domain: membership, intersection, union, atom round-trip."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.intervals import Constraint, atom_constraint
from repro.core.predicate import And, Comparison

INF = math.inf
NAN = float("nan")


class TestAtomConstraint:
    def test_le(self):
        c = atom_constraint(Comparison("x", "<=", 5.0))
        assert c.contains_value(5.0)
        assert c.contains_value(-INF)
        assert not c.contains_value(5.1)

    def test_gt(self):
        c = atom_constraint(Comparison("x", ">", 5.0))
        assert c.contains_value(5.1)
        assert c.contains_value(INF)
        assert not c.contains_value(5.0)

    def test_eq(self):
        c = atom_constraint(Comparison("x", "==", 2.0))
        assert c.contains_value(2.0)
        assert not c.contains_value(2.5)

    def test_ne(self):
        c = atom_constraint(Comparison("x", "!=", 2.0))
        assert not c.contains_value(2.0)
        assert c.contains_value(2.5)

    def test_nan_never_contained(self):
        for op in ("<=", ">", "==", "!="):
            assert not atom_constraint(Comparison("x", op, 0.0)).contains_value(NAN)


class TestIntersect:
    def test_contradiction_is_empty(self):
        le = atom_constraint(Comparison("x", "<=", 1.0))
        gt = atom_constraint(Comparison("x", ">", 5.0))
        assert le.intersect(gt).empty

    def test_touching_bounds_empty(self):
        # (5, inf] & [-inf, 5] -- no value is both > 5 and <= 5.
        le = atom_constraint(Comparison("x", "<=", 5.0))
        gt = atom_constraint(Comparison("x", ">", 5.0))
        assert le.intersect(gt).empty

    def test_point_absorbed(self):
        eq = Constraint.point(3.0)
        bounds = Constraint(lo=0.0, hi=10.0)
        assert bounds.intersect(eq) == eq
        assert eq.intersect(bounds) == eq

    def test_point_outside_empty(self):
        assert Constraint(lo=0.0, hi=10.0).intersect(Constraint.point(11.0)).empty

    def test_excluded_point_filtered_outside_range(self):
        a = Constraint(excluded=frozenset((99.0,)))
        b = Constraint(lo=0.0, hi=10.0)
        assert a.intersect(b).excluded == frozenset()


class TestSubset:
    def test_tighter_interval(self):
        assert Constraint(lo=1.0, hi=2.0).subset_of(Constraint(lo=0.0, hi=3.0))
        assert not Constraint(lo=0.0, hi=3.0).subset_of(Constraint(lo=1.0, hi=2.0))

    def test_point_in_interval(self):
        assert Constraint.point(1.5).subset_of(Constraint(lo=1.0, hi=2.0))
        assert not Constraint.point(1.0).subset_of(Constraint(lo=1.0, hi=2.0))

    def test_empty_subset_of_everything(self):
        assert Constraint.none().subset_of(Constraint.point(0.0))

    def test_excluded_point_blocks_subset(self):
        full = Constraint(lo=0.0, hi=10.0)
        holey = Constraint(lo=0.0, hi=10.0, excluded=frozenset((5.0,)))
        assert holey.subset_of(full)
        assert not full.subset_of(holey)


class TestUnion:
    def test_overlapping_intervals_merge(self):
        union = Constraint(lo=0.0, hi=5.0).union(Constraint(lo=3.0, hi=9.0))
        assert union == Constraint(lo=0.0, hi=9.0)

    def test_touching_intervals_merge(self):
        union = Constraint(hi=5.0).union(Constraint(lo=5.0, hi=9.0))
        assert union == Constraint(hi=9.0)

    def test_gap_unrepresentable(self):
        assert Constraint(lo=0.0, hi=1.0).union(Constraint(lo=5.0, hi=9.0)) is None

    def test_full_range_refused(self):
        # x <= 5 OR x > 5 is a definedness test, not TRUE: missing/NaN
        # states fail it, so the union must not claim the full range.
        le = atom_constraint(Comparison("x", "<=", 5.0))
        gt = atom_constraint(Comparison("x", ">", 5.0))
        assert le.union(gt) is None

    def test_points_and_exclusions_refused(self):
        assert Constraint.point(1.0).union(Constraint(lo=0.0, hi=2.0)) is None
        holey = Constraint(lo=0.0, hi=2.0, excluded=frozenset((1.0,)))
        assert holey.union(Constraint(lo=2.0, hi=3.0)) is None


class TestAtoms:
    def test_round_trip(self):
        c = Constraint(lo=1.0, hi=4.0, excluded=frozenset((2.0,)))
        atoms = c.atoms("x")
        rebuilt = Constraint.full()
        for atom in atoms:
            rebuilt = rebuilt.intersect(atom_constraint(atom))
        assert rebuilt == c

    def test_point_round_trip(self):
        (atom,) = Constraint.point(7.0).atoms("x")
        assert atom == Comparison("x", "==", 7.0)

    def test_empty_and_full_have_no_atom_form(self):
        with pytest.raises(ValueError):
            Constraint.none().atoms("x")
        with pytest.raises(ValueError):
            Constraint.full().atoms("x")


constraints = st.builds(
    lambda lo, width, excl: Constraint(
        lo=lo,
        hi=lo + width,
        excluded=frozenset(e for e in excl if lo < e <= lo + width),
    ),
    st.floats(min_value=-5, max_value=5, allow_nan=False),
    st.floats(min_value=0.5, max_value=10, allow_nan=False),
    st.lists(st.floats(min_value=-5, max_value=15, allow_nan=False), max_size=2),
)
probes = st.floats(min_value=-20, max_value=20, allow_nan=False)


@settings(max_examples=200, deadline=None)
@given(a=constraints, b=constraints, value=probes)
def test_intersect_is_conjunction(a, b, value):
    assert a.intersect(b).contains_value(value) == (
        a.contains_value(value) and b.contains_value(value)
    )


@settings(max_examples=200, deadline=None)
@given(a=constraints, b=constraints, value=probes)
def test_union_when_defined_is_disjunction(a, b, value):
    union = a.union(b)
    if union is not None:
        assert union.contains_value(value) == (
            a.contains_value(value) or b.contains_value(value)
        )


@settings(max_examples=200, deadline=None)
@given(a=constraints, b=constraints, value=probes)
def test_subset_is_sound(a, b, value):
    if a.subset_of(b) and a.contains_value(value):
        assert b.contains_value(value)


@settings(max_examples=200, deadline=None)
@given(c=constraints, value=probes)
def test_atoms_denote_constraint(c, value):
    """The emitted atom conjunction accepts exactly the members."""
    conj = And(list(c.atoms("x")))
    assert conj.evaluate({"x": value}) == c.contains_value(value)

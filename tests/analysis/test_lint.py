"""Lint framework: rules, severities, reporters, exit codes."""

import json

import pytest

from repro.analysis.lint import (
    Finding,
    LintContext,
    Linter,
    LintRule,
    Severity,
    default_rules,
    exit_code,
    register_rule,
    render_json,
    render_text,
)
from repro.analysis.surface import analyze_source
from repro.core.predicate import And, Comparison, Or
from repro.injection.campaign import CampaignConfig
from repro.injection.instrument import Location

UNSAT = And([Comparison("x", "<=", 1.0), Comparison("x", ">", 5.0)])
FAT = And([Comparison("x", "<=", 5.0), Comparison("x", "<=", 9.0)])
VACUOUS = Or([Comparison("x", "<=", 5.0), Comparison("x", ">", 2.0)])
CLEAN = Comparison("y", ">", 0.0)


def rules_fired(predicate):
    findings = Linter().run(LintContext(predicates={"p": predicate}))
    return {f.rule for f in findings}


class TestPredicateRules:
    def test_unsatisfiable_is_error(self):
        findings = Linter().run(LintContext(predicates={"p": UNSAT}))
        by_rule = {f.rule: f for f in findings}
        assert by_rule["unsatisfiable-clause"].severity == Severity.ERROR
        assert by_rule["constant-predicate"].severity == Severity.ERROR

    def test_redundant_atoms_is_info(self):
        findings = Linter().run(LintContext(predicates={"p": FAT}))
        (finding,) = [f for f in findings if f.rule == "redundant-atoms"]
        assert finding.severity == Severity.INFO

    def test_vacuous_disjunction_warns(self):
        assert "vacuous-disjunction" in rules_fired(VACUOUS)

    def test_clean_predicate_no_findings(self):
        assert rules_fired(CLEAN) == set()

    def test_interpreted_fallback(self):
        from repro.core.composition import _MajorityPredicate

        vote = _MajorityPredicate([CLEAN, Comparison("z", ">", 1.0)])
        assert "interpreted-fallback" in rules_fired(vote)

    def test_excessive_complexity(self):
        big = Or(
            [Comparison(f"v{i}", "<=", float(i)) for i in range(200)]
        )
        assert "excessive-complexity" in rules_fired(big)


class TestRegistryRule:
    def test_duplicate_detector(self):
        from repro.core.detector import Detector
        from repro.runtime.registry import DetectorRegistry

        registry = DetectorRegistry(lint_policy="off")
        registry.publish(Detector(Comparison("x", "<=", 5.0), name="a"))
        registry.publish(Detector(Comparison("x", "<=", 5.0), name="b"))
        findings = Linter(select=["duplicate-detector"]).run(
            LintContext(registry=registry)
        )
        (finding,) = findings
        assert finding.severity == Severity.ERROR
        assert "equivalent" in finding.message


class TestDeadInjectionRule:
    def test_flags_dead_campaign(self):
        source = (
            'def f(h):\n'
            '    s = h.probe("M", Location.ENTRY, {"a": 1, "b": 2})\n'
            '    return s["a"]\n'
        )
        campaign = CampaignConfig(
            module="M",
            injection_location=Location.ENTRY,
            sample_location=Location.ENTRY,
            test_cases=(0,),
            injection_times=(0,),
            variables=("b",),
        )
        context = LintContext(
            surface=analyze_source(source), campaigns={"camp": campaign}
        )
        findings = Linter(select=["dead-injection"]).run(context)
        (finding,) = findings
        assert finding.severity == Severity.WARNING
        assert "dead variable 'b'" in finding.message


class TestUnjournaledCampaignRule:
    def _campaign(self, **overrides):
        base = dict(
            module="M",
            injection_location=Location.ENTRY,
            sample_location=Location.ENTRY,
            test_cases=tuple(range(50)),
            injection_times=(0, 1, 2, 3),
            variables=("a", "b"),
            bits=tuple(range(32)),
        )
        base.update(overrides)
        return CampaignConfig(**base)

    def test_flags_large_unjournaled_campaign(self):
        # 50 x 4 x 2 x 32 = 12800 estimated runs, over the 5000 budget.
        context = LintContext(campaigns={"big": self._campaign()})
        findings = Linter(select=["unjournaled-campaign"]).run(context)
        (finding,) = findings
        assert finding.severity == Severity.WARNING
        assert "12800" in finding.message
        assert "journal" in finding.message

    def test_journaled_campaign_is_fine(self):
        context = LintContext(
            campaigns={"big": self._campaign()}, journaled={"big"}
        )
        assert Linter(select=["unjournaled-campaign"]).run(context) == []

    def test_small_campaign_is_fine(self):
        small = self._campaign(test_cases=(0, 1), bits=(0, 1))
        context = LintContext(campaigns={"small": small})
        assert Linter(select=["unjournaled-campaign"]).run(context) == []

    def test_unknown_variable_count_stays_quiet_without_surface(self):
        context = LintContext(campaigns={"c": self._campaign(variables=None)})
        assert Linter(select=["unjournaled-campaign"]).run(context) == []

    def test_surface_supplies_variable_count(self):
        source = (
            'def f(h):\n'
            '    s = h.probe("M", Location.ENTRY, '
            '{"a": 1, "b": 2, "c": 3})\n'
            '    return s["a"] + s["b"] + s["c"]\n'
        )
        context = LintContext(
            surface=analyze_source(source),
            campaigns={"c": self._campaign(variables=None)},
        )
        findings = Linter(select=["unjournaled-campaign"]).run(context)
        (finding,) = findings
        # 50 x 4 x 3 x 32 = 19200 with the surface's 3 variables.
        assert "19200" in finding.message


class TestUnprunedExhaustiveCampaignRule:
    def _campaign(self, **overrides):
        base = dict(
            module="M",
            injection_location=Location.ENTRY,
            sample_location=Location.ENTRY,
            test_cases=tuple(range(50)),
            injection_times=(0, 1, 2, 3),
            variables=("a", "b"),
            bits=tuple(range(32)),
        )
        base.update(overrides)
        return CampaignConfig(**base)

    def test_flags_large_unpruned_campaign(self):
        # 50 x 4 x 2 x 32 = 12800 estimated runs, over the 10000 budget.
        context = LintContext(campaigns={"big": self._campaign()})
        findings = Linter(select=["unpruned-exhaustive-campaign"]).run(context)
        (finding,) = findings
        assert finding.severity == Severity.WARNING
        assert "12800" in finding.message
        assert "prune" in finding.message

    def test_pruned_campaign_is_fine(self):
        pruned = self._campaign(prune="static")
        context = LintContext(campaigns={"big": pruned})
        assert (
            Linter(select=["unpruned-exhaustive-campaign"]).run(context) == []
        )

    def test_small_campaign_is_fine(self):
        small = self._campaign(test_cases=(0, 1), bits=(0, 1))
        context = LintContext(campaigns={"small": small})
        assert (
            Linter(select=["unpruned-exhaustive-campaign"]).run(context) == []
        )


class TestPruneWithoutAuditRule:
    def _campaign(self, **overrides):
        base = dict(
            module="M",
            injection_location=Location.ENTRY,
            sample_location=Location.ENTRY,
            test_cases=(0, 1),
            injection_times=(0,),
            variables=("a",),
            bits=(0, 1),
        )
        base.update(overrides)
        return CampaignConfig(**base)

    def test_flags_disabled_audit(self):
        config = self._campaign(prune="static", audit_fraction=0.0)
        context = LintContext(campaigns={"c": config})
        findings = Linter(select=["prune-without-audit"]).run(context)
        (finding,) = findings
        assert finding.severity == Severity.WARNING
        assert "audit" in finding.message

    def test_default_audit_is_fine(self):
        config = self._campaign(prune="static")
        context = LintContext(campaigns={"c": config})
        assert Linter(select=["prune-without-audit"]).run(context) == []

    def test_exhaustive_campaign_is_fine(self):
        context = LintContext(campaigns={"c": self._campaign()})
        assert Linter(select=["prune-without-audit"]).run(context) == []


class TestStaleCampaignStoreRule:
    def _key(self, generation=0):
        return {
            "schema": 1,
            "target": "T",
            "module_fingerprint": f"mod{generation}",
            "failure_fingerprint": "fail0",
            "probes": {"injection": [["a", "int32"]], "sample": []},
            "config": {"module": "M"},
            "pairs": [["a", "int32", 0]],
        }

    def _store(self, tmp_path):
        from repro.injection.store import CampaignStore

        return CampaignStore(tmp_path / "store")

    def test_flags_store_with_stale_generations(self, tmp_path):
        store = self._store(tmp_path)
        store.put("aaaa", self._key(0), [])
        store.put("bbbb", self._key(1), [])  # supersedes generation 0
        context = LintContext(stores={"c": store})
        (finding,) = Linter(select=["stale-campaign-store"]).run(context)
        assert finding.severity == Severity.WARNING
        assert "stale" in finding.message
        assert "gc" in finding.message

    def test_accepts_store_path_reference(self, tmp_path):
        store = self._store(tmp_path)
        store.put("aaaa", self._key(0), [])
        store.put("bbbb", self._key(1), [])
        context = LintContext(stores={"c": str(store.root)})
        (finding,) = Linter(select=["stale-campaign-store"]).run(context)
        assert finding.severity == Severity.WARNING

    def test_fresh_store_is_clean(self, tmp_path):
        store = self._store(tmp_path)
        store.put("aaaa", self._key(0), [])
        context = LintContext(stores={"c": store})
        assert Linter(select=["stale-campaign-store"]).run(context) == []

    def test_missing_store_warns(self, tmp_path):
        context = LintContext(stores={"c": str(tmp_path / "absent")})
        (finding,) = Linter(select=["stale-campaign-store"]).run(context)
        assert finding.severity == Severity.WARNING


class TestDeploymentRules:
    def _plan(self, budget_s=1e-5, names=("narrow", "wide")):
        from repro.portfolio.plan import DeploymentPlan, PlannedDetector

        planned = tuple(
            PlannedDetector(name=name, version=1, coverage=0.5, cost_s=2e-6)
            for name in sorted(names)
        )
        return DeploymentPlan(
            name="plan", budget_s=budget_s, coverage=0.5,
            cost_s=sum(d.cost_s for d in planned), solver="manual",
            detectors=planned,
        )

    def test_overbudget_is_error(self):
        context = LintContext(plans={"plan": self._plan(budget_s=1e-6)})
        (finding,) = Linter(select=["overbudget-deployment"]).run(context)
        assert finding.severity == Severity.ERROR
        assert "budget" in finding.message

    def test_overbudget_recomputes_cost_from_detectors(self):
        # A plan whose declared total understates the per-detector sum
        # is still over budget.
        plan = self._plan(budget_s=3e-6)
        object.__setattr__(plan, "cost_s", 1e-7)
        context = LintContext(plans={"plan": plan})
        assert Linter(select=["overbudget-deployment"]).run(context) != []

    def test_within_budget_is_clean(self):
        context = LintContext(plans={"plan": self._plan(budget_s=1e-5)})
        assert Linter(select=["overbudget-deployment"]).run(context) == []

    def test_redundant_pair_warns_via_context_predicates(self):
        narrow = And([Comparison("v", ">", 5.0), Comparison("w", ">", 0.0)])
        wide = Comparison("v", ">", 5.0)
        context = LintContext(
            predicates={"narrow": narrow, "wide": wide},
            plans={"plan": self._plan()},
        )
        (finding,) = Linter(select=["redundant-deployment"]).run(context)
        assert finding.severity == Severity.WARNING
        assert "narrow" in finding.message and "wide" in finding.message

    def test_independent_detectors_are_clean(self):
        context = LintContext(
            predicates={
                "narrow": Comparison("v", ">", 5.0),
                "wide": Comparison("u", ">", 0.0),
            },
            plans={"plan": self._plan()},
        )
        assert Linter(select=["redundant-deployment"]).run(context) == []

    def test_unresolvable_predicates_are_skipped(self):
        # No registry, no context predicates: the rule cannot prove
        # anything and must stay silent rather than crash.
        context = LintContext(plans={"plan": self._plan()})
        assert Linter(select=["redundant-deployment"]).run(context) == []


class TestLinter:
    def test_findings_sorted_most_severe_first(self):
        findings = Linter().run(
            LintContext(predicates={"bad": UNSAT, "fat": FAT})
        )
        severities = [f.severity for f in findings]
        assert severities == sorted(severities, reverse=True)

    def test_select_and_ignore(self):
        context = LintContext(predicates={"bad": UNSAT})
        only = Linter(select=["unsatisfiable-clause"]).run(context)
        assert {f.rule for f in only} == {"unsatisfiable-clause"}
        without = Linter(ignore=["unsatisfiable-clause"]).run(context)
        assert "unsatisfiable-clause" not in {f.rule for f in without}

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="unknown rules"):
            Linter(select=["no-such-rule"])

    def test_pluggable_rule(self):
        class NamingRule(LintRule):
            name = "test-naming"

            def check(self, context):
                for subject in context.predicates:
                    if not subject.islower():
                        yield Finding(
                            self.name, Severity.INFO, subject,
                            "detector names should be lowercase",
                        )

        findings = Linter(rules=[NamingRule()]).run(
            LintContext(predicates={"Loud": CLEAN})
        )
        assert [f.rule for f in findings] == ["test-naming"]

    def test_register_rule_requires_name(self):
        with pytest.raises(ValueError):

            @register_rule
            class Nameless(LintRule):
                pass

    def test_default_rules_cover_catalog(self):
        names = {rule.name for rule in default_rules()}
        assert {
            "unsatisfiable-clause",
            "constant-predicate",
            "tautological-clause",
            "subsumed-branch",
            "vacuous-disjunction",
            "redundant-atoms",
            "interpreted-fallback",
            "excessive-complexity",
            "duplicate-detector",
            "dead-injection",
            "unpruned-exhaustive-campaign",
            "prune-without-audit",
            "overbudget-deployment",
            "redundant-deployment",
            "stale-campaign-store",
        } <= names


class TestReporters:
    def test_render_text(self):
        findings = Linter().run(LintContext(predicates={"bad": UNSAT}))
        text = render_text(findings)
        assert "error: bad:" in text
        assert "finding(s)" in text
        assert render_text([]) == "no findings"

    def test_render_json(self):
        findings = Linter().run(LintContext(predicates={"bad": UNSAT}))
        payload = json.loads(render_json(findings))
        assert payload["count"] == len(findings)
        assert payload["findings"][0]["severity"] == "error"

    def test_exit_code_thresholds(self):
        findings = [Finding("r", Severity.WARNING, "s", "m")]
        assert exit_code(findings, "error") == 0
        assert exit_code(findings, "warning") == 1
        assert exit_code(findings, "info") == 1
        assert exit_code(findings, "never") == 0
        assert exit_code([], "info") == 0

    def test_severity_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        with pytest.raises(ValueError):
            Severity.parse("fatal")

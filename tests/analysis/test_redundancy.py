"""Cross-detector diffing: interval proofs and battery evidence."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.redundancy import analyze_registry, compare_predicates
from repro.core.detector import Detector
from repro.core.predicate import And, Comparison, Or, Predicate
from repro.runtime.registry import DetectorRegistry

NAN = float("nan")


class TestProofs:
    def test_equivalent(self):
        left = And([Comparison("x", "<=", 5.0), Comparison("x", "<=", 9.0)])
        right = Comparison("x", "<=", 5.0)
        relation = compare_predicates(left, right)
        assert relation.relation == "equivalent"
        assert relation.proven
        assert relation.is_redundant

    def test_implies(self):
        relation = compare_predicates(
            Comparison("x", "<=", 5.0), Comparison("x", "<=", 10.0)
        )
        assert (relation.relation, relation.proven) == ("implies", True)

    def test_implied_by(self):
        relation = compare_predicates(
            Comparison("x", "<=", 10.0), Comparison("x", "<=", 5.0)
        )
        assert (relation.relation, relation.proven) == ("implied_by", True)

    def test_disjoint(self):
        relation = compare_predicates(
            Comparison("x", "<=", 5.0), Comparison("x", ">", 5.0)
        )
        assert (relation.relation, relation.proven) == ("disjoint", True)

    def test_dnf_implication(self):
        left = Or(
            [
                And([Comparison("x", "<=", 3.0), Comparison("y", ">", 0.0)]),
                And([Comparison("x", ">", 7.0), Comparison("y", ">", 1.0)]),
            ]
        )
        right = Comparison("y", ">", 0.0)
        assert compare_predicates(left, right).relation == "implies"

    def test_variable_definedness_blocks_proof(self):
        # y > 0 does not imply x-less truth for states missing x, so
        # {y>0} must not be proven to imply {x<=9 OR x>9}-style cover.
        left = Comparison("y", ">", 0.0)
        right = And([Comparison("y", ">", -1.0), Comparison("x", "<=", 9.0)])
        relation = compare_predicates(left, right)
        assert relation.relation not in ("implies", "equivalent")


class TestEvidence:
    def test_overlap(self):
        relation = compare_predicates(
            Or([Comparison("x", "<=", 3.0), Comparison("y", ">", 1.0)]),
            Comparison("x", "<=", 5.0),
        )
        assert relation.relation == "overlap"
        assert not relation.proven
        assert relation.both > 0
        assert relation.only_left > 0 or relation.only_right > 0

    def test_counts_reported(self):
        relation = compare_predicates(
            Or([Comparison("x", "<=", 3.0), Comparison("y", ">", 1.0)]),
            Comparison("x", "<=", 5.0),
        )
        assert relation.both + relation.only_left + relation.only_right > 0

    def test_opaque_atom_falls_back_to_battery(self):
        class Custom(Predicate):
            def evaluate(self, state):
                value = state.get("x")
                return isinstance(value, float) and value == value and value > 0

            def evaluate_rows(self, x, attribute_index):
                return np.zeros(len(np.atleast_2d(x)), dtype=bool)

            def variables(self):
                return frozenset(("x",))

            def simplify(self):
                return self

            def complexity(self):
                return 1

            def _source(self, state_name):
                return "False"

        relation = compare_predicates(Custom(), Comparison("x", ">", 0.0))
        assert not relation.proven
        assert relation.relation in ("overlap", "independent")


class TestRegistry:
    def test_pairwise_findings(self):
        registry = DetectorRegistry(lint_policy="off")
        registry.publish(Detector(Comparison("x", "<=", 5.0), name="narrow"))
        registry.publish(Detector(Comparison("x", "<=", 9.0), name="wide"))
        registry.publish(Detector(Comparison("z", ">", 0.0), name="other"))
        findings = analyze_registry(registry)
        pairs = {(f.left.split("@")[0], f.right.split("@")[0]) for f in findings}
        assert ("narrow", "wide") in pairs
        (finding,) = [f for f in findings if f.relation.is_redundant]
        assert finding.relation.relation == "implies"

    def test_only_latest_versions_compared(self):
        registry = DetectorRegistry(lint_policy="off")
        registry.publish(Detector(Comparison("x", "<=", 5.0), name="d"))
        registry.publish(Detector(Comparison("y", ">", 0.0), name="d"))
        registry.publish(Detector(Comparison("x", "<=", 9.0), name="e"))
        # Superseded d@v1 implies e@v1, but only the latest versions are
        # compared -- and d@v2 shares no variable with e@v1.
        findings = analyze_registry(registry)
        assert all("d@v1" not in (f.left, f.right) for f in findings)
        assert not any(f.relation.proven for f in findings)


comparisons = st.builds(
    Comparison,
    variable=st.sampled_from(["a", "b"]),
    op=st.sampled_from(["<=", ">", "==", "!="]),
    value=st.sampled_from([-1.0, 0.0, 1.0]),
)
predicates = st.recursive(
    comparisons,
    lambda children: st.one_of(
        st.builds(lambda cs: And(cs), st.lists(children, min_size=1, max_size=3)),
        st.builds(lambda cs: Or(cs), st.lists(children, min_size=1, max_size=3)),
    ),
    max_leaves=6,
)
states = st.dictionaries(
    st.sampled_from(["a", "b"]),
    st.one_of(st.floats(min_value=-3, max_value=3), st.just(NAN)),
    max_size=2,
)


@settings(max_examples=100, deadline=None)
@given(left=predicates, right=predicates, state=states)
def test_proven_relations_hold_on_any_state(left, right, state):
    """A proof must hold on every state, missing/NaN included."""
    relation = compare_predicates(left, right)
    if not relation.proven:
        return
    fired_left = left.evaluate(state)
    fired_right = right.evaluate(state)
    if relation.relation == "equivalent":
        assert fired_left == fired_right
    elif relation.relation == "implies":
        assert (not fired_left) or fired_right
    elif relation.relation == "implied_by":
        assert (not fired_right) or fired_left
    elif relation.relation == "disjoint":
        assert not (fired_left and fired_right)

"""Injection-surface analysis: probe discovery, def-use, dead flags."""

import pytest

from repro.analysis.surface import (
    analyze_source,
    analyze_target_package,
    check_campaign,
)
from repro.injection.campaign import CampaignConfig
from repro.injection.instrument import Location

SOURCE = '''
def run(harness, x, y):
    state = harness.probe("M", Location.ENTRY, {"x": x, "y": y})
    x = state["x"]
    out = compute(x)
    harness.probe("M", Location.EXIT, {"out": out})
    return out
'''


def config(module="M", location=Location.ENTRY, variables=None):
    return CampaignConfig(
        module=module,
        injection_location=location,
        sample_location=location,
        test_cases=(0,),
        injection_times=(0,),
        variables=variables,
    )


class TestProbeDiscovery:
    def test_probe_sites(self):
        report = analyze_source(SOURCE)
        assert [(p.module, p.location) for p in report.probes] == [
            ("M", "entry"),
            ("M", "exit"),
        ]

    def test_variables_from_dict_keys(self):
        report = analyze_source(SOURCE)
        entry = report.variables_at("M", "entry")
        assert sorted(v.name for v in entry) == ["x", "y"]

    def test_discarded_result_flagged(self):
        report = analyze_source(SOURCE)
        (exit_probe,) = [p for p in report.probes if p.location == "exit"]
        assert exit_probe.result_discarded

    def test_string_location_accepted(self):
        report = analyze_source(
            'def f(h):\n    s = h.probe("M", "entry", {"a": 1})\n    return s["a"]\n'
        )
        assert report.probes[0].location == "entry"

    def test_non_probe_calls_ignored(self):
        report = analyze_source(
            'def f(h):\n    s = h.sample("M", "entry", {"a": 1})\n    return s\n'
        )
        assert report.probes == []


class TestDefUse:
    def test_read_variable_has_sites(self):
        report = analyze_source(SOURCE)
        variable = report.lookup("M", "entry", "x")
        assert not variable.is_dead
        assert variable.reads

    def test_unread_variable_is_dead(self):
        report = analyze_source(SOURCE)
        assert report.lookup("M", "entry", "y").is_dead
        assert [v.name for v in report.dead_variables("M", "entry")] == ["y"]

    def test_get_counts_as_read(self):
        source = (
            'def f(h):\n'
            '    s = h.probe("M", Location.ENTRY, {"a": 1, "b": 2})\n'
            '    return s.get("a")\n'
        )
        report = analyze_source(source)
        assert not report.lookup("M", "entry", "a").is_dead
        assert report.lookup("M", "entry", "b").is_dead

    def test_dynamic_key_assumes_all_read(self):
        source = (
            'def f(h, k):\n'
            '    s = h.probe("M", Location.ENTRY, {"a": 1, "b": 2})\n'
            '    return s[k]\n'
        )
        report = analyze_source(source)
        assert report.dead_variables() == []

    def test_escaping_reference_assumes_all_read(self):
        source = (
            'def f(h):\n'
            '    s = h.probe("M", Location.ENTRY, {"a": 1, "b": 2})\n'
            '    return helper(s)\n'
        )
        report = analyze_source(source)
        assert report.dead_variables() == []


class TestTargetPackages:
    @pytest.mark.parametrize("package", ["flightgear", "sevenzip", "mp3gain"])
    def test_analyzes_real_targets(self, package):
        try:
            report = analyze_target_package(package)
        except ModuleNotFoundError:
            pytest.skip(f"target package {package} not present")
        assert report.probes
        # Every probe of the shipped targets exposes variables.
        assert all(p.variables for p in report.probes)

    def test_gear_entry_variables_all_live(self):
        report = analyze_target_package("flightgear")
        entry = report.variables_at("Gear", "entry")
        assert entry
        assert all(not v.is_dead for v in entry)


class TestCheckCampaign:
    def test_dead_variable_flagged(self):
        report = analyze_source(SOURCE)
        problems = check_campaign(config(variables=("y",)), report)
        assert any("dead variable 'y'" in p for p in problems)

    def test_live_variables_pass(self):
        report = analyze_source(SOURCE)
        assert check_campaign(config(variables=("x",)), report) == []

    def test_unknown_module_flagged(self):
        report = analyze_source(SOURCE)
        problems = check_campaign(config(module="Ghost"), report)
        assert any("no probe" in p for p in problems)

    def test_unknown_variable_flagged(self):
        report = analyze_source(SOURCE)
        problems = check_campaign(config(variables=("zz",)), report)
        assert any("does not expose" in p for p in problems)

    def test_discarded_probe_flagged(self):
        report = analyze_source(SOURCE)
        problems = check_campaign(
            config(location=Location.EXIT, variables=("out",)), report
        )
        assert any("discards its returned state" in p for p in problems)


class TestFlowSensitiveDeadStores:
    """Cases the old single-pass heuristic could not see: the dataflow
    engine proves them dead via reaching definitions."""

    def test_state_binding_overwritten_before_use(self):
        source = '''
def run(harness, x):
    state = harness.probe("M", Location.ENTRY, {"x": x})
    state = {"x": 0}
    return state["x"]
'''
        report = analyze_source(source)
        variable = report.lookup("M", "entry", "x")
        assert variable.is_dead
        assert "overwritten" in variable.reason

    def test_read_only_on_one_branch_stays_live(self):
        source = '''
def run(harness, x, cond):
    state = harness.probe("M", Location.ENTRY, {"x": x})
    if cond:
        return helper(state["x"])
    return 0
'''
        report = analyze_source(source)
        variable = report.lookup("M", "entry", "x")
        assert not variable.is_dead

    def test_verdicts_carry_provenance(self):
        report = analyze_source(SOURCE)
        dead = report.lookup("M", "entry", "y")
        assert "never read" in dead.reason

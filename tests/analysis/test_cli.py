"""``repro`` CLI: document sniffing, lint gating, report formats.

The lint exit-code test is the PR's acceptance criterion: a detector
with an unsatisfiable clause must fail ``repro lint``.
"""

import json

import pytest

from repro.cli import main
from repro.core.detector import Detector
from repro.core.predicate import And, Comparison
from repro.core.serialize import detector_to_dict, predicate_to_dict
from repro.runtime.registry import DetectorRegistry

UNSAT = And([Comparison("x", "<=", 1.0), Comparison("x", ">", 5.0)])
CLEAN = Comparison("y", ">", 0.0)
FAT = And([Comparison("x", "<=", 5.0), Comparison("x", "<=", 9.0)])


@pytest.fixture
def write_doc(tmp_path):
    def _write(name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    return _write


class TestLint:
    def test_unsatisfiable_detector_fails(self, write_doc, capsys):
        path = write_doc(
            "bad.json", detector_to_dict(Detector(UNSAT, name="bad"))
        )
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "unsatisfiable-clause" in out

    def test_clean_detector_passes(self, write_doc):
        path = write_doc(
            "ok.json", detector_to_dict(Detector(CLEAN, name="ok"))
        )
        assert main(["lint", path]) == 0

    def test_fail_on_warning_vs_info(self, write_doc):
        path = write_doc("fat.json", predicate_to_dict(FAT))
        # redundant-atoms is INFO: passes at default/--fail-on warning.
        assert main(["lint", path]) == 0
        assert main(["lint", path, "--fail-on", "warning"]) == 0
        assert main(["lint", path, "--fail-on", "info"]) == 1
        assert main(["lint", path, "--fail-on", "never"]) == 0

    def test_registry_document(self, write_doc, capsys):
        registry = DetectorRegistry(lint_policy="off")
        registry.publish(Detector(UNSAT, name="bad"))
        registry.publish(Detector(CLEAN, name="ok"))
        path = write_doc("registry.json", registry.to_dict())
        assert main(["lint", path]) == 1
        assert "bad" in capsys.readouterr().out

    def test_select_restricts_rules(self, write_doc, capsys):
        path = write_doc("bad.json", predicate_to_dict(UNSAT))
        assert main(["lint", path, "--select", "redundant-atoms"]) == 0
        assert "unsatisfiable" not in capsys.readouterr().out

    def test_json_format(self, write_doc, capsys):
        path = write_doc("bad.json", predicate_to_dict(UNSAT))
        assert main(["lint", path, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 1
        rules = {f["rule"] for f in payload["findings"]}
        assert "unsatisfiable-clause" in rules

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "unsatisfiable-clause" in out
        assert "dead-injection" in out

    def test_no_documents_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "no documents" in capsys.readouterr().err


class TestAnalyze:
    def test_report_and_exit_zero(self, write_doc, capsys):
        path = write_doc("fat.json", predicate_to_dict(FAT))
        assert main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "2 -> 1 atoms" in out

    def test_registry_redundancy_section(self, write_doc, capsys):
        registry = DetectorRegistry(lint_policy="off")
        registry.publish(Detector(Comparison("x", "<=", 5.0), name="narrow"))
        registry.publish(Detector(Comparison("x", "<=", 9.0), name="wide"))
        path = write_doc("registry.json", registry.to_dict())
        assert main(["analyze", path]) == 0
        assert "implies" in capsys.readouterr().out

    def test_json_format(self, write_doc, capsys):
        path = write_doc("fat.json", predicate_to_dict(FAT))
        assert main(["analyze", path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (subject,) = payload["subjects"]
        assert subject["atoms_after"] == 1


class TestSimplify:
    def test_prints_canonical_form(self, write_doc, capsys):
        path = write_doc("fat.json", predicate_to_dict(FAT))
        assert main(["simplify", path]) == 0
        out = capsys.readouterr().out
        assert "2 -> 1 atoms" in out
        assert "state" in out


class TestSurface:
    def test_target_package_report(self, capsys):
        pytest.importorskip("repro.targets.flightgear")
        assert main(["surface", "flightgear"]) == 0
        out = capsys.readouterr().out
        assert "probe(s)" in out

    def test_json_format(self, capsys):
        pytest.importorskip("repro.targets.flightgear")
        assert main(["surface", "flightgear", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["probes"]


class TestCampaignDocuments:
    def _campaign_doc(self, **extra):
        from repro.injection.campaign import CampaignConfig
        from repro.injection.instrument import Location

        payload = CampaignConfig(
            module="M",
            injection_location=Location.ENTRY,
            sample_location=Location.ENTRY,
            test_cases=tuple(range(50)),
            injection_times=(0, 1, 2, 3),
            variables=("a", "b"),
            bits=tuple(range(32)),
        ).to_dict()
        payload.update(extra)
        return payload

    def test_large_unjournaled_campaign_warns(self, write_doc, capsys):
        path = write_doc("camp.json", self._campaign_doc())
        assert main(["lint", path, "--fail-on", "warning"]) == 1
        assert "unjournaled-campaign" in capsys.readouterr().out

    def test_journal_key_silences_rule(self, write_doc, capsys):
        # prune + audit quiet the (orthogonal) exhaustive-campaign rule
        # so this pins the journal opt-out alone.
        path = write_doc(
            "camp.json",
            self._campaign_doc(
                journal="runs/camp.jsonl",
                prune="static",
                audit_fraction=0.05,
            ),
        )
        assert main(["lint", path, "--fail-on", "warning"]) == 0
        assert "unjournaled-campaign" not in capsys.readouterr().out

    def test_unpruned_campaign_warns_despite_journal(self, write_doc, capsys):
        path = write_doc(
            "camp.json", self._campaign_doc(journal="runs/camp.jsonl")
        )
        assert main(["lint", path, "--fail-on", "warning"]) == 1
        assert "unpruned-exhaustive-campaign" in capsys.readouterr().out

    def test_invalid_campaign_document(self, write_doc, capsys):
        path = write_doc(
            "camp.json",
            {"module": "M", "injection_location": "sideways"},
        )
        assert main(["lint", path]) == 2
        assert "invalid campaign configuration" in capsys.readouterr().err


class TestOrchestrate:
    def test_smoke_run_text(self, capsys):
        assert main(["orchestrate", "MG-B1", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "MG-B1 @ smoke" in out
        assert "best plan:" in out

    def test_smoke_run_json_with_journal_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "mg.jsonl")
        assert main([
            "orchestrate", "MG-B1", "--scale", "smoke",
            "--journal", journal, "--format", "json",
        ]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["campaign"]["cached"] == 0
        assert first["campaign"]["executed"] == first["campaign"]["tasks"]

        assert main([
            "orchestrate", "MG-B1", "--scale", "smoke",
            "--journal", journal, "--format", "json",
        ]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["campaign"]["executed"] == 0
        assert second["baseline"] == first["baseline"]
        assert second["refined"] == first["refined"]
        assert second["best_plan"] == first["best_plan"]

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            main(["orchestrate", "XX-Z9", "--scale", "smoke"])


class TestErrors:
    def test_missing_file(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        assert main(["lint", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_duplicate_names_suffixed(self, write_doc, capsys):
        a = write_doc("a.json", detector_to_dict(Detector(CLEAN, name="d")))
        b = write_doc("b.json", detector_to_dict(Detector(FAT, name="d")))
        assert main(["analyze", a, b]) == 0
        assert "d#2" in capsys.readouterr().out


class TestServingDocuments:
    def config(self, shed_after_s):
        return {
            "format": "repro.serving.config",
            "version": 1,
            "workers": 2,
            "shed_after_s": shed_after_s,
        }

    def test_unbounded_ring_warns(self, write_doc, capsys):
        path = write_doc("topo.json", self.config(None))
        assert main(["lint", path, "--fail-on", "warning"]) == 1
        assert "unbounded-serving-ring" in capsys.readouterr().out

    def test_bounded_ring_passes(self, write_doc):
        path = write_doc("topo.json", self.config(0.25))
        assert main(["lint", path, "--fail-on", "warning"]) == 0

    def test_invalid_serving_document(self, write_doc, capsys):
        path = write_doc(
            "topo.json",
            {"format": "repro.serving.config", "workers": 0},
        )
        assert main(["lint", path]) == 2
        assert "invalid serving configuration" in capsys.readouterr().err


class TestServe:
    @pytest.fixture
    def registry_doc(self, write_doc):
        registry = DetectorRegistry(lint_policy="off")
        registry.publish(Detector(CLEAN, name="ok"))
        return write_doc("registry.json", registry.to_dict())

    def test_inline_serve_text(self, registry_doc, capsys):
        assert main(
            ["serve", registry_doc, "--inline", "--workers", "2",
             "--events", "300"]
        ) == 0
        out = capsys.readouterr().out
        assert "300 events -> 300 processed, 0 shed" in out
        assert "ok:" in out

    def test_serve_json_report(self, registry_doc, capsys):
        assert main(
            ["serve", registry_doc, "--inline", "--events", "200",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["accounted"] is True
        assert payload["submitted"] == 200
        assert payload["load"]["events"] == 200
        assert "ok" in payload["detections"]

    def test_serve_gates_on_slo(self, registry_doc, capsys):
        # An absurd p99 budget (1 ns) must fail the run.
        assert main(
            ["serve", registry_doc, "--inline", "--events", "200",
             "--slo-p99", "1e-9"]
        ) == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_serve_multiprocess(self, registry_doc, capsys):
        assert main(
            ["serve", registry_doc, "--workers", "2", "--events", "500"]
        ) == 0
        assert "500 processed" in capsys.readouterr().out

    def test_serve_records_trace(self, registry_doc, tmp_path, capsys):
        trace = tmp_path / "serve-trace.jsonl"
        assert main(
            ["serve", registry_doc, "--inline", "--events", "100",
             "--trace", str(trace)]
        ) == 0
        from repro import observability as obs

        names = {span.name for span in obs.load_trace(trace)}
        assert "phase.serve" in names
        assert "serve.flush" in names

    def test_serve_invalid_config(self, registry_doc, capsys):
        assert main(["serve", registry_doc, "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err

"""Dataflow analyzer: CFG shape, reaching definitions, channels.

The analyzer's contract is *soundness in one direction*: it may call a
live variable live (imprecision costs pruning, never correctness), but
every "dead" and every channel verdict must hold on the real execution.
These tests pin the structural passes and the verdict logic on small
sources; the empirical half of the contract (dead implies masked) is
exercised by the property tests in ``test_prune.py``.
"""

import ast

import pytest

from repro.analysis.dataflow import (
    ModuleDataflow,
    UnsupportedConstruct,
    analyze_dataflow,
    build_cfg,
    def_use_chains,
    definitions_of,
    live_variables,
    reaching_definitions,
)
from repro.analysis.dataflow.lattice import canonical_value
from repro.analysis.dataflow.probes import function_probes, module_functions


def fn(source: str) -> ast.FunctionDef:
    (function,) = module_functions(ast.parse(source))
    return function


def flows(source: str) -> ModuleDataflow:
    return analyze_dataflow(source, "test")


def flow_of(source: str, name: str, module: str = "M", location: str = "entry"):
    return flows(source).flow(module, location, name)


class TestCFG:
    def test_linear_chain(self):
        cfg = build_cfg(fn("def f():\n    a = 1\n    b = a\n    return b\n"))
        kinds = [node.kind for node in cfg.nodes]
        assert kinds.count("entry") == 1
        assert kinds.count("exit") == 1
        # entry -> a -> b -> return -> exit
        node = cfg.nodes[cfg.entry]
        seen = []
        while node.succ:
            node = cfg.nodes[sorted(node.succ)[0]]
            seen.append(node.kind)
        assert seen == ["stmt", "stmt", "stmt", "exit"]

    def test_if_joins_both_arms(self):
        cfg = build_cfg(
            fn(
                "def f(c):\n"
                "    if c:\n"
                "        a = 1\n"
                "    else:\n"
                "        a = 2\n"
                "    return a\n"
            )
        )
        branch = next(n for n in cfg.nodes if n.kind == "branch")
        assert len(branch.succ) == 2
        ret = next(
            n for n in cfg.nodes if isinstance(n.stmt, ast.Return)
        )
        # Both assignments flow into the return.
        assert len(ret.pred) == 2

    def test_while_has_back_edge(self):
        cfg = build_cfg(
            fn("def f(n):\n    while n:\n        n = n - 1\n    return n\n")
        )
        header = next(
            n for n in cfg.nodes if isinstance(n.stmt, ast.While)
        )
        body = next(
            n for n in cfg.nodes if isinstance(n.stmt, ast.Assign)
        )
        assert header.index in body.succ

    def test_for_header_is_weak(self):
        cfg = build_cfg(
            fn("def f(xs):\n    for x in xs:\n        pass\n    return 0\n")
        )
        loop = next(n for n in cfg.nodes if n.kind == "loop")
        assert loop.weak  # target may not bind on an empty iterable

    def test_try_body_nodes_are_weak_with_handler_edges(self):
        cfg = build_cfg(
            fn(
                "def f():\n"
                "    try:\n"
                "        a = 1\n"
                "    except ValueError:\n"
                "        a = 2\n"
                "    return a\n"
            )
        )
        body = next(
            n
            for n in cfg.nodes
            if isinstance(n.stmt, ast.Assign) and n.weak
        )
        handler = next(n for n in cfg.nodes if n.kind == "except")
        assert handler.index in body.succ

    def test_unsupported_constructs_raise(self):
        for body in ("match x:\n        case _:\n            pass", "global g"):
            with pytest.raises(UnsupportedConstruct):
                build_cfg(fn(f"def f(x):\n    {body}\n"))


class TestReachingDefinitions:
    def chains_for(self, source: str):
        cfg = build_cfg(fn(source))
        defs = definitions_of(cfg)
        reaching = reaching_definitions(cfg, defs)
        return cfg, defs, def_use_chains(cfg, defs, reaching)

    def test_dead_store_overwritten_before_use(self):
        cfg, defs, chains = self.chains_for(
            "def f():\n    a = 1\n    a = 2\n    return a\n"
        )
        first, second = sorted(
            (d for node in defs.values() for d in node if d.name == "a"),
            key=lambda d: d.line,
        )
        assert chains[first] == ()
        assert len(chains[second]) == 1

    def test_both_branch_defs_reach_the_join(self):
        cfg, defs, chains = self.chains_for(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        for definition in (
            d for node in defs.values() for d in node if d.name == "a"
        ):
            assert len(chains[definition]) == 1

    def test_loop_body_def_reaches_itself(self):
        cfg, defs, chains = self.chains_for(
            "def f(n):\n    while n > 0:\n        n = n - 1\n    return n\n"
        )
        body_def = next(
            d
            for node in defs.values()
            for d in node
            if d.name == "n" and d.line == 3
        )
        # n - 1 reads the previous iteration's def: the back edge.
        use_lines = {name.lineno for _, name in chains[body_def]}
        assert 3 in use_lines and 4 in use_lines

    def test_augassign_target_counts_as_use(self):
        cfg, defs, chains = self.chains_for(
            "def f():\n    a = 1\n    a += 2\n    return a\n"
        )
        first = next(
            d
            for node in defs.values()
            for d in node
            if d.name == "a" and d.line == 2
        )
        assert len(chains[first]) == 1

    def test_liveness_kills_redefined_variable(self):
        cfg = build_cfg(fn("def f(a):\n    a = 2\n    return a\n"))
        live = live_variables(cfg)
        # The parameter's value is dead at entry: overwritten first.
        assert "a" not in live[cfg.entry]


SOURCE_TEMPLATE = """
from repro.injection.instrument import Location


def work(harness, tc):
{body}
"""


def probe_source(*after_probe: str) -> str:
    lines = [
        "    u = tc + 1",
        "    v = tc * 2",
        '    s = harness.probe("M", Location.ENTRY, {"u": u, "v": v})',
        *(f"    {line}" for line in after_probe),
    ]
    return SOURCE_TEMPLATE.format(body="\n".join(lines))


class TestChannels:
    def test_unread_key_is_dead(self):
        flow = flow_of(probe_source("return s['u']"), "v")
        assert flow.status == "dead"
        assert "never read" in flow.reason

    def test_raw_escape_is_live(self):
        flow = flow_of(probe_source("return helper(s['u'])"), "u")
        assert flow.status == "live"
        assert any(c.is_identity for c in flow.channels)

    def test_pure_composition_is_observed(self):
        flow = flow_of(probe_source("return int(s['u']) + 1"), "u")
        assert flow.status == "observed"
        (channel,) = flow.channels
        assert channel.observe(3.7) == channel.observe(3.2)

    def test_bool_test_position_observes_truthiness(self):
        flow = flow_of(
            probe_source("if s['u']:", "    return 1", "return 0"), "u"
        )
        assert flow.status == "observed"
        (channel,) = flow.channels
        assert channel.observe(5) == channel.observe(7)
        assert channel.observe(5) != channel.observe(0)

    def test_discarded_expression_is_dead(self):
        flow = flow_of(probe_source("s['u']", "return 0"), "u")
        assert flow.status == "dead"
        assert "discard" in flow.reason

    def test_flow_through_local_keeps_climbing(self):
        flow = flow_of(
            probe_source("x = s['u']", "return min(x, 8)"), "u"
        )
        assert flow.status == "observed"

    def test_shadowed_builtin_breaks_purity(self):
        flow = flow_of(
            probe_source("int = helper", "return int(s['u'])"), "u"
        )
        # int() is no longer the builtin: the read must escape.
        assert flow.status == "live"

    def test_state_escape_marks_all_live(self):
        flow = flow_of(probe_source("return helper(s)"), "v")
        assert flow.status == "live"
        assert "escapes" in flow.reason

    def test_dynamic_key_marks_all_live(self):
        flow = flow_of(probe_source("k = 'u'", "return s[k]"), "u")
        assert flow.status == "live"

    def test_get_with_constant_default_is_a_read(self):
        flow = flow_of(probe_source("return abs(s.get('u', 0))"), "u")
        assert flow.status == "observed"
        (channel,) = flow.channels
        assert channel.observe(-3) == channel.observe(3)

    def test_overwritten_state_binding_is_dead(self):
        flow = flow_of(
            probe_source("s = {'u': 9}", "return s['u']"), "u"
        )
        assert flow.status == "dead"
        assert "overwritten" in flow.reason

    def test_unsupported_construct_degrades_to_live(self):
        source = probe_source(
            "match tc:", "    case _:", "        return s['u']"
        )
        flow = flow_of(source, "u")
        assert flow.status == "live"
        assert "unsupported" in flow.reason

    def test_discarded_probe_result_is_dead(self):
        source = SOURCE_TEMPLATE.format(
            body=(
                '    harness.probe("M", Location.EXIT, {"w": tc})\n'
                "    return tc"
            )
        )
        flow = flow_of(source, "w", location="exit")
        assert flow.status == "dead"
        assert "discarded" in flow.reason

    def test_two_sites_join_to_the_weaker_verdict(self):
        # Same (module, location) probed in two functions: one site
        # reads u raw, the other never reads it -- the join is live.
        source = SOURCE_TEMPLATE.format(
            body="    s = harness.probe(\"M\", Location.ENTRY, {\"u\": tc})\n"
            "    return s['u']\n"
            "\n\n"
            "def other(harness, tc):\n"
            "    s = harness.probe(\"M\", Location.ENTRY, {\"u\": tc})\n"
            "    return 0"
        )
        flow = flow_of(source, "u")
        assert flow.status == "live"


class TestCanonicalValue:
    def test_floats_compare_by_bit_pattern(self):
        assert canonical_value(0.0) != canonical_value(-0.0)
        assert canonical_value(float("nan")) == canonical_value(float("nan"))

    def test_bool_and_int_stay_distinct(self):
        assert canonical_value(True) != canonical_value(1)

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            canonical_value(object())


class TestProbeDiscovery:
    def test_methods_are_scanned(self):
        source = (
            "class T:\n"
            "    def run(self, harness):\n"
            '        s = harness.probe("M", "entry", {"x": 1})\n'
            "        return s['x']\n"
        )
        (function,) = module_functions(ast.parse(source))
        (probe,) = function_probes(function)
        assert probe.site.variables == ("x",)
        assert probe.site.state_name == "s"

"""Tests for the PROPANE-style log format."""

import io
import math

import numpy as np
import pytest

from repro.injection.logfmt import LogFormatError, read_log, write_log
from repro.injection.instrument import Location
from tests.injection.test_campaign import Campaign, CounterTarget, config


def roundtrip(result):
    buffer = io.StringIO()
    write_log(result, buffer)
    buffer.seek(0)
    return read_log(buffer)


class TestRoundTrip:
    def test_records_preserved(self):
        result = Campaign(CounterTarget(), config()).run()
        parsed = roundtrip(result)
        assert parsed.target_name == "CT"
        assert len(parsed.records) == result.n_runs
        for a, b in zip(parsed.records, result.records):
            assert a.test_case == b.test_case
            assert a.flip == b.flip
            assert a.injection_time == b.injection_time
            assert a.failed == b.failed
            assert a.crashed == b.crashed
            assert a.temporal_impact == b.temporal_impact
            assert a.sample == b.sample

    def test_config_preserved(self):
        result = Campaign(CounterTarget(), config()).run()
        parsed = roundtrip(result)
        assert parsed.config.module == "Acc"
        assert parsed.config.injection_location is Location.ENTRY
        assert parsed.config.sample_location is Location.ENTRY
        assert parsed.config.test_cases == (0, 1)
        assert parsed.config.injection_times == (1, 2)

    def test_dataset_equivalence(self):
        result = Campaign(CounterTarget(), config()).run()
        direct = result.to_dataset("d")
        parsed = roundtrip(result).to_dataset("d")
        assert np.array_equal(direct.x, parsed.x)
        assert np.array_equal(direct.y, parsed.y)
        assert direct.attributes == parsed.attributes

    def test_float_bit_exactness(self):
        """Float samples round-trip exactly (hex bit encoding)."""
        from repro.injection.logfmt import _decode_value, _encode_value

        for value in (0.1, -1e308, 5e-324, float("inf"), float("nan")):
            encoded = _encode_value(value, "float64")
            decoded = _decode_value(encoded, "float64")
            if math.isnan(value):
                assert math.isnan(decoded)
            else:
                assert decoded == value

    def test_bool_roundtrip(self):
        from repro.injection.logfmt import _decode_value, _encode_value

        assert _decode_value(_encode_value(True, "bool"), "bool") is True
        assert _decode_value(_encode_value(False, "bool"), "bool") is False


class TestErrors:
    def test_missing_magic(self):
        with pytest.raises(LogFormatError):
            read_log(io.StringIO("#target X\n"))

    def test_truncated_run(self):
        text = (
            "#PROPANE-LOG v1\n#target T\n#module M\n#inject entry\n"
            "#sample entry\n#var v int32\n"
            "RUN tc=0 var=v kind=int32 bit=0 time=0 failed=0 crashed=0 impact=1\n"
        )
        with pytest.raises(LogFormatError):
            read_log(io.StringIO(text))

    def test_sample_without_run(self):
        text = (
            "#PROPANE-LOG v1\n#target T\n#module M\n#inject entry\n"
            "#sample entry\nS -\n"
        )
        with pytest.raises(LogFormatError):
            read_log(io.StringIO(text))

    def test_incomplete_header(self):
        text = "#PROPANE-LOG v1\n#target T\n"
        with pytest.raises(LogFormatError):
            read_log(io.StringIO(text))

    def test_unknown_header(self):
        text = "#PROPANE-LOG v1\n#wat x\n"
        with pytest.raises(LogFormatError):
            read_log(io.StringIO(text))

    def test_unrecognised_line(self):
        text = (
            "#PROPANE-LOG v1\n#target T\n#module M\n#inject entry\n"
            "#sample entry\nGARBAGE\n"
        )
        with pytest.raises(LogFormatError):
            read_log(io.StringIO(text))

"""Tests for campaign-record -> dataset conversion."""

import math

import numpy as np

from repro.injection.instrument import VariableSpec
from repro.injection.readout import (
    CLASS_ATTRIBUTE,
    NON_FINITE_SENTINEL,
    attributes_for_specs,
    encode_state,
)
from tests.injection.test_campaign import Campaign, CounterTarget, config


SPECS = (
    VariableSpec("speed", "float64"),
    VariableSpec("count", "int32"),
    VariableSpec("armed", "bool"),
)


class TestAttributes:
    def test_kinds_mapped(self):
        attrs = attributes_for_specs(SPECS)
        assert attrs[0].is_numeric
        assert attrs[1].is_numeric
        assert attrs[2].is_nominal
        assert attrs[2].values == ("false", "true")

    def test_class_attribute(self):
        assert CLASS_ATTRIBUTE.values == ("nofail", "fail")
        assert CLASS_ATTRIBUTE.index_of("fail") == 1


class TestEncodeState:
    def test_plain_values(self):
        row = encode_state({"speed": 1.5, "count": 7, "armed": True}, SPECS)
        assert row == [1.5, 7.0, 1.0]

    def test_bool_false(self):
        row = encode_state({"speed": 0.0, "count": 0, "armed": False}, SPECS)
        assert row[2] == 0.0

    def test_missing_variable_is_nan(self):
        row = encode_state({"speed": 1.0}, SPECS)
        assert math.isnan(row[1]) and math.isnan(row[2])

    def test_infinities_become_sentinels(self):
        row = encode_state(
            {"speed": float("inf"), "count": 0, "armed": False}, SPECS
        )
        assert row[0] == NON_FINITE_SENTINEL
        row = encode_state(
            {"speed": float("-inf"), "count": 0, "armed": False}, SPECS
        )
        assert row[0] == -NON_FINITE_SENTINEL

    def test_nan_value_becomes_sentinel_not_missing(self):
        """A NaN *sample value* is an erroneous state, not missing data."""
        row = encode_state(
            {"speed": float("nan"), "count": 0, "armed": False}, SPECS
        )
        assert row[0] == NON_FINITE_SENTINEL


class TestRecordsToDataset:
    def test_runs_without_sample_are_skipped(self):
        result = Campaign(CounterTarget(), config()).run()
        # Forge a record with no sample.
        result.records[0].sample = None
        ds = result.to_dataset()
        assert len(ds) == result.n_runs - 1

    def test_default_name(self):
        result = Campaign(CounterTarget(), config()).run()
        ds = result.to_dataset()
        assert ds.name == "CT-Acc-entry-entry"

    def test_labels_match_failures(self):
        result = Campaign(CounterTarget(), config()).run()
        ds = result.to_dataset()
        failures = [r.failed for r in result.records if r.sample is not None]
        assert np.array_equal(ds.y, np.array(failures, dtype=int))

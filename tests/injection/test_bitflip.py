"""Unit and property tests for the transient bit-flip fault model."""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.injection.bitflip import BitFlip, FaultModelError, bit_width, flip_bit


class TestBitWidth:
    def test_widths(self):
        assert bit_width("float64") == 64
        assert bit_width("int64") == 64
        assert bit_width("int32") == 32
        assert bit_width("bool") == 1

    def test_unknown_kind(self):
        with pytest.raises(FaultModelError):
            bit_width("int16")


class TestFloatFlips:
    def test_sign_bit(self):
        assert flip_bit(1.0, "float64", 63) == -1.0

    def test_low_mantissa_bit_is_tiny(self):
        flipped = flip_bit(1.0, "float64", 0)
        assert flipped != 1.0
        assert abs(flipped - 1.0) < 1e-15

    def test_exponent_bit_halves_one(self):
        # 1.0 has biased exponent 0b01111111111: bit 52 is set, so the
        # flip clears it and halves the value.
        assert flip_bit(1.0, "float64", 52) == 0.5
        # For 2.0 (exponent 0b10000000000) the same flip sets it: 3.0
        # would be wrong -- it multiplies the exponent, giving 2*2=4.
        assert flip_bit(2.0, "float64", 52) == 4.0

    def test_top_exponent_makes_huge_or_nan(self):
        flipped = flip_bit(1.0, "float64", 62)
        assert flipped > 1e300 or math.isinf(flipped) or math.isnan(flipped)

    @given(
        value=st.floats(allow_nan=False, width=64),
        bit=st.integers(0, 63),
    )
    def test_involution(self, value, bit):
        once = flip_bit(value, "float64", bit)
        twice = flip_bit(once, "float64", bit)
        # Bit-level identity even through NaN intermediates.
        assert struct.pack("<d", twice) == struct.pack("<d", value)

    @given(
        value=st.floats(allow_nan=False, width=64),
        bit=st.integers(0, 63),
    )
    def test_flip_changes_representation(self, value, bit):
        once = flip_bit(value, "float64", bit)
        assert struct.pack("<d", once) != struct.pack("<d", value)


class TestIntFlips:
    def test_low_bit(self):
        assert flip_bit(4, "int32", 0) == 5
        assert flip_bit(5, "int32", 0) == 4

    def test_sign_bit_int32(self):
        assert flip_bit(0, "int32", 31) == -(2**31)
        assert flip_bit(-1, "int32", 31) == (2**31) - 1

    def test_sign_bit_int64(self):
        assert flip_bit(0, "int64", 63) == -(2**63)

    def test_wraps_to_declared_width(self):
        out = flip_bit(2**31 - 1, "int32", 0)
        assert -(2**31) <= out < 2**31

    @given(value=st.integers(-(2**31), 2**31 - 1), bit=st.integers(0, 31))
    def test_involution_int32(self, value, bit):
        assert flip_bit(flip_bit(value, "int32", bit), "int32", bit) == value

    @given(value=st.integers(-(2**31), 2**31 - 1), bit=st.integers(0, 31))
    def test_range_preserved_int32(self, value, bit):
        out = flip_bit(value, "int32", bit)
        assert -(2**31) <= out < 2**31
        assert out != value


class TestBoolFlips:
    def test_inverts(self):
        assert flip_bit(True, "bool", 0) is False
        assert flip_bit(False, "bool", 0) is True

    def test_single_bit_only(self):
        with pytest.raises(FaultModelError):
            flip_bit(True, "bool", 1)


class TestBitFlipObject:
    def test_apply(self):
        flip = BitFlip("speed", "float64", 63)
        assert flip.apply(2.0) == -2.0

    def test_validation(self):
        with pytest.raises(FaultModelError):
            BitFlip("x", "int32", 32)
        with pytest.raises(FaultModelError):
            BitFlip("x", "int32", -1)
        with pytest.raises(FaultModelError):
            BitFlip("x", "complex", 0)

    def test_str(self):
        assert "bit5" in str(BitFlip("v", "int32", 5))

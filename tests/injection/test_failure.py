"""Tests for failure specification helpers."""

from repro.injection.failure import outputs_differ, sequences_differ


class TestOutputsDiffer:
    def test_equal_scalars(self):
        assert not outputs_differ(5, 5)
        assert outputs_differ(5, 6)

    def test_type_mismatch_differs(self):
        assert outputs_differ(5, 5.0)
        assert outputs_differ((1,), [1])

    def test_nested_structures(self):
        a = {"files": [(1, b"abc"), (2, b"def")], "count": 2}
        b = {"files": [(1, b"abc"), (2, b"def")], "count": 2}
        assert not outputs_differ(a, b)
        b["files"][1] = (2, b"dex")
        assert outputs_differ(a, b)

    def test_dict_key_mismatch(self):
        assert outputs_differ({"a": 1}, {"b": 1})

    def test_length_mismatch(self):
        assert outputs_differ([1, 2], [1, 2, 3])

    def test_nan_equals_nan(self):
        assert not outputs_differ(float("nan"), float("nan"))
        assert not outputs_differ([1.0, float("nan")], [1.0, float("nan")])

    def test_nan_vs_number_differs(self):
        assert outputs_differ(float("nan"), 1.0)


class TestSequencesDiffer:
    def test_identical(self):
        assert not sequences_differ([1.0, 2.0], [1.0, 2.0])

    def test_within_tolerance(self):
        assert not sequences_differ([1.0], [1.0 + 1e-9], tolerance=1e-6)

    def test_outside_tolerance(self):
        assert sequences_differ([1.0], [1.1], tolerance=1e-6)

    def test_length_mismatch(self):
        assert sequences_differ([1.0], [1.0, 2.0])

    def test_nan_handling(self):
        nan = float("nan")
        assert not sequences_differ([nan], [nan])
        assert sequences_differ([nan], [1.0])
        assert sequences_differ([1.0], [nan])

"""Differential test harness for the compositional campaign store.

The store's contract is *bit-identity under composition*: a
``Campaign.run(store=...)`` that loads any mix of stored shards must
produce a result whose ``to_dict()`` equals a fresh exhaustive run's,
and after editing one target module only that module's shards may
re-execute.  :class:`SourcedTarget` makes the contract provable: each
of its modules is built from an explicit source string with an
independent output component, so a single-module edit demonstrably
cannot change any other module's records.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.instrument import Harness, Location, VariableSpec
from repro.injection.store import (
    CampaignStore,
    StoreEligibilityWarning,
    logical_id_of,
)
from repro.orchestration.campaigns import plan_shards
from repro.orchestration.tasks import fingerprint_of
from repro.targets.base import TargetSystem, normalized_source

DATA_DIR = pathlib.Path(__file__).parent / "data"


class SourcedTarget(TargetSystem):
    """A multi-module target whose modules are explicit source strings.

    Each module's source defines ``compute(a, b)``; the target's output
    is the tuple of every module's compute over probed inputs, so the
    modules' output components are provably independent: editing module
    B shifts component B of golden and injected runs identically and
    cannot change any record of module A's campaign.
    """

    name = "SRC"

    def __init__(self, sources: dict) -> None:
        self._sources = dict(sources)
        self._fns = {}
        for module, source in self._sources.items():
            namespace: dict = {}
            exec(compile(source, f"<{module}>", "exec"), namespace)
            self._fns[module] = namespace["compute"]

    @property
    def modules(self):
        return tuple(sorted(self._sources))

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (VariableSpec("a", "int32"), VariableSpec("b", "int32"))

    def run(self, test_case, harness: Harness):
        out = []
        for module in self.modules:
            state = harness.probe(
                module,
                Location.ENTRY,
                {"a": test_case + 1, "b": 2 * test_case + 3},
            )
            out.append(self._fns[module](int(state["a"]), int(state["b"])))
        return tuple(out)

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output

    def fingerprint(self):
        # The exec'd functions have identity reprs; key the golden
        # cache by the raw sources instead.
        return fingerprint_of(
            {
                "class": type(self).__qualname__,
                "sources": sorted(self._sources.items()),
            }
        )

    def shared_state_fingerprint(self):
        # Per-module sources are *not* shared state: editing module B
        # must not invalidate module A's shards.
        return fingerprint_of(
            {
                "class": type(self).__qualname__,
                "modules": sorted(self._sources),
            }
        )

    def module_sources(self, module):
        self.check_module(module)
        return (self._sources[module],)


def source_for(k1: int, k2: int, k3: int) -> str:
    return f"def compute(a, b):\n    return a * {k1} + b * {k2} - {k3}\n"


def config_for(module: str) -> CampaignConfig:
    return CampaignConfig(
        module=module,
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 1),
        injection_times=(0,),
        bits=(0, 1),
    )


def run_all(target, store=None):
    """One campaign per module; returns {module: CampaignResult}."""
    return {
        module: Campaign(target, config_for(module)).run(store=store)
        for module in target.modules
    }


coeffs = st.tuples(
    st.integers(0, 9), st.integers(0, 9), st.integers(0, 9)
)


# ----------------------------------------------------------------------
# The differential property (tentpole)
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    data=st.data(),
    n_modules=st.integers(2, 3),
)
def test_single_module_edit_is_bit_identical_delta(tmp_path_factory, data, n_modules):
    """After editing one module, ``run(store=...)`` is bit-identical to
    a fresh exhaustive run and only the edited module's shards
    re-execute (proved by the store hit/invalidation counters)."""
    root = tmp_path_factory.mktemp("store")
    modules = [f"m{i}" for i in range(n_modules)]
    original = {
        m: data.draw(coeffs, label=f"coeffs[{m}]") for m in modules
    }
    edited_module = data.draw(st.sampled_from(modules), label="edited")
    edit = data.draw(
        coeffs.filter(lambda ks: ks != original[edited_module]),
        label="edit",
    )

    target = SourcedTarget(
        {m: source_for(*ks) for m, ks in original.items()}
    )
    store = CampaignStore(root)
    cold = run_all(target, store)
    for module, result in cold.items():
        assert result.to_dict() == run_all(target)[module].to_dict()
        counters = result.orchestration["store"]
        assert counters["hits"] == 0
        assert counters["writes"] == result.orchestration["tasks"]

    sources = {m: source_for(*ks) for m, ks in original.items()}
    sources[edited_module] = source_for(*edit)
    edited = SourcedTarget(sources)
    fresh = run_all(edited)
    warm = run_all(edited, CampaignStore(root))
    for module in modules:
        # The differential contract: delta run == fresh run, bitwise.
        assert warm[module].to_dict() == fresh[module].to_dict()
        counters = warm[module].orchestration["store"]
        shards = warm[module].orchestration["tasks"]
        if module == edited_module:
            assert warm[module].orchestration["stored"] == 0
            assert counters["hits"] == 0
            assert counters["invalidated"] == shards
            assert counters["writes"] == shards
        else:
            assert warm[module].orchestration["stored"] == shards
            assert warm[module].orchestration["executed"] == 0
            assert counters == {
                "hits": shards, "misses": 0, "invalidated": 0, "writes": 0,
            }


def test_noop_edit_reuses_every_shard(tmp_path):
    """Comment/whitespace edits normalize away: 100% store reuse."""
    original = {
        "alpha": source_for(3, 1, 0),
        "beta": source_for(1, 5, 2),
    }
    target = SourcedTarget(original)
    store = CampaignStore(tmp_path / "store")
    cold = run_all(target, store)

    noop = dict(original)
    noop["alpha"] = (
        "# a comment the AST never sees\n\n"
        "def compute(a, b):\n\n    return (a * 3) + (b * 1) - 0\n\n"
    )
    edited = SourcedTarget(noop)
    assert normalized_source(noop["alpha"]) == normalized_source(
        original["alpha"]
    )
    warm = run_all(edited, CampaignStore(tmp_path / "store"))
    for module in target.modules:
        assert warm[module].to_dict() == cold[module].to_dict()
        counters = warm[module].orchestration["store"]
        assert counters["hits"] == warm[module].orchestration["tasks"]
        assert warm[module].orchestration["executed"] == 0


def test_failure_spec_edit_invalidates_everything(tmp_path):
    """Editing ``is_failure`` relabels every record: no shard survives."""

    class Inverted(SourcedTarget):
        def is_failure(self, golden_output, run_output):
            return not (golden_output != run_output)

    sources = {"alpha": source_for(2, 1, 0), "beta": source_for(1, 1, 1)}
    store_root = tmp_path / "store"
    run_all(SourcedTarget(sources), CampaignStore(store_root))
    warm = run_all(Inverted(sources), CampaignStore(store_root))
    for result in warm.values():
        counters = result.orchestration["store"]
        assert counters["hits"] == 0
        assert counters["invalidated"] == result.orchestration["tasks"]


def test_ineligible_target_warns_and_runs_storeless(tmp_path):
    class Opaque(SourcedTarget):
        def module_sources(self, module):
            return None

    target = Opaque({"alpha": source_for(1, 2, 3)})
    store = CampaignStore(tmp_path / "store")
    with pytest.warns(StoreEligibilityWarning):
        result = Campaign(target, config_for("alpha")).run(store=store)
    assert "store" not in result.orchestration
    assert store.counters["writes"] == 0
    baseline = Campaign(target, config_for("alpha")).run()
    assert result.to_dict() == baseline.to_dict()


def test_plan_delta_classifies_without_running(tmp_path):
    sources = {"alpha": source_for(2, 3, 1), "beta": source_for(4, 0, 2)}
    target = SourcedTarget(sources)
    store = CampaignStore(tmp_path / "store")
    campaign = Campaign(target, config_for("alpha"))
    assert campaign.plan_delta(store) == {
        "eligible": True, "shards": 4, "stored": 0,
        "invalidated": 0, "missing": 4,
    }
    campaign.run(store=store)
    assert campaign.plan_delta(store)["stored"] == 4
    edited = SourcedTarget({**sources, "alpha": source_for(5, 5, 5)})
    plan = Campaign(edited, config_for("alpha")).plan_delta(store)
    assert plan == {
        "eligible": True, "shards": 4, "stored": 0,
        "invalidated": 4, "missing": 0,
    }


# ----------------------------------------------------------------------
# Golden fingerprints: the store key schema, pinned
# ----------------------------------------------------------------------
GOLDEN_SOURCES = {
    "alpha": "def compute(a, b):\n    return a * 3 + b\n",
    "beta": "def compute(a, b):\n    return a - 2 * b\n",
}


def golden_fingerprints() -> dict:
    target = SourcedTarget(GOLDEN_SOURCES)
    payload = {}
    for module in target.modules:
        campaign = Campaign(target, config_for(module))
        base = campaign.store_key_base()
        keys = [
            {**base, "pairs": [list(pair) for pair in shard]}
            for shard in plan_shards(campaign, 1)
        ]
        payload[module] = {
            "base": fingerprint_of(base),
            "shards": [fingerprint_of(key) for key in keys],
            "logical": [logical_id_of(key) for key in keys],
        }
    return payload


def test_store_fingerprints_match_fixture():
    """Store keys are a persistence schema: any drift (key composition,
    source normalization, fingerprint algorithm) orphans every existing
    store.  If a change is intentional, regenerate the fixture with
    ``python -m tests.injection.test_store`` and say so in the commit.
    """
    fixture = json.loads((DATA_DIR / "store_fingerprints.json").read_text())
    assert golden_fingerprints() == fixture


def test_logical_id_stable_across_edits():
    base = Campaign(
        SourcedTarget(GOLDEN_SOURCES), config_for("alpha")
    ).store_key_base()
    edited_sources = dict(GOLDEN_SOURCES, alpha=source_for(9, 9, 9))
    edited = Campaign(
        SourcedTarget(edited_sources), config_for("alpha")
    ).store_key_base()
    assert base != edited
    key = {**base, "pairs": [["a", "int32", 0]]}
    edited_key = {**edited, "pairs": [["a", "int32", 0]]}
    assert fingerprint_of(key) != fingerprint_of(edited_key)
    assert logical_id_of(key) == logical_id_of(edited_key)


# ----------------------------------------------------------------------
# Store unit behaviour
# ----------------------------------------------------------------------
def _key(n: int = 0, generation: int = 0) -> dict:
    return {
        "schema": 1,
        "target": "T",
        "module_fingerprint": f"mfp{generation}",
        "failure_fingerprint": "ffp",
        "probes": {"injection": [["a", "int32"]], "sample": [["a", "int32"]]},
        "config": {"module": "M"},
        "pairs": [["a", "int32", n]],
    }


class TestCampaignStore:
    def test_put_fetch_roundtrip(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = _key()
        fp = fingerprint_of(key)
        records = [{"r": 1}, {"r": 2}]
        assert store.put(fp, key, records)
        assert store.fetch(fp, key) == records
        assert store.counters == {
            "hits": 1, "misses": 0, "invalidated": 0, "writes": 1,
        }

    def test_put_is_idempotent(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = _key()
        fp = fingerprint_of(key)
        assert store.put(fp, key, [{"r": 1}])
        assert not store.put(fp, key, [{"r": 1}])
        assert store.counters["writes"] == 1

    def test_cold_miss_vs_invalidated(self, tmp_path):
        store = CampaignStore(tmp_path)
        old_key = _key(generation=0)
        store.put(fingerprint_of(old_key), old_key, [{"r": 1}])
        new_key = _key(generation=1)
        assert store.fetch(fingerprint_of(new_key), new_key) is None
        assert store.counters["invalidated"] == 1
        unrelated = _key(n=7, generation=1)
        assert store.fetch(fingerprint_of(unrelated), unrelated) is None
        assert store.counters["misses"] == 1

    def test_index_rebuilds_from_shards(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = _key()
        fp = fingerprint_of(key)
        store.put(fp, key, [{"r": 1}])
        (tmp_path / "index.json").unlink()
        rebuilt = CampaignStore(tmp_path)
        assert rebuilt.fetch(fp, key) == [{"r": 1}]
        # A miss on a superseded slice still classifies correctly: the
        # rebuilt index recovered the logical mapping from shard files.
        new_key = _key(generation=1)
        assert rebuilt.fetch(fingerprint_of(new_key), new_key) is None
        assert rebuilt.counters["invalidated"] == 1
        assert (tmp_path / "index.json").is_file()

    def test_corrupt_shard_is_a_miss_not_an_error(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = _key()
        fp = fingerprint_of(key)
        store.put(fp, key, [{"r": 1}])
        store.shard_path(fp).write_text("{ not json")
        assert store.fetch(fp, key) is None
        assert store.entries() == []

    def test_gc_removes_only_stale_generations(self, tmp_path):
        store = CampaignStore(tmp_path)
        old_key, new_key = _key(generation=0), _key(generation=1)
        old_fp, new_fp = fingerprint_of(old_key), fingerprint_of(new_key)
        store.put(old_fp, old_key, [{"r": 1}])
        store.put(new_fp, new_key, [{"r": 2}])
        assert [e.fingerprint for e in store.stale_entries()] == [old_fp]
        assert store.gc(dry_run=True) == [old_fp]
        assert store.contains(old_fp)
        assert store.gc() == [old_fp]
        assert not store.contains(old_fp)
        assert store.fetch(new_fp, new_key) == [{"r": 2}]

    def test_summary_counts_slices(self, tmp_path):
        store = CampaignStore(tmp_path)
        for n in range(3):
            key = _key(n=n)
            store.put(fingerprint_of(key), key, [{"r": n}])
        summary = store.summary()
        assert summary["shards"] == 3
        assert summary["records"] == 3
        assert summary["stale"] == 0
        assert summary["slices"] == [
            {"target": "T", "module": "M", "shards": 3, "records": 3,
             "stale": 0},
        ]


# ----------------------------------------------------------------------
# TargetSystem.fingerprint(): identity-repr attributes (satellite fix)
# ----------------------------------------------------------------------
class _Knobs:
    """Dataclass-like attribute whose default repr is identity-based."""

    def __init__(self, gain: float, limit: int) -> None:
        self.gain = gain
        self.limit = limit


class _KnobbedTarget(TargetSystem):
    name = "KT"

    def __init__(self, knobs) -> None:
        self.knobs = knobs

    @property
    def modules(self):
        return ("M",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (VariableSpec("a", "int32"),)

    def run(self, test_case, harness: Harness):
        return test_case

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output


class TestFingerprintIdentityRepr:
    def test_dataclass_like_attr_hashes_by_state(self):
        a = _KnobbedTarget(_Knobs(1.5, 10))
        b = _KnobbedTarget(_Knobs(1.5, 10))
        c = _KnobbedTarget(_Knobs(2.5, 10))
        assert a.fingerprint() is not None
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_identity_repr_without_state_still_falls_back(self):
        # The regression the fix guards: a truly opaque attribute
        # (identity repr, no __dict__) must yield None, not a
        # fingerprint that silently differs per process.
        a = _KnobbedTarget(lambda x: x)
        assert a.fingerprint() is None

    def test_nested_containers_of_stateful_objects(self):
        a = _KnobbedTarget({"k": [_Knobs(1.0, 1)]})
        b = _KnobbedTarget({"k": [_Knobs(1.0, 1)]})
        assert a.fingerprint() == b.fingerprint()


if __name__ == "__main__":
    # Regenerate the golden fingerprint fixture (see
    # test_store_fingerprints_match_fixture).
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    path = DATA_DIR / "store_fingerprints.json"
    path.write_text(json.dumps(golden_fingerprints(), indent=2) + "\n")
    print(f"wrote {path}")

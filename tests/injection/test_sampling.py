"""Statistical sampling campaigns: subset soundness, determinism,
journal interop, interval coverage, and the vectorized data plane.

The module's contracts, in test order:

* the batch flip helpers are bit-identical to ``flip_bit`` for every
  kind, including NaN payloads, signed zeros and two's-complement
  wrap;
* a sampled campaign draws a duplicate-free subset of the exhaustive
  enumeration, deterministically under a fixed seed and invariantly
  under worker count, and every sampled record is bit-identical to
  the exhaustive campaign's record for the same cell;
* sampled and exhaustive campaigns share journal shards in both
  directions;
* golden-run caching never changes a record;
* the per-stratum intervals achieve at least nominal coverage on a
  synthetic Bernoulli injection space.
"""

import json
import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.injection.bitflip import (
    FaultModelError,
    flip_bit,
    flip_bits_batch,
    flip_values_batch,
)
from repro.injection.campaign import Campaign, CampaignConfig, CampaignResult
from repro.injection.golden import GOLDEN_CACHE, golden_runs_for
from repro.injection.instrument import Harness, Location, VariableSpec
from repro.injection.sampling import (
    SamplingReport,
    SamplingSpec,
    plan_strata,
    run_sampled_campaign,
)
from repro.mining.cache import clear_reuse_caches, reuse_caches_disabled
from repro.orchestration.campaigns import plan_pairs
from repro.orchestration.journal import Journal
from repro.orchestration.pool import ProcessPool, SerialPool
from repro.targets.base import TargetSystem


# ----------------------------------------------------------------------
# Synthetic targets (module level: picklable across worker processes).
# ----------------------------------------------------------------------
class MixTarget(TargetSystem):
    """Deterministic target with mixed-kind variables and a failure
    rate that differs per variable (distinct strata behaviours)."""

    name = "MX"

    @property
    def modules(self):
        return ("Mix",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (
            VariableSpec("alpha", "int32"),
            VariableSpec("beta", "float64"),
            VariableSpec("gate", "bool"),
        )

    def run(self, test_case, harness: Harness):
        alpha, beta, gate = test_case + 3, 1.5 * (test_case + 1), True
        acc = 0.0
        for _ in range(3):
            state = harness.probe(
                "Mix",
                Location.ENTRY,
                {"alpha": alpha, "beta": beta, "gate": gate},
            )
            alpha = int(state["alpha"])
            beta = float(state["beta"])
            gate = bool(state["gate"])
            acc += alpha + (beta if gate else 0.0)
        return acc

    def is_failure(self, golden_output, run_output):
        if isinstance(run_output, float) and math.isnan(run_output):
            return True
        return golden_output != run_output

    def module_sources(self, module):
        # Store-eligible: the whole behaviour lives in run/is_failure.
        self.check_module(module)
        return (type(self).run, type(self).is_failure)


#: Pseudo-random but fixed subset of int64 bit positions whose flip
#: the Bernoulli target counts as a failure (true rate 20/64).
FAIL_BITS = frozenset(b for b in range(64) if (b * 37 + 11) % 64 < 20)
TRUE_RATE = len(FAIL_BITS) / 64


class BernoulliTarget(TargetSystem):
    """One int64 variable whose bits fail i.i.d.-like per FAIL_BITS:
    with one test case and one injection time, cells == pairs, so the
    stratum estimate is a textbook binomial proportion."""

    name = "BN"

    @property
    def modules(self):
        return ("Ber",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        return (VariableSpec("x", "int64"),)

    def run(self, test_case, harness: Harness):
        state = harness.probe("Ber", Location.ENTRY, {"x": 0})
        value = int(state["x"])
        if value == 0:
            return 0
        bit = (value & ((1 << 64) - 1)).bit_length() - 1
        return 1 if bit in FAIL_BITS else 0

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output


def mix_config(**overrides):
    base = dict(
        module="Mix",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 1),
        injection_times=(0, 1),
        bits=tuple(range(12)),
    )
    base.update(overrides)
    return CampaignConfig(**base)


BERNOULLI_CONFIG = CampaignConfig(
    module="Ber",
    injection_location=Location.ENTRY,
    sample_location=Location.ENTRY,
    test_cases=(0,),
    injection_times=(0,),
)


def record_key(record):
    return (
        record.flip.variable,
        record.flip.bit,
        record.injection_time,
        record.test_case,
    )


def table(result):
    return [record.to_dict() for record in result.records]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_reuse_caches()
    yield
    clear_reuse_caches()


# ----------------------------------------------------------------------
# Vectorized bit flips: bit-identity with the scalar fault model.
# ----------------------------------------------------------------------
class TestBatchFlips:
    @given(value=st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_int32_bits_batch_matches_scalar(self, value):
        assert flip_bits_batch(value, "int32", range(32)) == [
            flip_bit(value, "int32", b) for b in range(32)
        ]

    @given(value=st.integers(-(2**63), 2**63 - 1))
    @settings(max_examples=50, deadline=None)
    def test_int64_bits_batch_matches_scalar(self, value):
        assert flip_bits_batch(value, "int64", range(64)) == [
            flip_bit(value, "int64", b) for b in range(64)
        ]

    @given(
        value=st.floats(
            allow_nan=True, allow_infinity=True, allow_subnormal=True
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_float64_bits_batch_matches_scalar_bitwise(self, value):
        batch = flip_bits_batch(value, "float64", range(64))
        for bit, flipped in enumerate(batch):
            reference = flip_bit(value, "float64", bit)
            assert struct.pack("<d", flipped) == struct.pack("<d", reference)

    def test_nan_payload_and_signed_zero_survive(self):
        payload_nan = struct.unpack(
            "<d", struct.pack("<Q", 0x7FF8_0000_0000_0123)
        )[0]
        for value in (payload_nan, -0.0, 0.0):
            batch = flip_bits_batch(value, "float64", range(64))
            for bit, flipped in enumerate(batch):
                assert struct.pack("<d", flipped) == struct.pack(
                    "<d", flip_bit(value, "float64", bit)
                )

    def test_values_batch_matches_scalar(self):
        values = [0, 1, -1, 7, 2**31 - 1, -(2**31), 12345]
        for bit in (0, 5, 31):
            assert flip_values_batch(values, "int32", bit) == [
                flip_bit(v, "int32", bit) for v in values
            ]

    def test_bool_batches(self):
        assert flip_bits_batch(True, "bool", [0]) == [False]
        assert flip_values_batch([True, False], "bool", 0) == [False, True]

    def test_out_of_range_bits_raise(self):
        with pytest.raises(FaultModelError):
            flip_bits_batch(1, "int32", [0, 32])
        with pytest.raises(FaultModelError):
            flip_bits_batch(1, "int32", [-1])
        with pytest.raises(FaultModelError):
            flip_values_batch([1], "int32", 32)

    def test_empty_batches(self):
        assert flip_bits_batch(1, "int32", []) == []
        assert flip_values_batch([], "int32", 0) == []


# ----------------------------------------------------------------------
# Draw-plan properties: subset, no duplicates, determinism.
# ----------------------------------------------------------------------
class TestPlanStrata:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_strata_are_a_permutation_free_partition(self, seed):
        campaign = Campaign(MixTarget(), mix_config())
        strata = plan_strata(campaign, SamplingSpec(seed=seed))
        drawn = [pair for order in strata.values() for pair in order]
        full = plan_pairs(campaign)
        assert len(drawn) == len(set(drawn))          # no duplicates
        assert set(drawn) == set(full)                # exactly the space
        for variable, order in strata.items():
            assert all(pair[0] == variable for pair in order)

    def test_draw_order_is_seed_deterministic(self):
        campaign = Campaign(MixTarget(), mix_config())
        first = plan_strata(campaign, SamplingSpec(seed=11))
        second = plan_strata(campaign, SamplingSpec(seed=11))
        other = plan_strata(campaign, SamplingSpec(seed=12))
        assert first == second
        assert first != other

    def test_order_depends_on_stratum_identity_not_schedule(self):
        campaign = Campaign(MixTarget(), mix_config())
        full = plan_strata(campaign, SamplingSpec(seed=5))
        restricted = plan_strata(
            campaign,
            SamplingSpec(seed=5),
            pairs=[p for p in plan_pairs(campaign) if p[0] == "alpha"],
        )
        # A restricted frame reshuffles identically: same stratum seed.
        assert restricted["alpha"] == [
            p for p in full["alpha"] if p in set(restricted["alpha"])
        ]


# ----------------------------------------------------------------------
# Sampled campaign: subset bit-identity, determinism, invariance.
# ----------------------------------------------------------------------
class TestSampledCampaign:
    SPEC = SamplingSpec(target_halfwidth=0.12, min_cells=8, round_cells=8, seed=9)

    def test_records_are_bit_identical_exhaustive_subset(self):
        config = mix_config()
        exhaustive = {
            record_key(r): r.to_dict()
            for r in Campaign(MixTarget(), config).run().records
        }
        sampled = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC
        )
        keys = [record_key(r) for r in sampled.records]
        assert len(keys) == len(set(keys))            # no duplicates
        assert 0 < len(keys) < len(exhaustive)        # a strict subset
        for record in sampled.records:
            assert record.to_dict() == exhaustive[record_key(record)]

    def test_canonical_order_is_preserved(self):
        config = mix_config()
        order = {
            record_key(r): i
            for i, r in enumerate(Campaign(MixTarget(), config).run().records)
        }
        sampled = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC
        )
        positions = [order[record_key(r)] for r in sampled.records]
        assert positions == sorted(positions)

    def test_same_seed_same_draws_different_seed_different(self):
        config = mix_config()
        first = Campaign(MixTarget(), config).run(mode="sample", sampling=self.SPEC)
        second = Campaign(MixTarget(), config).run(mode="sample", sampling=self.SPEC)
        assert table(first) == table(second)
        assert first.sampling.to_dict() == second.sampling.to_dict()
        reseeded = Campaign(MixTarget(), config).run(
            mode="sample",
            sampling=SamplingSpec(
                target_halfwidth=0.12, min_cells=8, round_cells=8, seed=10
            ),
        )
        assert {record_key(r) for r in reseeded.records} != {
            record_key(r) for r in first.records
        }

    def test_worker_count_invariance(self):
        config = mix_config()
        serial = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, pool=SerialPool()
        )
        clear_reuse_caches()
        pool = ProcessPool(jobs=3)
        try:
            parallel = Campaign(MixTarget(), config).run(
                mode="sample", sampling=self.SPEC, pool=pool
            )
        finally:
            pool.close()
        assert table(parallel) == table(serial)
        assert parallel.sampling.to_dict() == serial.sampling.to_dict()

    def test_early_stop_saves_runs_and_reports_convergence(self):
        config = mix_config(bits=tuple(range(16)), test_cases=(0, 1, 2))
        result = Campaign(MixTarget(), config).run(
            mode="sample",
            sampling=SamplingSpec(
                target_halfwidth=0.2, min_cells=12, round_cells=12, seed=1
            ),
        )
        report = result.sampling
        assert report.cells_sampled < report.cells_total
        assert all(
            s.stopped in ("converged", "exhausted", "capped")
            for s in report.strata
        )
        assert any(s.stopped == "converged" for s in report.strata)
        for stratum in report.strata:
            if stratum.stopped == "converged":
                assert stratum.halfwidth <= stratum.target_halfwidth
                assert stratum.sampled >= 12

    def test_max_cells_caps_a_stratum(self):
        config = mix_config()
        result = Campaign(MixTarget(), config).run(
            mode="sample",
            sampling=SamplingSpec(
                target_halfwidth=0.01,  # unreachable: forces the cap
                min_cells=4,
                round_cells=4,
                max_cells=8,
                seed=2,
            ),
        )
        for stratum in result.sampling.strata:
            assert stratum.stopped in ("capped", "exhausted")
            assert stratum.sampled <= 8

    def test_report_round_trips_through_json(self):
        config = mix_config()
        result = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC
        )
        payload = json.loads(json.dumps(result.to_dict()))
        back = CampaignResult.from_dict(payload)
        assert isinstance(back.sampling, SamplingReport)
        assert back.sampling.to_dict() == result.sampling.to_dict()
        assert table(back) == table(result)

    def test_after_run_subclasses_refuse_sampling(self):
        class Observing(Campaign):
            def _after_run(self, harness, record):
                pass

        with pytest.raises(ValueError, match="cannot sample"):
            Observing(MixTarget(), mix_config()).run(mode="sample")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign mode"):
            Campaign(MixTarget(), mix_config()).run(mode="stochastic")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SamplingSpec(ci="jeffreys")
        with pytest.raises(ValueError):
            SamplingSpec(confidence=1.0)
        with pytest.raises(ValueError):
            SamplingSpec(target_halfwidth=0.5)
        with pytest.raises(ValueError):
            SamplingSpec(min_cells=0)
        with pytest.raises(ValueError):
            SamplingSpec(min_cells=16, max_cells=8)


# ----------------------------------------------------------------------
# Journal interop: sampled and exhaustive shards are the same shards.
# ----------------------------------------------------------------------
class TestJournalInterop:
    SPEC = SamplingSpec(target_halfwidth=0.12, min_cells=8, round_cells=8, seed=9)

    def test_exhaustive_reuses_sampled_shards(self, tmp_path):
        config = mix_config()
        path = str(tmp_path / "journal")
        sampled = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, journal=Journal(path)
        )
        runs_per_pair = len(config.injection_times) * len(config.test_cases)
        exhaustive = Campaign(MixTarget(), config).run(journal=Journal(path))
        assert exhaustive.orchestration["cached"] == (
            len(sampled.records) // runs_per_pair
        )
        # ... and the merged exhaustive run is still canonical.
        assert table(exhaustive) == table(Campaign(MixTarget(), config).run())

    def test_sampled_reuses_exhaustive_shards_fully(self, tmp_path):
        config = mix_config()
        path = str(tmp_path / "journal")
        Campaign(MixTarget(), config).run(journal=Journal(path))
        before = Journal(path).load()
        sampled = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, journal=Journal(path)
        )
        # Every draw was answered from the journal: no new entries.
        assert Journal(path).load().keys() == before.keys()
        exhaustive = {
            record_key(r): r.to_dict()
            for r in Campaign(MixTarget(), config).run().records
        }
        for record in sampled.records:
            assert record.to_dict() == exhaustive[record_key(record)]

    def test_resume_replays_identical_draws(self, tmp_path):
        config = mix_config()
        path = str(tmp_path / "journal")
        first = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, journal=Journal(path)
        )
        resumed = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, journal=Journal(path)
        )
        assert table(resumed) == table(first)
        assert resumed.sampling.to_dict() == first.sampling.to_dict()


# ----------------------------------------------------------------------
# Campaign-store interop: sampled and exhaustive campaigns of the same
# slice share store shards in both directions (the store key drops the
# variable/bit selection; shard ``pairs`` carry it).
# ----------------------------------------------------------------------
class TestStoreInterop:
    SPEC = SamplingSpec(target_halfwidth=0.12, min_cells=8, round_cells=8, seed=9)

    def test_exhaustive_reuses_sampled_store_shards(self, tmp_path):
        from repro.injection.store import CampaignStore

        config = mix_config()
        store = CampaignStore(tmp_path / "store")
        sampled = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, store=store
        )
        runs_per_pair = len(config.injection_times) * len(config.test_cases)
        exhaustive = Campaign(MixTarget(), config).run(store=store)
        # Every sampled pair's shard loads from the store; only the
        # un-drawn remainder of the enumeration executes.
        assert exhaustive.orchestration["stored"] == (
            len(sampled.records) // runs_per_pair
        )
        # ... and the merged exhaustive run is still canonical.
        assert table(exhaustive) == table(Campaign(MixTarget(), config).run())

    def test_sampled_reuses_exhaustive_store_fully(self, tmp_path):
        from repro.injection.store import CampaignStore

        config = mix_config()
        store = CampaignStore(tmp_path / "store")
        Campaign(MixTarget(), config).run(store=store)
        writes_before = store.counters["writes"]
        hits_before = store.counters["hits"]
        sampled = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, store=store
        )
        # Every draw was answered from the store: no new shards.
        assert store.counters["writes"] == writes_before
        assert store.counters["hits"] > hits_before
        exhaustive = {
            record_key(r): r.to_dict()
            for r in Campaign(MixTarget(), config).run().records
        }
        for record in sampled.records:
            assert record.to_dict() == exhaustive[record_key(record)]

    def test_store_resume_replays_identical_draws(self, tmp_path):
        from repro.injection.store import CampaignStore

        config = mix_config()
        store = CampaignStore(tmp_path / "store")
        first = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, store=store
        )
        resumed = Campaign(MixTarget(), config).run(
            mode="sample", sampling=self.SPEC, store=store
        )
        assert table(resumed) == table(first)
        assert resumed.sampling.to_dict() == first.sampling.to_dict()


# ----------------------------------------------------------------------
# Golden-run caching (the hoisted capture) never changes a record.
# ----------------------------------------------------------------------
class TestGoldenCache:
    def test_cache_hits_return_identical_runs(self):
        target = MixTarget()
        first = golden_runs_for(target, (0, 1))
        second = golden_runs_for(target, (0, 1))
        assert all(second[tc] is first[tc] for tc in (0, 1))

    def test_cached_and_uncached_campaigns_are_bit_identical(self):
        config = mix_config()
        warm = Campaign(MixTarget(), config).run()  # populates the cache
        cached = Campaign(MixTarget(), config).run()
        with reuse_caches_disabled():
            cold = Campaign(MixTarget(), config).run()
        assert table(cached) == table(warm)
        assert table(cold) == table(warm)

    def test_disabled_cache_captures_fresh(self):
        target = MixTarget()
        golden_runs_for(target, (0,))
        with reuse_caches_disabled():
            fresh = golden_runs_for(target, (0,))
            again = golden_runs_for(target, (0,))
        assert fresh[0] is not again[0]

    def test_identity_based_state_is_never_cached(self):
        class Closure(MixTarget):
            def __init__(self):
                self._fn = lambda x: x  # repr carries a memory address

        assert Closure().fingerprint() is None
        first = golden_runs_for(Closure(), (0,))
        second = golden_runs_for(Closure(), (0,))
        assert first[0] is not second[0]

    def test_distinct_configurations_do_not_collide(self):
        class Scaled(MixTarget):
            def __init__(self, gain):
                self.gain = gain

            def run(self, test_case, harness):
                return super().run(test_case, harness) * self.gain

        a = golden_runs_for(Scaled(1), (0,))
        b = golden_runs_for(Scaled(2), (0,))
        assert a[0].output != b[0].output


# ----------------------------------------------------------------------
# Interval coverage on a synthetic Bernoulli space.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("ci", "floor"),
    [("clopper-pearson", 0.90), ("wilson", 0.85)],
)
def test_interval_coverage_is_at_least_nominal(ci, floor):
    """Across independent seeds, the 95% interval for the fail rate of
    the Bernoulli stratum must contain the true rate at least the
    nominal fraction of the time (minus Monte-Carlo slack; Wilson is
    approximate, so its floor is looser than exact Clopper-Pearson's).
    Sampling is without replacement from the 64-cell space, which only
    makes the binomial intervals conservative."""
    trials = 40
    hits = 0
    for seed in range(trials):
        result = run_sampled_campaign(
            Campaign(BernoulliTarget(), BERNOULLI_CONFIG),
            SamplingSpec(
                ci=ci,
                target_halfwidth=0.01,  # unreachable at n=24: cap decides
                min_cells=24,
                round_cells=24,
                max_cells=24,
                seed=seed,
            ),
        )
        stratum = result.sampling.stratum("x")
        assert stratum.sampled == 24
        estimate = stratum.classes["fail"]
        if estimate.low <= TRUE_RATE <= estimate.high:
            hits += 1
    assert hits / trials >= floor, f"{ci} coverage {hits}/{trials}"


def test_estimates_match_true_rates_on_full_exhaustion():
    """A stratum that exhausts its space reports the exact rates."""
    result = Campaign(BernoulliTarget(), BERNOULLI_CONFIG).run(
        mode="sample",
        sampling=SamplingSpec(target_halfwidth=0.01, min_cells=64, round_cells=64),
    )
    stratum = result.sampling.stratum("x")
    assert stratum.stopped == "exhausted"
    assert stratum.sampled == stratum.population == 64
    assert stratum.classes["fail"].rate == pytest.approx(TRUE_RATE)
    assert stratum.classes["crash"].count == 0

"""Tests for the campaign driver, using a tiny in-repo target."""

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.golden import capture_golden_run
from repro.injection.instrument import Harness, Location, VariableSpec
from repro.targets.base import TargetSystem


class CounterTarget(TargetSystem):
    """Minimal deterministic target: accumulates values over 4 steps.

    A run fails iff the final accumulator differs from the golden one.
    ``scratch`` is overwritten each step (resilient); ``acc`` is live.
    """

    name = "CT"

    @property
    def modules(self):
        return ("Acc",)

    def variables_of(self, module, location=None):
        self.check_module(module)
        entry = (VariableSpec("acc", "int32"), VariableSpec("scratch", "int32"))
        exit_only = (VariableSpec("total", "int32"),)
        if location is Location.ENTRY:
            return entry
        return entry + exit_only

    def run(self, test_case, harness: Harness):
        acc = test_case
        for step in range(4):
            state = harness.probe(
                "Acc", Location.ENTRY, {"acc": acc, "scratch": 0}
            )
            acc = int(state["acc"]) + step
            state = harness.probe(
                "Acc", Location.EXIT,
                {"acc": acc, "scratch": step, "total": acc},
            )
            acc = int(state["total"])
        return acc

    def is_failure(self, golden_output, run_output):
        return golden_output != run_output


def config(**overrides):
    base = dict(
        module="Acc",
        injection_location=Location.ENTRY,
        sample_location=Location.ENTRY,
        test_cases=(0, 1),
        injection_times=(1, 2),
        bits=(0, 1, 2),
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestGoldenRun:
    def test_capture(self):
        golden = capture_golden_run(CounterTarget(), 1)
        assert golden.output == 1 + 0 + 1 + 2 + 3
        assert len(golden.samples) == 8

    def test_samples_at(self):
        from repro.injection.instrument import Probe

        golden = capture_golden_run(CounterTarget(), 0)
        assert len(golden.samples_at(Probe("Acc", Location.ENTRY))) == 4


class TestCampaign:
    def test_run_count(self):
        result = Campaign(CounterTarget(), config()).run()
        # 2 entry variables x 3 bits x 2 times x 2 test cases
        assert result.n_runs == 24

    def test_acc_flips_fail_scratch_flips_do_not(self):
        result = Campaign(CounterTarget(), config()).run()
        for record in result.records:
            if record.flip.variable == "acc":
                assert record.failed
            else:
                assert not record.failed

    def test_failure_rate(self):
        result = Campaign(CounterTarget(), config()).run()
        assert result.failure_rate == pytest.approx(0.5)
        assert result.n_failures == 12
        assert result.n_crashes == 0

    def test_exit_injection_targets_exit_variables(self):
        result = Campaign(
            CounterTarget(),
            config(injection_location=Location.EXIT,
                   sample_location=Location.EXIT),
        ).run()
        variables = {r.flip.variable for r in result.records}
        assert "total" in variables

    def test_sample_is_first_at_or_after_injection(self):
        result = Campaign(CounterTarget(), config()).run()
        for record in result.records:
            assert record.sample is not None
            if record.flip.variable == "acc":
                # Entry/entry sampling: sample holds the corrupted value.
                golden_acc = record.test_case + sum(
                    range(record.injection_time)
                )
                assert record.sample["acc"] != golden_acc

    def test_variables_filter(self):
        result = Campaign(
            CounterTarget(), config(variables=("scratch",))
        ).run()
        assert {r.flip.variable for r in result.records} == {"scratch"}

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError):
            Campaign(CounterTarget(), config(variables=("bogus",)))

    def test_unknown_module_rejected(self):
        with pytest.raises(Exception):
            Campaign(CounterTarget(), config(module="Nope"))

    def test_per_kind_bits(self):
        result = Campaign(
            CounterTarget(), config(bits={"int32": (0, 5)})
        ).run()
        assert {r.flip.bit for r in result.records} == {0, 5}

    def test_temporal_impact(self):
        result = Campaign(CounterTarget(), config()).run()
        for record in result.records:
            assert record.temporal_impact == 4 - record.injection_time


class TestDatasetConversion:
    def test_to_dataset(self):
        result = Campaign(CounterTarget(), config()).run()
        ds = result.to_dataset("CT-test")
        assert len(ds) == result.n_runs
        assert ds.name == "CT-test"
        assert [a.name for a in ds.attributes] == ["acc", "scratch"]
        assert ds.class_attribute.values == ("nofail", "fail")
        assert ds.class_counts()[1] == result.n_failures

    def test_exit_dataset_includes_exit_attributes(self):
        result = Campaign(
            CounterTarget(),
            config(injection_location=Location.ENTRY,
                   sample_location=Location.EXIT),
        ).run()
        ds = result.to_dataset()
        assert [a.name for a in ds.attributes] == ["acc", "scratch", "total"]


class CrashingTarget(CounterTarget):
    """Raises when acc goes negative (as a C segfault would)."""

    def run(self, test_case, harness: Harness):
        acc = test_case
        for step in range(4):
            state = harness.probe(
                "Acc", Location.ENTRY, {"acc": acc, "scratch": 0}
            )
            acc = int(state["acc"]) + step
            if acc < 0:
                raise RuntimeError("segfault")
            state = harness.probe(
                "Acc", Location.EXIT,
                {"acc": acc, "scratch": step, "total": acc},
            )
            acc = int(state["total"])
        return acc


class TestCrashes:
    def test_crash_counts_as_failure(self):
        cfg = config(bits=(31,), variables=("acc",))  # sign flips
        result = Campaign(CrashingTarget(), cfg).run()
        assert result.n_crashes > 0
        for record in result.records:
            if record.crashed:
                assert record.failed


class TestSerialization:
    """to_dict/from_dict round trips, exact to the bit (incl. NaN)."""

    def test_config_round_trip_tuple_bits(self):
        cfg = config()
        rebuilt = CampaignConfig.from_dict(cfg.to_dict())
        assert rebuilt == cfg

    def test_config_round_trip_mapping_bits(self):
        cfg = config(bits={"int32": (0, 5), "float64": (52, 63)},
                     variables=("acc",))
        rebuilt = CampaignConfig.from_dict(cfg.to_dict())
        assert rebuilt == cfg

    def test_config_round_trip_default_bits(self):
        cfg = config(bits=None)
        assert CampaignConfig.from_dict(cfg.to_dict()) == cfg

    def test_config_dict_is_json_compatible(self):
        import json

        cfg = config(bits={"int32": (0,)})
        assert CampaignConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict()))
        ) == cfg

    def test_record_round_trip(self):
        result = Campaign(CounterTarget(), config()).run()
        for record in result.records:
            from repro.injection.campaign import ExperimentRecord

            rebuilt = ExperimentRecord.from_dict(record.to_dict())
            assert rebuilt == record

    def test_record_round_trip_crash_and_nan(self):
        import json
        import math
        import struct

        from repro.injection.bitflip import BitFlip
        from repro.injection.campaign import ExperimentRecord

        nan_payload = struct.unpack("<d", struct.pack("<Q", 0x7FF8DEADBEEF0001))[0]
        crash = ExperimentRecord(
            test_case=3,
            flip=BitFlip("acc", "float64", 62),
            injection_time=1,
            sample=None,
            failed=True,
            crashed=True,
            temporal_impact=0,
            deviated=True,
        )
        nan_record = ExperimentRecord(
            test_case=0,
            flip=BitFlip("acc", "float64", 51),
            injection_time=2,
            sample={"acc": nan_payload, "flag": True, "count": -7},
            failed=False,
            crashed=False,
            temporal_impact=2,
            deviated=True,
        )
        assert ExperimentRecord.from_dict(crash.to_dict()) == crash
        # NaN != NaN, so compare through the (exact) encoded form plus
        # the raw bits of the decoded sample value.
        rebuilt = ExperimentRecord.from_dict(
            json.loads(json.dumps(nan_record.to_dict()))
        )
        assert rebuilt.to_dict() == nan_record.to_dict()
        assert math.isnan(rebuilt.sample["acc"])
        assert struct.pack("<d", rebuilt.sample["acc"]) == struct.pack(
            "<d", nan_payload
        )
        assert rebuilt.sample["flag"] is True
        assert rebuilt.sample["count"] == -7

    def test_campaign_result_round_trip(self):
        from repro.injection.campaign import CampaignResult

        result = Campaign(CounterTarget(), config()).run()
        payload = result.to_dict()
        assert payload["format"] == "repro.injection.campaign"
        rebuilt = CampaignResult.from_dict(payload)
        assert rebuilt.target_name == result.target_name
        assert rebuilt.config == result.config
        assert rebuilt.variable_specs == result.variable_specs
        assert rebuilt.records == result.records
        # Golden runs are documented as not persisted.
        assert rebuilt.golden_runs == {}

    def test_campaign_result_round_trip_with_crashes(self):
        import json

        from repro.injection.campaign import CampaignResult

        cfg = config(bits=(31,), variables=("acc",))
        result = Campaign(CrashingTarget(), cfg).run()
        assert result.n_crashes > 0
        rebuilt = CampaignResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.records == result.records
        assert rebuilt.n_crashes == result.n_crashes


class TestDeviationLabelling:
    def test_acc_flips_deviate(self):
        result = Campaign(CounterTarget(), config()).run()
        for record in result.records:
            if record.flip.variable == "acc":
                # Entry/entry sampling sees the corrupted accumulator.
                assert record.deviated

    def test_scratch_flips_deviate_but_do_not_fail(self):
        """The gap between the two target functions: scratch flips are
        visible at the sampling point (deviation) yet harmless
        (no failure)."""
        result = Campaign(CounterTarget(), config()).run()
        scratch = [r for r in result.records if r.flip.variable == "scratch"]
        assert scratch
        for record in scratch:
            assert record.deviated
            assert not record.failed

    def test_deviation_dataset_labels(self):
        result = Campaign(CounterTarget(), config()).run()
        failure = result.to_dataset(label_mode="failure")
        deviation = result.to_dataset(label_mode="deviation")
        assert deviation.class_counts()[1] >= failure.class_counts()[1]
        # Here every entry flip is visible at the sampling point.
        assert deviation.class_counts()[1] == len(deviation)

    def test_unknown_label_mode(self):
        result = Campaign(CounterTarget(), config()).run()
        import pytest as _pytest

        with _pytest.raises(ValueError):
            result.to_dataset(label_mode="vibes")

    def test_deviated_round_trips_through_log(self):
        import io

        from repro.injection.logfmt import read_log, write_log

        result = Campaign(CounterTarget(), config()).run()
        buffer = io.StringIO()
        write_log(result, buffer)
        buffer.seek(0)
        parsed = read_log(buffer)
        for a, b in zip(parsed.records, result.records):
            assert a.deviated == b.deviated

    def test_old_logs_default_to_not_deviated(self):
        import io

        from repro.injection.logfmt import read_log

        text = (
            "#PROPANE-LOG v1\n#target T\n#module M\n#inject entry\n"
            "#sample entry\n#var v int32\n"
            "RUN tc=0 var=v kind=int32 bit=0 time=0 failed=0 crashed=0 "
            "impact=1\nS v=5\n"
        )
        parsed = read_log(io.StringIO(text))
        assert parsed.records[0].deviated is False

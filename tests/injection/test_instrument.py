"""Tests for probes and harnesses."""

import pytest

from repro.injection.bitflip import BitFlip
from repro.injection.instrument import (
    GoldenHarness,
    InjectionHarness,
    InstrumentationError,
    Location,
    Probe,
    VariableSpec,
)

ENTRY = Probe("M", Location.ENTRY)
EXIT = Probe("M", Location.EXIT)


def drive(harness, iterations=5, value=1.0):
    """Simulate a module probed at entry and exit per iteration."""
    states = []
    for i in range(iterations):
        state = harness.probe("M", Location.ENTRY, {"v": value, "i": i})
        state = harness.probe("M", Location.EXIT, {"v": state["v"] * 2, "i": i})
        states.append(state)
    return states


class TestVariableSpec:
    def test_bits(self):
        assert VariableSpec("v", "float64").bits == 64
        assert VariableSpec("b", "bool").bits == 1

    def test_invalid_kind(self):
        with pytest.raises(Exception):
            VariableSpec("v", "int16")


class TestGoldenHarness:
    def test_records_all_probes(self):
        harness = GoldenHarness()
        drive(harness, 3)
        assert len(harness.samples) == 6
        assert harness.occurrences(ENTRY) == 3
        assert harness.occurrences(EXIT) == 3

    def test_sample_probe_filter(self):
        harness = GoldenHarness(sample_probe=EXIT)
        drive(harness, 3)
        assert len(harness.samples) == 3
        assert all(s.probe == EXIT for s in harness.samples)

    def test_samples_preserve_values(self):
        harness = GoldenHarness()
        drive(harness, 2, value=7.0)
        entries = harness.samples_at(ENTRY)
        assert entries[0].variables["v"] == 7.0
        assert entries[1].occurrence == 1

    def test_never_mutates(self):
        harness = GoldenHarness()
        out = harness.probe("M", Location.ENTRY, {"v": 5.0})
        assert out == {"v": 5.0}

    def test_returns_copy(self):
        original = {"v": 5.0}
        harness = GoldenHarness()
        out = harness.probe("M", Location.ENTRY, original)
        out["v"] = 9.0
        assert original["v"] == 5.0


class TestInjectionHarness:
    def flip(self):
        return BitFlip("v", "float64", 63)  # sign flip

    def test_injects_at_exact_occurrence(self):
        harness = InjectionHarness(ENTRY, self.flip(), injection_time=2,
                                   sample_probe=ENTRY)
        for i in range(5):
            state = harness.probe("M", Location.ENTRY, {"v": 1.0})
            if i == 2:
                assert state["v"] == -1.0
            else:
                assert state["v"] == 1.0
        assert harness.injected
        assert harness.original_value == 1.0
        assert harness.injected_value == -1.0

    def test_injects_only_once(self):
        harness = InjectionHarness(ENTRY, self.flip(), injection_time=0,
                                   sample_probe=ENTRY)
        first = harness.probe("M", Location.ENTRY, {"v": 1.0})
        second = harness.probe("M", Location.ENTRY, {"v": 1.0})
        assert first["v"] == -1.0
        assert second["v"] == 1.0

    def test_injection_probe_must_expose_variable(self):
        harness = InjectionHarness(ENTRY, BitFlip("missing", "float64", 0), 0)
        with pytest.raises(InstrumentationError):
            harness.probe("M", Location.ENTRY, {"v": 1.0})

    def test_wrong_probe_not_injected(self):
        harness = InjectionHarness(EXIT, self.flip(), injection_time=0,
                                   sample_probe=EXIT)
        state = harness.probe("M", Location.ENTRY, {"v": 1.0})
        assert state["v"] == 1.0
        assert not harness.injected

    def test_sampling_window(self):
        harness = InjectionHarness(ENTRY, self.flip(), injection_time=3,
                                   sample_probe=ENTRY, sample_budget=2)
        for _ in range(8):
            harness.probe("M", Location.ENTRY, {"v": 1.0})
        assert len(harness.samples) == 2
        assert harness.samples[0].occurrence == 3

    def test_sample_contains_corrupted_value(self):
        """Entry/entry sampling sees the flip ('straight after the
        injection', as in the paper's Hiller-style setup)."""
        harness = InjectionHarness(ENTRY, self.flip(), injection_time=1,
                                   sample_probe=ENTRY)
        harness.probe("M", Location.ENTRY, {"v": 1.0})
        harness.probe("M", Location.ENTRY, {"v": 1.0})
        assert harness.samples[0].variables["v"] == -1.0

    def test_unbounded_budget(self):
        harness = InjectionHarness(ENTRY, self.flip(), injection_time=0,
                                   sample_probe=ENTRY, sample_budget=None)
        for _ in range(10):
            harness.probe("M", Location.ENTRY, {"v": 1.0})
        assert len(harness.samples) == 10


class TestProbe:
    def test_key_and_str(self):
        assert ENTRY.key == ("M", Location.ENTRY)
        assert str(ENTRY) == "M@entry"
        assert str(Location.EXIT) == "exit"

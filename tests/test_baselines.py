"""Tests for the likely-invariant / range-assertion baselines."""

import numpy as np

from repro.baselines import (
    invariants_from_golden_runs,
    mine_invariants,
    range_assertions,
)
from repro.injection.instrument import Location, Probe
from repro.targets import Mp3GainTarget


def samples_from(rows):
    return [dict(row) for row in rows]


class TestMineInvariants:
    def test_range_invariant_flags_outliers(self):
        samples = samples_from({"v": float(i)} for i in range(10))
        invariants = mine_invariants(samples, margin=0.0)
        detector = invariants.to_detector()
        assert not detector.check({"v": 5.0})
        assert detector.check({"v": 50.0})
        assert detector.check({"v": -3.0})

    def test_margin_widens_bounds(self):
        samples = samples_from({"v": float(i)} for i in range(11))
        tight = mine_invariants(samples, margin=0.0).to_detector()
        loose = mine_invariants(samples, margin=0.5).to_detector()
        assert tight.check({"v": 10.5})
        assert not loose.check({"v": 10.5})

    def test_constant_variable(self):
        samples = samples_from({"k": 7.0, "v": float(i)} for i in range(5))
        detector = mine_invariants(samples, margin=0.01).to_detector()
        assert not detector.check({"k": 7.0, "v": 2.0})
        assert detector.check({"k": 8.0, "v": 2.0})

    def test_sign_invariant(self):
        samples = samples_from({"v": float(i)} for i in range(5))
        invariants = mine_invariants(samples)
        assert any("v >= 0" in inv.description for inv in invariants.invariants)
        detector = invariants.to_detector()
        assert detector.check({"v": -1.0})

    def test_boolean_constancy(self):
        samples = samples_from({"flag": True, "v": float(i)} for i in range(4))
        detector = mine_invariants(samples).to_detector()
        assert detector.check({"flag": False, "v": 1.0})
        assert not detector.check({"flag": True, "v": 1.0})

    def test_varying_boolean_no_invariant(self):
        samples = samples_from(
            {"flag": i % 2 == 0, "v": float(i)} for i in range(4)
        )
        invariants = mine_invariants(samples)
        assert not any("flag" in i.description for i in invariants.invariants)

    def test_ordering_invariant(self):
        samples = samples_from({"a": float(i), "b": float(i + 2)} for i in range(6))
        invariants = mine_invariants(samples)
        assert any("a <= b" in inv.description for inv in invariants.invariants)
        detector = invariants.to_detector()
        # Violation of a <= b, with both inside their ranges.
        assert detector.check({"a": 5.0, "b": 4.0})

    def test_orderings_disabled(self):
        samples = samples_from({"a": float(i), "b": float(i + 2)} for i in range(6))
        invariants = mine_invariants(samples, orderings=False)
        assert not any(
            inv.description == "a <= b" for inv in invariants.invariants
        )

    def test_empty_samples(self):
        invariants = mine_invariants([])
        assert len(invariants) == 0
        assert not invariants.to_detector().check({"v": 1e9})

    def test_non_finite_training_values_skipped(self):
        samples = samples_from([{"v": float("inf")}, {"v": 1.0}])
        invariants = mine_invariants(samples)
        # No usable range from non-finite data.
        assert not any(
            "<= v <=" in inv.description for inv in invariants.invariants
        )

    def test_violation_predicate_rows(self):
        samples = samples_from({"v": float(i)} for i in range(10))
        predicate = mine_invariants(samples, margin=0.0).violation_predicate()
        x = np.array([[5.0], [42.0], [-1.0]])
        flags = predicate.evaluate_rows(x, {"v": 0})
        assert flags.tolist() == [False, True, True]

    def test_describe(self):
        samples = samples_from({"v": float(i)} for i in range(5))
        text = mine_invariants(samples).describe()
        assert "v" in text


class TestRangeAssertions:
    def test_only_ranges(self):
        samples = samples_from(
            {"a": float(i), "b": float(i + 2)} for i in range(6)
        )
        invariants = range_assertions(samples)
        for inv in invariants.invariants:
            # Range or sign constraints only -- no pairwise orderings.
            assert inv.description != "a <= b"
            assert ("<=" in inv.description) or (">= 0" in inv.description)


class TestGoldenRunMining:
    def test_mines_from_target(self):
        target = Mp3GainTarget(n_tracks=4, min_samples=256, max_samples=512)
        probe = Probe("RGain", Location.ENTRY)
        invariants = invariants_from_golden_runs(target, probe, (0, 1))
        assert len(invariants) >= 3
        detector = invariants.to_detector()
        # A wildly corrupted gain violates the mined ranges.
        assert detector.check(
            {"track_index": 0, "gain_db": 1e30, "reference_db": -14.0,
             "loudness_db": -20.0, "peak": 0.5, "clip_count": 0}
        )

    def test_source_rendering(self):
        target = Mp3GainTarget(n_tracks=3, min_samples=256, max_samples=512)
        probe = Probe("RGain", Location.ENTRY)
        detector = invariants_from_golden_runs(target, probe, (0,)).to_detector()
        assert "def invariant_detector" in detector.to_source()

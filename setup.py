"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs PEP 660 editable-wheel support (setuptools>=64
plus `wheel`); on offline machines without `wheel`, fall back to
`python setup.py develop`, which this shim enables.
"""

from setuptools import setup

setup()
